"""Trace-overhead gate: causal span tracing must stay near-free.

Runs one fixed workload with tracing disabled (the default
``population.trace=None``) and enabled at full sampling, in interleaved
off/on pairs under a CPU timer, and fails when the traced variant costs more
than the tolerated overhead (default 5 %).  The span tracer is supposed to
be a handful of list appends per traced operation plus one hash per root;
this gate keeps that promise honest as instrumentation points accumulate.

The timing protocol extends ``bench_obs.py``'s — built for noisy shared
runners: ``process_time`` (ignores co-tenants), GC parked around each run
(collector pauses dwarf a 5 % bound), one untimed warm-up per variant, and
interleaved off/on pairs whose order alternates.  The gated number is the
*interquartile mean of the per-pair on/off ratios*: the two runs of a pair
are adjacent in time, so slow-machine noise hits both and partially cancels
in the ratio; trimming the top and bottom quarter then discards the pairs
where a frequency shift or steal-time burst landed inside exactly one run
(observed at ±13 % on shared runners), and averaging the middle half
cancels the remaining symmetric drift — empirically far steadier than
either the plain median or comparing each variant's best-of-N minimum,
which couples two uncorrelated extremes.  The best-of ratio is still
printed as a diagnostic.

The snapshot written to ``BENCH_trace.json`` holds only machine-independent
fields — event counts of both variants, per-kind traced-operation and
sampled counts, total traces — so the committed baseline doubles as a
determinism fingerprint: CI regenerates it and compares byte-for-byte,
which also proves tracing leaves the simulation's event stream untouched
(both variants must process the same event count).  Timing numbers go to
stdout only.

Environment knobs:

* ``REPRO_TRACE_TOLERANCE`` — allowed fractional overhead (default 0.05)
* ``REPRO_TRACE_REPEATS``   — off/on timing pairs for the gated
  interquartile mean (default 12)
* ``REPRO_BENCH_PEERS`` / ``REPRO_BENCH_DAYS`` / ``REPRO_BENCH_SEED`` —
  workload scale overrides (shared with the other benchmarks)

Usage::

    PYTHONPATH=src python benchmarks/bench_trace.py [BENCH_trace.json]
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import statistics
import sys
import time
from typing import List, Tuple

# Pin the BLAS pool before anything imports numpy: ``process_time`` sums the
# CPU seconds of *every* thread, so OpenBLAS spin-waiting workers would
# charge random extra time to whichever variant they wake up under.
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")

from conftest import BENCH_SEED, _env_float, _env_int  # noqa: E402

from repro.obs.spans import TraceConfig  # noqa: E402
from repro.scenarios import build_scenario_config  # noqa: E402
from repro.simulation.scenario import Scenario  # noqa: E402

DEFAULT_SNAPSHOT = "BENCH_trace.json"
SNAPSHOT_SCHEMA = "repro-bench-trace/1"
#: the same full-stack workload the metrics gate uses (bandwidth + content
#: runtimes) — the gate measures the marginal cost of span recording on a
#: representative fabric with every traced operation kind exercised
SCENARIO = "flash-crowd-large-blocks"
TRACE_PEERS = 600
#: long enough that one run takes O(1s) — the 5 % gate needs the timing
#: signal to dominate scheduler jitter — but not longer: retained traces
#: grow with duration and at some point their cache footprint, not the
#: tracer's code, dominates the measured ratio
TRACE_DAYS = 0.5
#: full sampling: the worst case — every operation builds its span tree
TRACE_SAMPLE = 1.0
DEFAULT_TOLERANCE = 0.05
#: divisible by 4 so both within-pair orders run equally often (see
#: ``_measure``) and the interquartile trim keeps a balanced middle half
DEFAULT_REPEATS = 12
TOLERANCE_ENV = "REPRO_TRACE_TOLERANCE"
REPEATS_ENV = "REPRO_TRACE_REPEATS"


def _tolerance() -> float:
    raw = os.environ.get(TOLERANCE_ENV, "")
    try:
        tolerance = float(raw) if raw else DEFAULT_TOLERANCE
    except ValueError:
        raise SystemExit(f"invalid {TOLERANCE_ENV}={raw!r} (expected a float)")
    if tolerance <= 0:
        raise SystemExit(f"{TOLERANCE_ENV} must be positive, got {tolerance}")
    return tolerance


def _repeats() -> int:
    repeats = _env_int(REPEATS_ENV) or DEFAULT_REPEATS
    if repeats < 1:
        raise SystemExit(f"{REPEATS_ENV} must be >= 1, got {repeats}")
    return repeats


def _config(with_trace: bool):
    peers = _env_int("REPRO_BENCH_PEERS") or TRACE_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or TRACE_DAYS
    config = build_scenario_config(
        SCENARIO, n_peers=peers, duration_days=days, seed=BENCH_SEED
    )
    if with_trace:
        config = dataclasses.replace(
            config,
            population=dataclasses.replace(
                config.population, trace=TraceConfig(sample=TRACE_SAMPLE)
            ),
        )
    return config


def _timed_run(with_trace: bool) -> Tuple[float, object]:
    """One run under a CPU timer, GC parked: process_time ignores the other
    tenants of a shared runner, and collector pauses would otherwise swamp a
    5 % bound."""
    config = _config(with_trace)
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        result = Scenario(config).run()
        return time.process_time() - start, result
    finally:
        gc.enable()


def _iqr_mean(ratios: List[float]) -> float:
    """Mean of the middle half of ``ratios`` (falls back to the median when
    fewer than four pairs leave nothing after trimming)."""
    if len(ratios) < 4:
        return statistics.median(ratios)
    ordered = sorted(ratios)
    quarter = len(ordered) // 4
    return statistics.fmean(ordered[quarter: len(ordered) - quarter])


def _measure(repeats: int) -> Tuple[float, object, float, object, List[float]]:
    """``repeats`` interleaved off/on pairs after one untimed warm-up each.

    The order within each pair alternates (off-first on even pairs, on-first
    on odd): the second run of a pair consistently pays a small warm-cache /
    frequency-governor penalty, and alternating puts both variants in the
    favourable first slot equally often so the bias cancels out of the
    median pair ratio.

    Returns the best CPU seconds per variant (diagnostic only), both
    results, and the per-pair on/off ratios — the gated overhead is the
    interquartile mean of those ratios, since the two runs of a pair share
    their noise and the trim discards the pairs where they didn't.
    """
    _timed_run(False)
    _timed_run(True)
    best_off = best_on = float("inf")
    baseline = traced = None
    ratios: List[float] = []
    for pair in range(repeats):
        if pair % 2 == 0:
            off_wall, baseline = _timed_run(False)
            on_wall, traced = _timed_run(True)
        else:
            on_wall, traced = _timed_run(True)
            off_wall, baseline = _timed_run(False)
        best_off = min(best_off, off_wall)
        best_on = min(best_on, on_wall)
        ratios.append(on_wall / off_wall)
    return best_off, baseline, best_on, traced, ratios


def snapshot_payload(baseline, traced) -> dict:
    """Machine-independent fingerprint of both variants (no wall-clock)."""
    summary = traced.spans
    peers = _env_int("REPRO_BENCH_PEERS") or TRACE_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or TRACE_DAYS
    return {
        "schema": SNAPSHOT_SCHEMA,
        "scenario": SCENARIO,
        "n_peers": peers,
        "duration_days": days,
        "seed": BENCH_SEED,
        "sample": TRACE_SAMPLE,
        "baseline": {"events_processed": baseline.events_processed},
        "traced": {
            "events_processed": traced.events_processed,
            "ops": dict(sorted(summary.ops.items())),
            "sampled": dict(sorted(summary.sampled.items())),
            "traces": len(summary.traces),
            "traces_dropped": summary.traces_dropped,
        },
    }


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    out_path = args[0] if args else DEFAULT_SNAPSHOT
    tolerance = _tolerance()
    repeats = _repeats()

    overheads: List[float] = []
    # One re-measure on an over-tolerance reading: the estimator is robust
    # to per-run jitter but not to a frequency/steal-time phase covering a
    # whole measurement window; a genuine regression fails both attempts.
    for attempt in range(2):
        off_wall, baseline, on_wall, traced, ratios = _measure(repeats)
        if traced.spans is None:
            raise SystemExit("trace-enabled run returned no TraceSummary")

        if attempt == 0:
            payload = snapshot_payload(baseline, traced)
            with open(out_path, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                handle.write("\n")

        overhead = _iqr_mean(ratios) - 1.0
        overheads.append(overhead)
        best_ratio = on_wall / off_wall - 1.0 if off_wall > 0 else 0.0
        off_rate = baseline.events_processed / off_wall if off_wall > 0 else 0.0
        on_rate = traced.events_processed / on_wall if on_wall > 0 else 0.0
        total_ops = sum(payload["traced"]["ops"].values())
        print(
            f"tracing off: {off_wall:.3f}s cpu best-of-{repeats} "
            f"({off_rate:,.0f} ev/s)\n"
            f"tracing on:  {on_wall:.3f}s cpu best-of-{repeats} "
            f"({on_rate:,.0f} ev/s), "
            f"{total_ops} traced ops, {payload['traced']['traces']} traces kept\n"
            f"overhead: {overhead:+.1%} interquartile mean of {repeats} pairs "
            f"(tolerance {tolerance:.0%}; best-of ratio {best_ratio:+.1%})"
        )
        if overhead <= tolerance:
            break
        if attempt == 0:
            print("over tolerance; re-measuring once to rule out a noise phase")
    print(f"wrote {out_path}")
    if min(overheads) > tolerance:
        print(
            f"FAIL: trace-enabled overhead {min(overheads):.1%} exceeds "
            f"{tolerance:.0%} tolerance in both measurements",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
