"""Fig. 3 — occurrences of the different agent version strings (P4 data set).

Regenerates the agent histogram (go-ipfs grouped by release, rare agents folded
into "other") plus the Section IV.B composition totals, and checks the shape:
go-ipfs dominates, hydra/crawler/exotic agents and identify-less peers form the
long tail.
"""

from repro.analysis.plots import ascii_bar_chart
from repro.core.metadata import agent_breakdown
from repro.experiments.paper_values import PAPER

from benchlib import scale_note


def test_fig3_agent_occurrences(benchmark, p4_result):
    dataset = p4_result.dataset("go-ipfs")
    breakdown = benchmark(agent_breakdown, dataset, 2)

    print()
    print(f"P4: {scale_note(p4_result)}")
    print("Fig. 3 — agent occurrences (measured, grouped):")
    print(ascii_bar_chart(breakdown.grouped, max_rows=25))
    share = breakdown.goipfs_peers / max(1, breakdown.total_peers)
    paper_share = PAPER.goipfs_pids / PAPER.total_pids
    print(
        f"measured: {breakdown.total_peers} PIDs, go-ipfs share {share:.2f}, "
        f"{breakdown.distinct_agents} distinct agents "
        f"({breakdown.distinct_goipfs_versions} go-ipfs variants), "
        f"missing {breakdown.missing_peers}"
    )
    print(
        f"paper:    {PAPER.total_pids} PIDs, go-ipfs share {paper_share:.2f}, "
        f"{PAPER.distinct_agent_strings} distinct agents "
        f"({PAPER.distinct_goipfs_versions} go-ipfs variants), "
        f"missing {PAPER.missing_agent_pids}"
    )

    # Shape 1: go-ipfs dominates the agent mix (paper: ~76 %).
    assert 0.6 < share < 0.9

    # Shape 2: every composition bucket of Section IV.B is populated.
    assert breakdown.hydra_peers > 0
    assert breakdown.crawler_peers > 0
    assert breakdown.other_peers > 0
    assert breakdown.missing_peers > 0

    # Shape 3: the composition buckets partition the observed PIDs.
    assert breakdown.total_peers == dataset.pid_count()

    # Shape 4: several distinct go-ipfs variants circulate simultaneously.
    assert breakdown.distinct_goipfs_versions >= 5
