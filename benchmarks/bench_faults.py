"""Fault-injection regimes — loss/partition/crash vs retry resilience.

Runs the fault scenario family at several strengths and asserts the regime
shapes the subsystem is designed around:

* a higher per-link loss rate ⇒ monotonically lower retrieval success when
  walks take every ``None`` at face value (no retries) — and capped-backoff
  retries claw most of that loss back, recovering more RPCs the lossier the
  links get;
* a healed partition ⇒ minority peers re-contact the fabric within the
  configured ``recovery_spread`` bound (time-to-recover is bounded, not
  open-ended);
* a crash storm ⇒ dirty state: crashed providers leave stale provider
  records behind for retrievers to trip over, and recovered providers
  republish once they restart.

Run as a script to (re)generate the ``BENCH_faults.json`` artifact the CI
perf-regression job collects::

    PYTHONPATH=src python benchmarks/bench_faults.py [out.json]

The payload is deterministic — no timestamps, no wall-clock fields — so two
runs at the same scale are byte-identical.
"""

import json
import sys
from functools import lru_cache

from conftest import _env_float, _env_int, BENCH_SEED

from repro.analysis.resilience_report import resilience_metrics
from repro.scenarios.catalog import (
    PARTITION_RECOVERY_FRACTION,
    crash_storm_config,
    lossy_links_config,
    partition_heal_config,
)
from repro.simulation.churn_models import DAY
from repro.simulation.scenario import Scenario

FAULTS_PEERS = 300
FAULTS_DAYS = 0.15

#: per-link loss rates swept with retries off and on
LOSS_RATES = (0.0, 0.2, 0.45)


def _bench_scale():
    peers = _env_int("REPRO_BENCH_PEERS") or FAULTS_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or FAULTS_DAYS
    return peers, days


def _run(builder, **kwargs):
    peers, days = _bench_scale()
    return Scenario(builder(peers, days, BENCH_SEED, **kwargs)).run()


@lru_cache(maxsize=None)
def loss_runs():
    return {
        (rate, retry): _run(lossy_links_config, loss_rate=rate, retry=retry)
        for rate in LOSS_RATES
        for retry in (False, True)
    }


@lru_cache(maxsize=None)
def partition_run():
    return _run(partition_heal_config)


@lru_cache(maxsize=None)
def crash_run():
    return _run(crash_storm_config)


def success_rate(result) -> float:
    content = result.content
    return content.retrieval_successes / content.retrievals if content.retrievals else 0.0


def build_payload():
    """The BENCH_faults.json payload: per-regime strength → resilience."""
    peers, days = _bench_scale()
    payload = {
        "schema": "repro-bench-faults/1",
        "n_peers": peers,
        "duration_days": days,
        "seed": BENCH_SEED,
        "loss": {},
    }
    for rate in LOSS_RATES:
        entry = {}
        for retry, key in ((False, "no_retry"), (True, "retry")):
            result = loss_runs()[(rate, retry)]
            stats = result.faults
            entry[key] = {
                "retrievals": result.content.retrievals,
                "successes": result.content.retrieval_successes,
                "success_rate": round(success_rate(result), 6),
                "rpc_loss_rate": round(stats.rpc_loss_rate, 6),
                "retry_amplification": round(stats.retry_amplification, 6),
                "retry_recoveries": stats.retry_recoveries,
            }
        payload["loss"][f"{rate:g}"] = entry
    payload["partition"] = resilience_metrics(partition_run())["partition"]
    crash_block = resilience_metrics(crash_run())
    payload["crash"] = {
        "crashes": crash_block["crash"]["crashes"],
        "restarts": crash_block["crash"]["restarts"],
        "recovery_republishes": crash_block["crash"]["recovery_republishes"],
        "stale_rate": crash_block["stale"]["stale_rate"],
        "success_rate": round(success_rate(crash_run()), 6),
    }
    return payload


def assert_regime_shapes():
    """The regime-shape contract, shared by the pytest entry and script mode
    (CI runs the script once: asserts, then writes the artifact)."""
    runs = loss_runs()

    # More loss ⇒ monotonically lower retrieval success without retries.
    no_retry = {rate: success_rate(runs[(rate, False)]) for rate in LOSS_RATES}
    assert no_retry[LOSS_RATES[0]] > no_retry[LOSS_RATES[1]] > no_retry[LOSS_RATES[2]]

    # Retries claw back most of the loss-induced gap at heavy loss: the
    # retried run must recover at least half of what no-retry lost relative
    # to the fault-free baseline.
    baseline = no_retry[LOSS_RATES[0]]
    heavy = LOSS_RATES[-1]
    retried = success_rate(runs[(heavy, True)])
    gap = baseline - no_retry[heavy]
    assert gap > 0
    assert retried - no_retry[heavy] >= 0.5 * gap

    # Retry recoveries grow with the loss rate (nothing to recover at zero
    # loss; more lost RPCs saved the lossier the links).
    recoveries = {rate: runs[(rate, True)].faults.retry_recoveries for rate in LOSS_RATES}
    assert recoveries[LOSS_RATES[0]] == 0
    assert recoveries[LOSS_RATES[1]] < recoveries[LOSS_RATES[2]]
    amplification = {
        rate: runs[(rate, True)].faults.retry_amplification for rate in LOSS_RATES
    }
    assert amplification[LOSS_RATES[0]] < amplification[LOSS_RATES[2]]

    # A healed partition recovers within the configured reconnect spread.
    stats = partition_run().faults
    spread = max(_bench_scale()[1] * DAY * PARTITION_RECOVERY_FRACTION, 60.0)
    assert stats.heal_time is not None
    assert stats.recovered_peers > 0
    assert stats.recovery_delays
    assert all(0.0 <= delay <= spread for delay in stats.recovery_delays)

    # A crash storm leaves dirty state behind — and recovered providers
    # republish their items.
    crash = crash_run().faults
    assert crash.crashes > 0
    assert 0 < crash.restarts <= crash.crashes
    assert crash.recovery_republishes > 0
    assert crash.stale_provider_hits > 0


def test_fault_regimes(benchmark):
    payload = benchmark(build_payload)
    print()
    print(json.dumps(payload, indent=1, sort_keys=True))
    assert_regime_shapes()


def main(argv):
    out = argv[1] if len(argv) > 1 else "BENCH_faults.json"
    assert_regime_shapes()
    payload = build_payload()
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
