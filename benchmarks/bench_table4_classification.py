"""Table IV — classification of peers in the P4 data set.

Regenerates the heavy / normal / light / one-time classification from the
recorded connections and compares the class shares and DHT-Server splits
against the paper's Table IV.
"""

from repro.analysis.tables import TextTable
from repro.core.classification import PeerClassLabel
from repro.core.netsize import classify_peers
from repro.experiments.paper_values import PAPER

from benchlib import scale_note


def test_table4_peer_classification(benchmark, p4_result):
    dataset = p4_result.dataset("go-ipfs")
    estimate = benchmark(classify_peers, dataset)

    print()
    print(f"P4: {scale_note(p4_result)}")
    table = TextTable(
        headers=[
            "Class", "Peers", "DHT-Server", "share", "paper Peers",
            "paper DHT-Server", "paper share",
        ],
        title="Table IV — classification of peers",
    )
    paper_total = sum(row.peers for row in PAPER.table4)
    for class_name, peers, servers in estimate.rows():
        paper_row = PAPER.table4_row(class_name)
        share = peers / max(1, estimate.classified_peers)
        table.add_row(
            class_name, peers, servers, f"{share:.2f}",
            paper_row.peers, paper_row.dht_servers,
            f"{paper_row.peers / paper_total:.2f}",
        )
    print(table.render())
    print(
        f"core network (heavy peers): measured {estimate.core_size}, "
        f"paper ≥ {PAPER.core_network_size:,} of ~{PAPER.estimated_network_size:,}"
    )

    counts = estimate.counts

    # Shape 1: the classes partition the classified peers and all are populated.
    assert sum(c.peers for c in counts.values()) == estimate.classified_peers
    for label in PeerClassLabel:
        assert counts[label].peers > 0, label

    # Shape 2: heavy peers are a minority "core" — the smallest or second
    # smallest class (paper: 10'540 of 62'204 ≈ 17 %).
    heavy_share = counts[PeerClassLabel.HEAVY].peers / estimate.classified_peers
    assert heavy_share < 0.45

    # Shape 3: short-lived classes (light + one-time) together outweigh heavy
    # peers (paper: ~57 % vs ~17 %).
    short_lived = counts[PeerClassLabel.LIGHT].peers + counts[PeerClassLabel.ONE_TIME].peers
    assert short_lived > counts[PeerClassLabel.HEAVY].peers

    # Shape 4: DHT-Servers are a minority inside the heavy class (paper: 1'449
    # of 10'540) — the heavy DHT-Clients are the "core user base".
    heavy = counts[PeerClassLabel.HEAVY]
    assert heavy.dht_servers < heavy.peers
    assert estimate.core_user_base > 0

    # Shape 5: the light class is rich in DHT-Servers relative to the normal
    # class (crawl-the-DHT traffic, trimming-churned servers; paper: 58 % vs 9 %).
    light = counts[PeerClassLabel.LIGHT]
    normal = counts[PeerClassLabel.NORMAL]
    light_server_share = light.dht_servers / max(1, light.peers)
    normal_server_share = normal.dht_servers / max(1, normal.peers)
    assert light_server_share > normal_server_share
