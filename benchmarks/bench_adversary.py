"""Adversarial catalog — attack strength vs measurement distortion.

Runs each attack family at several strengths (including the attack-free twin
of the same scenario) and asserts the regime shapes the adversary subsystem
is designed around:

* more Sybils ⇒ a (much) larger neighbourhood-density network-size
  overestimate, monotone in the flood size;
* eclipse power ⇒ lower retrieval success — a ring wider than the record
  replication factor captures every victim-key record (capture rate 1.0) and
  starves retrievals, a narrow ring only part of them;
* routing poisoning ⇒ fewer real replicas per PROVIDE, longer walks, and a
  crawler that wastes queries chasing fabricated peers, all monotone in the
  number of malicious servers;
* churn spoofing ⇒ attacker-inflated one-time/light classes, i.e. a rising
  Table IV misclassification rate.

Run as a script to (re)generate the ``BENCH_adversary.json`` artifact the CI
perf-regression job collects::

    PYTHONPATH=src python benchmarks/bench_adversary.py [out.json]

The payload is deterministic — no timestamps, no wall-clock fields — so two
runs at the same scale are byte-identical.
"""

import json
import sys
from dataclasses import replace
from functools import lru_cache
from statistics import mean

from conftest import _env_float, _env_int, BENCH_SEED

from repro.analysis.attack_report import attack_metrics
from repro.core.netsize import estimate_by_neighborhood_density
from repro.libp2p.peer_id import PeerId
from repro.scenarios.catalog import (
    eclipse_provider_config,
    poisoned_routing_config,
    spoofed_churn_config,
    sybil_netsize_config,
)
from repro.simulation.scenario import Scenario

ADVERSARY_PEERS = 300
ADVERSARY_DAYS = 0.15

SYBIL_COUNTS = (0, 40, 160)
ECLIPSE_COUNTS = (0, 6, 24)
POISON_COUNTS = (0, 24, 60)
SPOOF_COUNTS = (0, 75)


def _bench_scale():
    peers = _env_int("REPRO_BENCH_PEERS") or ADVERSARY_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or ADVERSARY_DAYS
    return peers, days


def _without_adversary(config):
    return replace(config, population=replace(config.population, adversary=None))


def _run(builder, count_kwarg, count):
    peers, days = _bench_scale()
    config = builder(peers, days, BENCH_SEED, **{count_kwarg: count or None})
    if count == 0:
        config = _without_adversary(config)
    return Scenario(config).run()


def density_estimate(result) -> float:
    """The neighbourhood-density net-size estimate of the primary dataset."""
    label = "go-ipfs" if "go-ipfs" in result.datasets else sorted(result.datasets)[0]
    dataset = result.datasets[label]
    target_b58 = result.identity_keys.get(label) or result.identity_keys[
        sorted(result.identity_keys)[0]
    ]
    target = PeerId.from_base58(target_b58).kad_key()
    keys = [PeerId.from_base58(pid).kad_key() for pid in sorted(dataset.peers)]
    return estimate_by_neighborhood_density(keys, target).estimate


@lru_cache(maxsize=None)
def sybil_runs():
    return {c: _run(sybil_netsize_config, "sybil_count", c) for c in SYBIL_COUNTS}


@lru_cache(maxsize=None)
def eclipse_runs():
    return {c: _run(eclipse_provider_config, "eclipse_count", c) for c in ECLIPSE_COUNTS}


@lru_cache(maxsize=None)
def poison_runs():
    return {c: _run(poisoned_routing_config, "poison_count", c) for c in POISON_COUNTS}


@lru_cache(maxsize=None)
def spoof_runs():
    return {c: _run(spoofed_churn_config, "spoof_count", c) for c in SPOOF_COUNTS}


def _replicas_per_provide(content) -> float:
    operations = content.provides + content.republishes
    return content.records_stored / operations if operations else 0.0


def build_payload():
    """The BENCH_adversary.json payload: per-family strength → distortion."""
    peers, days = _bench_scale()
    payload = {
        "schema": "repro-bench-adversary/1",
        "n_peers": peers,
        "duration_days": days,
        "seed": BENCH_SEED,
        "sybil": {},
        "eclipse": {},
        "poison": {},
        "spoof": {},
    }
    for count, result in sybil_runs().items():
        payload["sybil"][str(count)] = {
            "density_estimate": round(density_estimate(result), 1),
            "observed_pids": result.datasets["go-ipfs"].pid_count(),
        }
    for count, result in eclipse_runs().items():
        metrics = attack_metrics(result) or {}
        eclipse = metrics.get("eclipse", {})
        payload["eclipse"][str(count)] = {
            "retrieval_success_rate": round(result.content.retrieval_success_rate, 6),
            "capture_rate": eclipse.get("capture_rate", 0.0),
            "occupancy": eclipse.get("occupancy", 0.0),
        }
    for count, result in poison_runs().items():
        content = result.content
        payload["poison"][str(count)] = {
            "replicas_per_provide": round(_replicas_per_provide(content), 3),
            "retrieve_hops_mean": round(mean(content.retrieve_hops), 3)
            if content.retrieve_hops
            else 0.0,
            "crawler_queries": sum(s.queries_sent for s in result.crawls.snapshots),
        }
    for count, result in spoof_runs().items():
        metrics = attack_metrics(result) or {}
        churn = metrics.get("churn", {})
        payload["spoof"][str(count)] = {
            "misclassification_rate": churn.get("misclassification_rate", 0.0),
            "observed_pids": result.datasets["go-ipfs"].pid_count(),
            "spoofed_pids": churn.get("spoofed_pids", 0),
        }
    return payload


def assert_regime_shapes():
    """The regime-shape contract, shared by the pytest entry and script mode
    (CI runs the script once: asserts, then writes the artifact)."""
    sybil = sybil_runs()
    eclipse = eclipse_runs()
    poison = poison_runs()
    spoof = spoof_runs()

    # More Sybils ⇒ a monotonically larger density overestimate; even the
    # small flood dwarfs the honest estimate because all k nearest observed
    # IDs are mined ones.
    none, small, large = (density_estimate(sybil[c]) for c in SYBIL_COUNTS)
    assert small > 10 * none
    assert large > 1.5 * small

    # Eclipse power ⇒ lower retrieval success.  A ring wider than the
    # replication factor (24 IDs over 2 victim keys vs replication 10)
    # captures everything; the narrow ring only part of it.
    succ = {c: eclipse[c].content.retrieval_success_rate for c in ECLIPSE_COUNTS}
    capture = {
        c: (attack_metrics(eclipse[c]) or {}).get("eclipse", {}).get("capture_rate", 0.0)
        for c in ECLIPSE_COUNTS
    }
    assert succ[24] < succ[0]
    assert succ[24] < succ[6]
    assert capture[24] == 1.0
    assert capture[6] < capture[24]

    # Poisoning ⇒ fewer real replicas per PROVIDE, longer retrieval walks,
    # and a crawler burning queries on fabricated peers — all monotone.
    replicas = {c: _replicas_per_provide(poison[c].content) for c in POISON_COUNTS}
    hops = {c: mean(poison[c].content.retrieve_hops) for c in POISON_COUNTS}
    queries = {
        c: sum(s.queries_sent for s in poison[c].crawls.snapshots) for c in POISON_COUNTS
    }
    assert replicas[0] > replicas[24] > replicas[60]
    assert hops[0] < hops[60]
    assert queries[0] < queries[24] < queries[60]

    # Churn spoofing ⇒ attacker PIDs flood the classification.
    spoofed_metrics = attack_metrics(spoof[SPOOF_COUNTS[1]])
    assert spoofed_metrics["churn"]["misclassification_rate"] > 0.3
    assert (
        spoof[SPOOF_COUNTS[1]].datasets["go-ipfs"].pid_count()
        > spoof[0].datasets["go-ipfs"].pid_count()
    )


def test_adversary_regimes(benchmark):
    payload = benchmark(build_payload)
    print()
    print(json.dumps(payload, indent=1, sort_keys=True))
    assert_regime_shapes()


def main(argv):
    out = argv[1] if len(argv) > 1 else "BENCH_adversary.json"
    assert_regime_shapes()
    payload = build_payload()
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
