"""Content-routing catalog — publish/retrieve workloads over the churning DHT.

Runs the registered content scenarios at benchmark scale and regenerates the
retrieval-quality table the sweep CLI reports (success rates, hop/latency
quantiles).  The shape claims assert that the content regimes actually behave
the way they are designed to: republishing keeps records resolvable, disabling
it makes retrieval success decay as the TTL bites, and a steep Zipf head turns
repeat requests into local-blockstore hits.
"""

from functools import lru_cache

from conftest import _env_float, _env_int, BENCH_SEED

from repro.analysis.sweep_report import aggregate_table
from repro.scenarios import run_scenario_by_name, scenario_names

CONTENT_PEERS = 300
CONTENT_DAYS = 0.15


def _bench_scale():
    peers = _env_int("REPRO_BENCH_PEERS") or CONTENT_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or CONTENT_DAYS
    return peers, days


@lru_cache(maxsize=None)
def content_results():
    peers, days = _bench_scale()
    return {
        name: run_scenario_by_name(name, n_peers=peers, duration_days=days, seed=BENCH_SEED)
        for name in scenario_names("content")
    }


def build_content_table():
    from repro.sweep import summarize_result

    peers, days = _bench_scale()
    return aggregate_table(
        [
            summarize_result(name, peers, days, BENCH_SEED, result)
            for name, result in content_results().items()
        ]
    )


def test_content_routing_catalog(benchmark):
    results = content_results()
    table = benchmark(build_content_table)
    print()
    print(table.render())

    stats = {name: result.content for name, result in results.items()}
    for name, s in stats.items():
        assert s is not None, f"{name} ran no content workload"
        assert s.provides > 0 and s.retrievals > 0, name

    # With republishing at TTL/2 pace, records stay resolvable end to end:
    # success in the second half does not collapse relative to the first.
    churn = stats["provide-churn"]
    assert churn.retrieval_success_rate > 0.2
    assert churn.second_half_success_rate > 0.5 * churn.first_half_success_rate

    # Short TTL + no republish: records expire out and retrieval decays.
    expiry = stats["provider-record-expiry"]
    assert expiry.republishes == 0
    assert expiry.records_expired > 0
    assert expiry.second_half_success_rate < churn.second_half_success_rate

    # The steep Zipf head of the flash crowd turns repeat requests into
    # local-blockstore hits and concentrates lookups on few keys.
    flash = stats["retrieval-flash-crowd"]
    assert flash.retrievals_local > churn.retrievals_local
