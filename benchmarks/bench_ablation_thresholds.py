"""Ablation — sweep of the connection-manager watermarks.

The paper's conclusion recommends investigating (and raising) the default
LowWater/HighWater values for DHT-Servers.  This ablation sweeps the
watermarks at fixed population and duration and regenerates the relationship
the paper infers from Table II: higher thresholds → fewer trims → longer
connection durations and fewer total connections.
"""

import pytest

from repro.analysis.tables import TextTable, format_seconds
from repro.core.churn import connection_statistics, trim_share
from repro.experiments.periods import PAPER_SCALE_PIDS
from repro.ipfs.config import IpfsConfig
from repro.simulation.churn_models import DAY
from repro.simulation.population import PopulationConfig
from repro.simulation.scenario import Scenario, ScenarioConfig

N_PEERS = 500
DURATION = 0.5 * DAY
#: watermark pairs expressed at paper scale (they are scaled to the population)
WATERMARK_SWEEP = [(600, 900), (2_000, 4_000), (6_000, 8_000), (18_000, 20_000)]


def run_sweep():
    reports = {}
    for low, high in WATERMARK_SWEEP:
        scale = N_PEERS / PAPER_SCALE_PIDS
        scaled_low = max(3, int(round(low * scale)))
        scaled_high = max(scaled_low + 2, int(round(high * scale)))
        config = ScenarioConfig(
            duration=DURATION,
            population=PopulationConfig.scaled_to_paper(N_PEERS, seed=17),
            go_ipfs=IpfsConfig(low_water=scaled_low, high_water=scaled_high),
            hydra_heads=0,
            run_crawler=False,
            seed=17,
        )
        dataset = Scenario(config).run().dataset("go-ipfs")
        reports[(low, high)] = connection_statistics(dataset)
    return reports


@pytest.fixture(scope="module")
def sweep_reports():
    return run_sweep()


def test_ablation_watermark_sweep(benchmark, sweep_reports):
    reports = sweep_reports
    stats = benchmark(
        lambda: {key: (r.all_stats, r.peer_stats, trim_share(r)) for key, r in reports.items()}
    )

    print()
    print(f"[ablation scale: {N_PEERS} peers, {DURATION / DAY:.2f} d per configuration]")
    table = TextTable(
        headers=[
            "Low/High (paper scale)", "connections", "avg (all)", "avg (peer)", "trim share"
        ],
        title="Ablation — connection-manager watermark sweep",
    )
    for (low, high), (all_stats, peer_stats, trims) in stats.items():
        table.add_row(
            f"{low}/{high}", all_stats.count,
            format_seconds(all_stats.average), format_seconds(peer_stats.average),
            f"{trims:.2f}",
        )
    print(table.render())

    ordered = [stats[key] for key in WATERMARK_SWEEP]

    # Shape 1: the per-peer average connection duration grows monotonically in
    # the watermark sweep endpoints (tightest vs loosest configuration).
    assert ordered[0][1].average < ordered[-1][1].average

    # Shape 2: the tightest configuration produces the most connections
    # (every trim triggers reconnects), the loosest the fewest.
    assert ordered[0][0].count > ordered[-1][0].count

    # Shape 3: the local trim share decreases as the watermarks grow.
    assert ordered[0][2] >= ordered[-1][2]
