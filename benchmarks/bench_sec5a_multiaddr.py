"""Section V.A — network-size estimation by multiaddress (IP) grouping.

Regenerates the grouping of connected PIDs by source IP and checks the
properties the paper reports: grouping shrinks the PID count, most groups are
singletons, a PID-rotating farm shows up as one giant group, and the hydra
heads collapse onto a handful of IPs.
"""

from repro.analysis.tables import TextTable
from repro.core.netsize import estimate_by_multiaddress, estimate_network_size
from repro.experiments.paper_values import PAPER

from benchlib import scale_note


def test_sec5a_multiaddress_grouping(benchmark, p4_result):
    dataset = p4_result.dataset("go-ipfs")
    estimate = benchmark(estimate_by_multiaddress, dataset)
    report = estimate_network_size(dataset)

    print()
    print(f"P4: {scale_note(p4_result)}")
    table = TextTable(
        headers=["Quantity", "measured", "paper"],
        title="Section V.A — multiaddress grouping",
    )
    table.add_row("known PIDs", dataset.pid_count(), PAPER.total_pids)
    table.add_row("connected PIDs", estimate.connected_pids, PAPER.connected_pids)
    table.add_row("distinct IPs", estimate.distinct_ips, PAPER.distinct_ips)
    table.add_row("IP groups (estimate)", estimate.groups, PAPER.ip_groups)
    table.add_row("singleton groups", estimate.singleton_groups, PAPER.singleton_groups)
    table.add_row("largest group (PIDs)", estimate.largest_group_size, PAPER.largest_group_pids)
    print(table.render())
    print(
        f"estimated network size: measured {report.estimated_network_size} groups, "
        f"paper ~{PAPER.estimated_network_size:,}; "
        f"PIDs per simultaneous connection: {report.pids_per_simultaneous_connection:.1f} "
        "(paper: ~2)"
    )

    # Shape 1: the grouping strictly shrinks the population of connected PIDs
    # but stays within the same order of magnitude (paper: 62'204 -> 47'516).
    assert estimate.groups < estimate.connected_pids
    assert estimate.groups > 0.4 * estimate.connected_pids

    # Shape 2: the overwhelming majority of groups contain a single PID
    # (paper: 44'301 of 47'516).
    assert estimate.singleton_groups > 0.7 * estimate.groups

    # Shape 3: a PID-rotating population shows up as one large group
    # (paper: one IP with 2'156 PIDs).
    assert estimate.largest_group_size >= 5

    # Shape 4: the number of observed PIDs exceeds the peak number of
    # simultaneous connections (the motivation for grouping at all).
    assert report.pids_per_simultaneous_connection > 1.2

    # Shape 5: hydra heads collapse onto very few IPs in the union dataset of a
    # hydra-equipped period — checked on P0 in bench_ablation_heads; here we
    # only require that the estimate is a partition (sizes sum to grouped PIDs).
    assert sum(estimate.group_sizes.values()) <= estimate.connected_pids
