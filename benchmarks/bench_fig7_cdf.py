"""Fig. 7 — CDFs of maximum connection duration and connection count per PID.

Regenerates both CDFs (split into all / DHT-Server / DHT-Client) from the P4
data set and checks the anchor fractions the paper reads off the figure:
roughly half the PIDs stay below an hour, a small fraction stays beyond a day,
about half the PIDs connect exactly once, and only a thin tail has more than
15 connections.
"""

from repro.analysis.cdf import log_spaced_grid
from repro.core.netsize import connection_cdfs
from repro.experiments.paper_values import PAPER

from benchlib import scale_note

HOUR = 3_600.0
DAY = 86_400.0


def test_fig7_connection_cdfs(benchmark, p4_result):
    dataset = p4_result.dataset("go-ipfs")
    cdfs = benchmark(connection_cdfs, dataset, 30.0)

    print()
    print(f"P4: {scale_note(p4_result)}")
    all_cdf = cdfs["all"]
    grid = log_spaced_grid(30.0, max(all_cdf.max_duration.values) or 30.0, points_per_decade=2)
    print("Fig. 7 (left) — CDF of max connection duration, evaluated on a log grid:")
    for subset in ("all", "dht-server", "dht-client"):
        points = cdfs[subset].max_duration.sampled(grid)
        rendered = ", ".join(f"{x:,.0f}s:{y:.2f}" for x, y in points[:: max(1, len(points) // 8)])
        print(f"  {subset:11s} {rendered}")
    print("Fig. 7 (right) — CDF of number of connections per PID:")
    for subset in ("all", "dht-server", "dht-client"):
        cdf = cdfs[subset].connection_count
        rendered = ", ".join(f"<={n}:{cdf.fraction_at(n):.2f}" for n in (1, 2, 5, 15, 50))
        print(f"  {subset:11s} {rendered}")

    measured_under_1h = all_cdf.fraction_connected_less_than(HOUR)
    measured_over_24h = all_cdf.fraction_connected_more_than(DAY)
    measured_single = all_cdf.connection_count.fraction_at(1)
    measured_over_15 = 1.0 - all_cdf.connection_count.fraction_at(15)
    print(
        f"measured anchors: <1h {measured_under_1h:.2f}, >24h {measured_over_24h:.2f}, "
        f"=1 connection {measured_single:.2f}, >15 connections {measured_over_15:.2f}"
    )
    print(
        f"paper anchors:    <1h {PAPER.fraction_connected_less_1h:.2f}, "
        f">24h {PAPER.fraction_connected_more_24h:.2f}, "
        f"=1 connection {PAPER.fraction_single_connection:.2f}, "
        f">15 connections {PAPER.fraction_more_than_15_connections:.2f}"
    )

    # Shape 1: roughly half of the PIDs never stay connected for a full hour
    # (paper: ~53 %); allow a generous band for the scaled-down simulation.
    assert 0.3 < measured_under_1h < 0.8

    # Shape 2: a small but non-trivial fraction stays beyond 24 h (paper: ~16 %).
    assert 0.02 < measured_over_24h < 0.4

    # Shape 3: about half of the PIDs connect exactly once (paper: ~50 %).
    assert 0.25 < measured_single < 0.75

    # Shape 4: only a thin tail has more than 15 connections (paper: ~10 %).
    assert measured_over_15 < 0.35

    # Shape 5: DHT-Server PIDs skew toward shorter max durations than clients at
    # the one-hour mark or at least do not last dramatically longer — the paper
    # attributes the server skew to connection trimming by other nodes.
    server_under_1h = cdfs["dht-server"].fraction_connected_less_than(HOUR)
    client_under_1h = cdfs["dht-client"].fraction_connected_less_than(HOUR)
    assert server_under_1h > 0.0 and client_under_1h > 0.0
