"""Stress-scenario catalog — churn regimes beyond the paper's live workload.

Runs the registered stress scenarios at benchmark scale and regenerates a
comparison table (the scenario-diversity analogue of Table II): per scenario
the recorded PIDs, connections, durations, and trim share at the primary
vantage point.  The shape claims assert that each stress regime actually
moves the measurement the way it is designed to.
"""

from functools import lru_cache

from conftest import _env_float, _env_int, BENCH_SEED

from repro.analysis.sweep_report import aggregate_table, primary_dataset_label
from repro.scenarios import run_scenario_by_name, scenario_names
from repro.simulation.churn_models import DAY
from repro.sweep import summarize_cell

SCENARIO_PEERS = 400
SCENARIO_DAYS = 0.25


def _bench_scale():
    peers = _env_int("REPRO_BENCH_PEERS") or SCENARIO_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or SCENARIO_DAYS
    return peers, days


@lru_cache(maxsize=None)
def stress_summaries():
    peers, days = _bench_scale()
    return tuple(
        summarize_cell(name, peers, days, BENCH_SEED)
        for name in scenario_names("stress")
    )


def build_scenario_table():
    return aggregate_table(list(stress_summaries()))


def test_stress_scenario_catalog(benchmark):
    summaries = {s["scenario"]: s for s in stress_summaries()}
    table = benchmark(build_scenario_table)
    print()
    print(table.render())

    def primary(summary):
        return summary["datasets"][primary_dataset_label(summary)]

    def churn(summary):
        return summary["churn"][primary_dataset_label(summary)]

    # The flash crowd concentrates connection arrivals inside its burst
    # window: the per-second arrival rate in the burst clearly exceeds the
    # rate outside it.  The margin is moderate because the organic population
    # keeps reconnecting throughout the window — exactly the signal-to-noise
    # problem a live measurement of a flash crowd would face.
    peers, days = _bench_scale()
    result = run_scenario_by_name(
        "flash-crowd", n_peers=peers, duration_days=days, seed=BENCH_SEED
    )
    duration = days * DAY
    burst_start = duration * 0.30
    burst_end = burst_start + min(2 * 3600.0, max(duration * 0.25, 60.0))
    opened = [c.opened_at for c in result.dataset("go-ipfs").connections]
    in_burst = sum(1 for t in opened if burst_start <= t < burst_end)
    outside = len(opened) - in_burst
    burst_rate = in_burst / (burst_end - burst_start)
    outside_rate = outside / (duration - (burst_end - burst_start))
    assert burst_rate > 1.15 * outside_rate

    # a client-heavy population against 600/900 watermarks trims hardest and
    # keeps connections shortest
    assert churn(summaries["client-heavy"])["trim_share"] == max(
        churn(s)["trim_share"] for s in summaries.values()
    )
    assert churn(summaries["client-heavy"])["avg_duration"] == min(
        churn(s)["avg_duration"] for s in summaries.values()
    )

    # six hydra heads: the union dataset aggregates every head's records
    hydra = summaries["hydra-scaling"]
    heads = [label for label in hydra["datasets"] if label.startswith("hydra-H")]
    assert len(heads) == 6
    assert hydra["datasets"]["hydra"]["peers"] >= max(
        hydra["datasets"][h]["peers"] for h in heads
    )

    # only the crawler scenario walks the DHT
    assert summaries["crawler-vs-passive-under-burst"]["queries_sent"] > 0
    assert all(
        s["queries_sent"] == 0
        for name, s in summaries.items()
        if name != "crawler-vs-passive-under-burst"
    )
