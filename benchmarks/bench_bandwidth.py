"""Data-plane regimes — block sizes and uplink capacity vs transfer quality.

Runs the bandwidth scenario family at several strengths and asserts the
regime shapes the subsystem is designed around:

* larger blocks ⇒ monotonically larger transfer-p90: serialization time is
  ``size / bottleneck_rate``, so scaling every block in the mixed catalog
  stretches the whole transfer distribution;
* tighter uplinks ⇒ a growing queueing share of transfer latency and a
  falling flash-crowd retrieval success rate — the hot provider's FIFO
  transmit queue backs up until timeout-bound retrievers abandon their
  fetches.

Run as a script to (re)generate the ``BENCH_bandwidth.json`` artifact the CI
perf-regression job collects::

    PYTHONPATH=src python benchmarks/bench_bandwidth.py [out.json]

The payload is deterministic — no timestamps, no wall-clock fields — so two
runs at the same scale are byte-identical.
"""

import json
import sys
from functools import lru_cache

from conftest import _env_float, _env_int, BENCH_SEED

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.transfer_report import transfer_metrics
from repro.scenarios.catalog import (
    mixed_size_catalog_config,
    provider_hotspot_config,
)
from repro.simulation.scenario import Scenario

BANDWIDTH_PEERS = 300
BANDWIDTH_DAYS = 0.15

#: multiplier on every block size in the mixed catalog
SIZE_SCALES = (1.0, 4.0, 16.0)
#: multiplier on every access class's uplink rate (smaller = tighter)
UPLINK_SCALES = (1.0, 0.25, 0.0625)


def _bench_scale():
    peers = _env_int("REPRO_BENCH_PEERS") or BANDWIDTH_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or BANDWIDTH_DAYS
    return peers, days


def _run(builder, kwarg, value):
    peers, days = _bench_scale()
    config = builder(peers, days, BENCH_SEED, **{kwarg: value})
    return Scenario(config).run()


@lru_cache(maxsize=None)
def size_runs():
    return {s: _run(mixed_size_catalog_config, "size_scale", s) for s in SIZE_SCALES}


#: the uplink regime runs over 4x blocks so the starved endpoint actually
#: collapses (transfer timeouts) instead of merely queueing
UPLINK_SIZE_SCALE = 4.0


@lru_cache(maxsize=None)
def uplink_runs():
    peers, days = _bench_scale()
    return {
        s: Scenario(
            provider_hotspot_config(
                peers, days, BENCH_SEED, uplink_scale=s, size_scale=UPLINK_SIZE_SCALE
            )
        ).run()
        for s in UPLINK_SCALES
    }


def transfer_p90(result) -> float:
    """p90 of the committed transfers' total time (RTT + serialization +
    queueing)."""
    stats = result.bandwidth
    totals = [
        rtt + ser + queue
        for rtt, ser, queue in zip(
            stats.transfer_rtts,
            stats.transfer_serializations,
            stats.transfer_queueings,
        )
    ]
    return EmpiricalCDF(totals).quantile(0.9) if totals else 0.0


def build_payload():
    """The BENCH_bandwidth.json payload: per-regime strength → data-plane
    metrics."""
    peers, days = _bench_scale()
    payload = {
        "schema": "repro-bench-bandwidth/1",
        "n_peers": peers,
        "duration_days": days,
        "seed": BENCH_SEED,
        "uplink_size_scale": UPLINK_SIZE_SCALE,
        "size": {},
        "uplink": {},
    }
    for scale, result in size_runs().items():
        block = transfer_metrics(result)
        payload["size"][f"{scale:g}"] = {
            "transfers": block["transfers"],
            "transfers_timed_out": block["transfers_timed_out"],
            "bytes_transferred": block["bytes_transferred"],
            "transfer_p50": block["transfer_time"]["p50"],
            "transfer_p90": block["transfer_time"]["p90"],
            "serialization_p90": block["serialization"]["p90"],
            "queueing_share": block["queueing_share"],
            "retrieval_success_rate": round(
                result.content.retrieval_success_rate, 6
            ),
        }
    for scale, result in uplink_runs().items():
        block = transfer_metrics(result)
        payload["uplink"][f"{scale:g}"] = {
            "transfers": block["transfers"],
            "transfers_timed_out": block["transfers_timed_out"],
            "timeout_rate": block["timeout_rate"],
            "queueing_share": block["queueing_share"],
            "transfer_p90": block["transfer_time"]["p90"],
            "utilization_p90": block["utilization"]["p90"],
            "retrieval_success_rate": round(
                result.content.retrieval_success_rate, 6
            ),
        }
    return payload


def assert_regime_shapes():
    """The regime-shape contract, shared by the pytest entry and script mode
    (CI runs the script once: asserts, then writes the artifact)."""
    sizes = size_runs()
    uplinks = uplink_runs()

    # Larger blocks ⇒ every transfer serializes longer: the p90 of the total
    # transfer time grows monotonically with the catalog's size scale.
    p90 = {s: transfer_p90(sizes[s]) for s in SIZE_SCALES}
    assert p90[SIZE_SCALES[0]] <= p90[SIZE_SCALES[1]] <= p90[SIZE_SCALES[2]]
    assert p90[SIZE_SCALES[0]] < p90[SIZE_SCALES[2]]
    for result in sizes.values():
        assert result.bandwidth.transfers > 0

    # Tighter uplinks ⇒ the hot provider's queue backs up: queueing takes a
    # growing share of latency between the two non-collapsed regimes.  (At
    # the collapsed endpoint the committed-transfer share is survivorship-
    # biased — the most-queued fetches time out and never commit — so the
    # collapse itself is asserted through timeouts and success instead.)
    share = {s: uplinks[s].bandwidth.queueing_share for s in UPLINK_SCALES}
    assert share[UPLINK_SCALES[0]] < share[UPLINK_SCALES[1]]
    timeouts = {s: uplinks[s].bandwidth.transfers_timed_out for s in UPLINK_SCALES}
    assert timeouts[UPLINK_SCALES[0]] <= timeouts[UPLINK_SCALES[1]] <= timeouts[UPLINK_SCALES[2]]
    assert timeouts[UPLINK_SCALES[0]] < timeouts[UPLINK_SCALES[2]]
    success = {
        s: uplinks[s].content.retrieval_success_rate for s in UPLINK_SCALES
    }
    assert success[UPLINK_SCALES[0]] >= success[UPLINK_SCALES[1]] >= success[UPLINK_SCALES[2]]
    assert success[UPLINK_SCALES[0]] > success[UPLINK_SCALES[2]]


def test_bandwidth_regimes(benchmark):
    payload = benchmark(build_payload)
    print()
    print(json.dumps(payload, indent=1, sort_keys=True))
    assert_regime_shapes()


def main(argv):
    out = argv[1] if len(argv) > 1 else "BENCH_bandwidth.json"
    assert_regime_shapes()
    payload = build_payload()
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
