"""Table I — overview of the measurement periods and their configuration.

Regenerates the Table I rows from the period specifications and checks that the
scenario builder faithfully maps them onto scaled simulator configurations.
"""

from repro.analysis.tables import TextTable
from repro.experiments.periods import PERIODS
from repro.kademlia.dht import DHTMode


def build_table1():
    table = TextTable(
        headers=["Period", "Dates", "Duration (d)", "Low", "High", "go-ipfs", "Hydra"],
        title="Table I — measurement periods",
    )
    for period_id in ("P0", "P1", "P2", "P3", "P4", "P14"):
        spec = PERIODS[period_id]
        if spec.go_ipfs_mode is None:
            role = "-"
        else:
            role = "Server" if spec.go_ipfs_mode is DHTMode.SERVER else "Client"
        table.add_row(
            spec.period_id,
            f"{spec.start_date} – {spec.end_date}",
            f"{spec.duration_days:g}",
            spec.low_water,
            spec.high_water,
            role,
            spec.hydra_heads or "-",
        )
    return table


def test_table1_periods(benchmark):
    table = benchmark(build_table1)
    print()
    print(table.render())

    # Table I ground truth from the paper
    assert PERIODS["P0"].low_water == 600 and PERIODS["P0"].high_water == 900
    assert PERIODS["P1"].low_water == 2_000 and PERIODS["P1"].high_water == 4_000
    assert PERIODS["P2"].low_water == 18_000 and PERIODS["P2"].high_water == 20_000
    assert PERIODS["P3"].go_ipfs_mode is DHTMode.CLIENT
    assert PERIODS["P4"].duration_days == 3.0 and PERIODS["P4"].hydra_heads == 0
    assert PERIODS["P0"].hydra_heads == 3

    # and the scaled scenario configs preserve the mechanism ordering
    for n_peers in (800, 2_000, 10_000):
        p0_low, p0_high = PERIODS["P0"].scaled_watermarks(n_peers)
        p2_low, p2_high = PERIODS["P2"].scaled_watermarks(n_peers)
        assert p0_low < p0_high <= p2_high
        assert p0_low < p2_low
