"""Table III — go-ipfs version changes observed during P4.

Regenerates the upgrade / downgrade / change counts and the main/dirty
transition matrix from the recorded agent-change log, and checks the paper's
qualitative findings: upgrades outnumber downgrades, commit-only changes are
common, and transitions overwhelmingly stay within main→main or dirty→dirty.
"""

from repro.analysis.tables import TextTable
from repro.core.metadata import version_changes
from repro.experiments.paper_values import PAPER

from benchlib import scale_note


def test_table3_version_changes(benchmark, p4_result):
    dataset = p4_result.dataset("go-ipfs")
    report = benchmark(version_changes, dataset)

    print()
    print(f"P4: {scale_note(p4_result)}")
    table = TextTable(
        headers=["Quantity", "measured", "paper"],
        title="Table III — go-ipfs version changes",
    )
    paper_values = {
        "Upgrade": PAPER.version_upgrades,
        "Downgrade": PAPER.version_downgrades,
        "Change": PAPER.version_changes,
        "main–main": PAPER.main_to_main,
        "dirty–main": PAPER.dirty_to_main,
        "main–dirty": PAPER.main_to_dirty,
        "dirty–dirty": PAPER.dirty_to_dirty,
    }
    measured_values = {
        "Upgrade": report.upgrades,
        "Downgrade": report.downgrades,
        "Change": report.changes,
        "main–main": report.main_to_main,
        "dirty–main": report.dirty_to_main,
        "main–dirty": report.main_to_dirty,
        "dirty–dirty": report.dirty_to_dirty,
    }
    for key, paper_value in paper_values.items():
        table.add_row(key, measured_values[key], paper_value)
    print(table.render())
    print(f"ground-truth version changes applied by the simulator: {p4_result.version_changes}")

    # Shape 1: version changes happen, but they are rare relative to the population
    # (paper: 530 classified changes among ~50k go-ipfs peers over 3 days).
    assert report.total > 0
    assert report.total < 0.1 * dataset.pid_count()

    # Shape 2: upgrades outnumber downgrades (paper: 218 vs 107).  At the
    # simulated scale only a handful of changes are observed, so the ordering
    # is only required once the sample is large enough to be meaningful.
    if report.upgrades + report.downgrades >= 8:
        assert report.upgrades > report.downgrades

    # Shape 3: commit-only changes exist (the most common single category).
    assert report.changes > 0

    # Shape 4: transitions are dominated by main–main and dirty–dirty;
    # cross transitions (dirty–main / main–dirty) are rare (paper: 9 and 5 of 530).
    stable = report.main_to_main + report.dirty_to_dirty
    crossing = report.dirty_to_main + report.main_to_dirty
    assert stable >= crossing

    # Shape 5: every classified change is accounted for in the transition matrix.
    assert stable + crossing == report.total
