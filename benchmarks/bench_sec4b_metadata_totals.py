"""Section IV.B — agent composition totals, role flips, and anomalies.

Regenerates the prose numbers of Section IV.B that are not part of a figure:
the composition of the PID population by agent family, the /ipfs/kad/1.0.0
role-flapping and /libp2p/autonat/1.0.0 flapping counts, and the anomaly
indicators (go-ipfs agents without Bitswap / with /sbptp/, missing identify).
"""

from repro.analysis.tables import TextTable
from repro.core.metadata import analyze_metadata
from repro.experiments.paper_values import PAPER

from benchlib import scale_note


def test_sec4b_metadata_totals(benchmark, p4_result):
    dataset = p4_result.dataset("go-ipfs")
    report = benchmark(analyze_metadata, dataset)

    print()
    print(f"P4: {scale_note(p4_result)}")
    scale = dataset.pid_count() / PAPER.total_pids
    table = TextTable(
        headers=["Quantity", "measured", "paper", "paper x scale"],
        title="Section IV.B — composition, flapping, anomalies",
    )
    rows = [
        ("known PIDs", dataset.pid_count(), PAPER.total_pids),
        ("go-ipfs agents", report.agents.goipfs_peers, PAPER.goipfs_pids),
        ("hydra agents", report.agents.hydra_peers, PAPER.hydra_pids),
        ("crawler agents", report.agents.crawler_peers, PAPER.crawler_pids),
        ("other agents", report.agents.other_peers, PAPER.other_agent_pids),
        ("missing agent", report.agents.missing_peers, PAPER.missing_agent_pids),
        ("kad support", report.protocols.kad_support, PAPER.kad_support),
        ("bitswap support", report.protocols.bitswap_support, PAPER.bitswap_support),
        (
            "go-ipfs w/o bitswap",
            report.protocols.goipfs_without_bitswap,
            PAPER.goipfs_080_without_bitswap,
        ),
        ("kad-flapping peers", report.kad_flaps.peers, PAPER.kad_flap_peers),
        ("kad announcement changes", report.kad_flaps.changes, PAPER.kad_flap_changes),
        ("autonat-flapping peers", report.autonat_flaps.peers, PAPER.autonat_flap_peers),
        ("autonat announcement changes", report.autonat_flaps.changes, PAPER.autonat_flap_changes),
    ]
    for name, measured, paper in rows:
        table.add_row(name, measured, paper, f"{paper * scale:.0f}")
    print(table.render())

    agents, protocols = report.agents, report.protocols

    # Shape 1: composition ordering matches the paper:
    # go-ipfs >> other >> missing > hydra ~ crawler (all non-empty).
    assert agents.goipfs_peers > agents.other_peers > agents.hydra_peers
    assert agents.crawler_peers > 0 and agents.missing_peers > 0

    # Shape 2: the storm anomaly exists — go-ipfs agents without Bitswap that
    # announce /sbptp/ instead.
    assert protocols.goipfs_without_bitswap > 0
    assert protocols.goipfs_with_sbptp > 0
    assert protocols.goipfs_with_sbptp <= protocols.goipfs_without_bitswap

    # Shape 3: role flapping — a small share of peers flips its kad announcement
    # many times (paper: 2'481 peers, 68'396 changes → ~27 changes per peer).
    if report.kad_flaps.peers:
        assert report.kad_flaps.peers < 0.15 * dataset.pid_count()
        assert report.kad_flaps.changes_per_peer > 2

    # Shape 4: autonat flapping affects at least as many peers as kad flapping
    # (paper: 3'603 vs 2'481).
    assert report.autonat_flaps.peers >= report.kad_flaps.peers * 0.5
