"""Perf-regression gate: compare a fresh perf snapshot against the baseline.

CI runs the core benchmark harness (``benchmarks/benchlib.py``) to produce a
current ``BENCH_*.json`` snapshot and then calls this script to compare it
against the committed ``BENCH_core.json`` baseline:

* **Throughput** — the run fails when total ``events_per_sec`` drops more
  than ``tolerance`` (default 30 %) below the baseline.  The tolerance can be
  overridden with ``--tolerance`` or the ``REPRO_PERF_TOLERANCE`` environment
  variable (useful on slow or noisy runners).
* **Determinism** — for every period whose (peers, days, seed) scale matches
  the baseline, ``events_processed`` and the per-dataset result counts must
  match *exactly*: those are machine-independent fingerprints, so a mismatch
  means the simulation's behaviour changed, not that the machine was slow.

The script also understands the scaling-curve snapshots produced by
``benchmarks/bench_scaling.py`` (detected by their ``points`` list): besides
the per-point throughput floor and exact ``events_processed`` fingerprints,
the **shape** of the curve is gated — the throughput ratio between adjacent
scale points must not degrade more than the tolerance relative to the
baseline's ratio.  A uniformly slower runner passes; a change that makes
per-event cost grow superlinearly with population does not.

Usage::

    PYTHONPATH=src python benchmarks/benchlib.py BENCH_current.json
    python benchmarks/check_regression.py --current BENCH_current.json

    PYTHONPATH=src python benchmarks/bench_scaling.py BENCH_scaling_current.json
    python benchmarks/check_regression.py \
        --baseline BENCH_scaling.json --current BENCH_scaling_current.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

#: default allowed events/sec drop below baseline (0.30 = 30 %)
DEFAULT_TOLERANCE = 0.30
TOLERANCE_ENV = "REPRO_PERF_TOLERANCE"


def load_snapshot(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


def resolve_tolerance(explicit: Optional[float] = None) -> float:
    """Explicit flag wins, then the environment knob, then the default."""
    if explicit is not None:
        tolerance = explicit
    else:
        raw = os.environ.get(TOLERANCE_ENV, "")
        try:
            tolerance = float(raw) if raw else DEFAULT_TOLERANCE
        except ValueError:
            raise SystemExit(f"invalid {TOLERANCE_ENV}={raw!r} (expected a float)")
    if not 0.0 <= tolerance < 1.0:
        raise SystemExit(f"tolerance must be within [0, 1), got {tolerance}")
    return tolerance


def _scale_key(period: Dict) -> tuple:
    return (period["n_peers"], period["duration_days"], period["seed"])


def check_regression(
    baseline: Dict, current: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Return a list of problems (empty = gate passes)."""
    problems: List[str] = []

    base_rate = baseline["totals"]["events_per_sec"]
    cur_rate = current["totals"]["events_per_sec"]
    floor = base_rate * (1.0 - tolerance)
    if cur_rate < floor:
        problems.append(
            f"throughput regression: {cur_rate:.1f} events/sec is below "
            f"{floor:.1f} (baseline {base_rate:.1f}, tolerance {tolerance:.0%})"
        )

    base_periods = {p["period_id"]: p for p in baseline["periods"]}
    for period in current["periods"]:
        period_id = period["period_id"]
        base = base_periods.get(period_id)
        if base is None or _scale_key(base) != _scale_key(period):
            # Different scale (e.g. a REPRO_BENCH_PEERS smoke run): the
            # deterministic fingerprints are not comparable.
            continue
        if period["events_processed"] != base["events_processed"]:
            problems.append(
                f"{period_id}: events_processed changed "
                f"{base['events_processed']} -> {period['events_processed']} "
                "(same scale and seed: simulation behaviour changed)"
            )
        if period["dataset_counts"] != base["dataset_counts"]:
            problems.append(
                f"{period_id}: dataset counts changed at identical scale/seed "
                "(simulation behaviour changed)"
            )
    return problems


def _point_key(point: Dict) -> tuple:
    return (
        point["n_peers"],
        point["duration_days"],
        point["seed"],
        point["engine"],
        point["shards"],
    )


def is_scaling_snapshot(snapshot: Dict) -> bool:
    return "points" in snapshot


def check_scaling(
    baseline: Dict, current: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Gate a scaling-curve snapshot; returns problems (empty = pass).

    Per matching point: exact ``events_processed`` fingerprint and an
    events/sec floor of ``baseline * (1 - tolerance)``.  Per adjacent pair of
    matched points: the current throughput ratio (smaller scale → larger
    scale) must stay within tolerance of the baseline's ratio, so a slow
    machine passes but superlinear degradation with population does not.
    """
    problems: List[str] = []
    base_points = {_point_key(p): p for p in baseline["points"]}
    matched = []
    for point in current["points"]:
        base = base_points.get(_point_key(point))
        if base is None:
            # Different scale (e.g. a REPRO_SCALING_SCALES smoke run).
            continue
        matched.append((base, point))
        label = f"{point['n_peers']} peers ({point['engine']})"
        if point["events_processed"] != base["events_processed"]:
            problems.append(
                f"{label}: events_processed changed "
                f"{base['events_processed']} -> {point['events_processed']} "
                "(same scale and seed: simulation behaviour changed)"
            )
        floor = base["events_per_sec"] * (1.0 - tolerance)
        if point["events_per_sec"] < floor:
            problems.append(
                f"{label}: throughput regression — {point['events_per_sec']:.1f} "
                f"events/sec is below {floor:.1f} "
                f"(baseline {base['events_per_sec']:.1f}, tolerance {tolerance:.0%})"
            )
    for (base_a, cur_a), (base_b, cur_b) in zip(matched, matched[1:]):
        if not (base_a["events_per_sec"] and cur_a["events_per_sec"]):
            continue
        base_ratio = base_b["events_per_sec"] / base_a["events_per_sec"]
        cur_ratio = cur_b["events_per_sec"] / cur_a["events_per_sec"]
        if cur_ratio < base_ratio * (1.0 - tolerance):
            problems.append(
                f"superlinear degradation between {cur_a['n_peers']} and "
                f"{cur_b['n_peers']} peers: throughput ratio fell to "
                f"{cur_ratio:.2f} (baseline {base_ratio:.2f}, tolerance {tolerance:.0%})"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a perf snapshot regresses against the baseline.",
    )
    parser.add_argument(
        "--baseline", default="BENCH_core.json",
        help="committed baseline snapshot (default: BENCH_core.json)",
    )
    parser.add_argument(
        "--current", required=True,
        help="freshly produced snapshot to check",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help=(
            "allowed events/sec drop as a fraction "
            f"(default: ${TOLERANCE_ENV} or {DEFAULT_TOLERANCE})"
        ),
    )
    args = parser.parse_args(argv)

    tolerance = resolve_tolerance(args.tolerance)
    baseline = load_snapshot(args.baseline)
    current = load_snapshot(args.current)

    if is_scaling_snapshot(baseline) != is_scaling_snapshot(current):
        raise SystemExit(
            "snapshot kind mismatch: one is a scaling curve, the other a core "
            "period snapshot — pass matching --baseline/--current files"
        )
    if is_scaling_snapshot(current):
        for point in current["points"]:
            print(
                f"{point['n_peers']:>8} peers ({point['engine']}): "
                f"{point['events_per_sec']:.1f} events/sec"
            )
        problems = check_scaling(baseline, current, tolerance)
    else:
        base_rate = baseline["totals"]["events_per_sec"]
        cur_rate = current["totals"]["events_per_sec"]
        print(
            f"baseline {base_rate:.1f} events/sec, current {cur_rate:.1f} "
            f"({cur_rate / base_rate:.1%} of baseline, tolerance {tolerance:.0%})"
        )
        problems = check_regression(baseline, current, tolerance)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
