"""Scaling-curve benchmark: events/sec at 1k / 10k / 100k peers.

Times one fixed workload (the P2 measurement period without the crawler) at
three population scales and writes ``BENCH_scaling.json``.  The small scales
run on the single-fabric vectorized engine; the 100k point runs sharded,
which is the intended operating mode at that size (see
``repro/simulation/sharded.py``).

Each point records, besides wall times, the machine-independent
``events_processed`` fingerprint — ``benchmarks/check_regression.py``
compares those exactly and additionally fails when per-event throughput
degrades *superlinearly* between adjacent scale points (the curve is allowed
to be a constant factor slower on a slow runner, but not to bend).

Environment knobs:

* ``REPRO_SCALING_SCALES`` — comma-separated population sizes
  (default ``1000,10000,100000``; smoke runs use e.g. ``200,400``)
* ``REPRO_BENCH_SEED``     — seed (default 7)
* ``REPRO_BENCH_WORKERS``  — worker processes for the sharded point

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py                # full curve
    PYTHONPATH=src python benchmarks/bench_scaling.py BENCH_out.json
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.scenarios import build_scenario_config
from repro.simulation.scenario import Scenario
from repro.simulation.sharded import run_sharded_scenario

DEFAULT_SNAPSHOT = "BENCH_scaling.json"
SCENARIO = "p2"
DURATION_DAYS = 0.01
#: populations simulated per point; the largest runs sharded
DEFAULT_SCALES = (1_000, 10_000, 100_000)
#: single-fabric up to (exclusive) this population, sharded beyond
SHARD_ABOVE = 50_000
SHARDS = 8


def _scales() -> Sequence[int]:
    raw = os.environ.get("REPRO_SCALING_SCALES", "")
    if not raw:
        return DEFAULT_SCALES
    try:
        scales = tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"invalid REPRO_SCALING_SCALES={raw!r}")
    return scales or DEFAULT_SCALES


def _seed() -> int:
    raw = os.environ.get("REPRO_BENCH_SEED", "")
    try:
        return int(raw) if raw else 7
    except ValueError:
        return 7


def measure_point(n_peers: int, seed: int) -> dict:
    """Run the workload at one scale; wall-clock split into setup and run."""
    config = build_scenario_config(
        SCENARIO, n_peers=n_peers, duration_days=DURATION_DAYS, seed=seed
    )
    if n_peers >= SHARD_ABOVE:
        config = dataclasses.replace(config, engine="sharded", engine_shards=SHARDS)
        started = time.perf_counter()
        result = run_sharded_scenario(config)
        run_seconds = time.perf_counter() - started
        setup_seconds = 0.0  # population generation happens inside the shards
        engine = "sharded"
        shards = SHARDS
    else:
        started = time.perf_counter()
        scenario = Scenario(config)
        setup_seconds = time.perf_counter() - started
        started = time.perf_counter()
        result = scenario.run()
        run_seconds = time.perf_counter() - started
        engine = config.engine
        shards = 1
    wall = setup_seconds + run_seconds
    return {
        "n_peers": n_peers,
        "duration_days": DURATION_DAYS,
        "seed": seed,
        "engine": engine,
        "shards": shards,
        "setup_seconds": round(setup_seconds, 3),
        "run_seconds": round(run_seconds, 3),
        "wall_seconds": round(wall, 3),
        "events_processed": result.events_processed,
        "events_per_sec": round(result.events_processed / wall, 1) if wall > 0 else 0.0,
    }


def run_scaling_bench(out: Optional[str] = DEFAULT_SNAPSHOT) -> List[dict]:
    seed = _seed()
    points = []
    for n_peers in _scales():
        point = measure_point(n_peers, seed)
        points.append(point)
        print(
            f"{point['n_peers']:>8} peers  {point['engine']:<10} "
            f"setup {point['setup_seconds']:>7.2f}s  run {point['run_seconds']:>7.2f}s  "
            f"{point['events_processed']:>9} events  {point['events_per_sec']:>9.0f} ev/s"
        )
    snapshot = {
        "schema": "repro-bench-scaling/1",
        "scenario": SCENARIO,
        "duration_days": DURATION_DAYS,
        "seed": seed,
        "points": points,
    }
    if out:
        with open(out, "w") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out}")
    return points


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    out = argv[0] if argv else DEFAULT_SNAPSHOT
    run_scaling_bench(out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
