"""Network-realism regimes — reachability/latency vs measurement quality.

Runs the netmodel scenario family at several strengths and asserts the regime
shapes the subsystem is designed around:

* a higher unreachable (NAT) fraction ⇒ a monotonically larger crawler
  undercount — the crawler discovers the NATed servers in routing tables but
  cannot dial them, while the passive vantage point still records their
  inbound connections (the paper's crawler-undercount-vs-passive gap);
* a higher inter-region RTT scale ⇒ higher retrieval-latency percentiles
  (p90 stretches with every round trip) and more time-bounded lookups giving
  up before they converge.

Run as a script to (re)generate the ``BENCH_netmodel.json`` artifact the CI
perf-regression job collects::

    PYTHONPATH=src python benchmarks/bench_netmodel.py [out.json]

The payload is deterministic — no timestamps, no wall-clock fields — so two
runs at the same scale are byte-identical.
"""

import json
import sys
from functools import lru_cache

from conftest import _env_float, _env_int, BENCH_SEED

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.reachability_report import crawler_coverage, reachability_metrics
from repro.scenarios.catalog import (
    high_latency_retrieval_config,
    nat_heavy_crawl_config,
)
from repro.simulation.scenario import Scenario

NETMODEL_PEERS = 300
NETMODEL_DAYS = 0.15

#: extra NAT share on top of the ground-truth behind_nat peers
NAT_SHARES = (0.05, 0.35, 0.7)
#: global multiplier on every inter-region RTT
RTT_SCALES = (1.0, 4.0, 12.0)


def _bench_scale():
    peers = _env_int("REPRO_BENCH_PEERS") or NETMODEL_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or NETMODEL_DAYS
    return peers, days


def _run(builder, kwarg, value):
    peers, days = _bench_scale()
    config = builder(peers, days, BENCH_SEED, **{kwarg: value})
    return Scenario(config).run()


@lru_cache(maxsize=None)
def nat_runs():
    return {s: _run(nat_heavy_crawl_config, "nat_share", s) for s in NAT_SHARES}


@lru_cache(maxsize=None)
def latency_runs():
    return {s: _run(high_latency_retrieval_config, "rtt_scale", s) for s in RTT_SCALES}


def undercount(result) -> float:
    """Share of crawler-discovered peers the crawler could never reach."""
    coverage = crawler_coverage(result)
    return coverage["undercount_vs_discovered"] if coverage else 0.0


def retrieve_p90(result) -> float:
    """p90 of the simulated retrieval latencies (accrued RTT + dial time)."""
    latencies = result.content.retrieve_latencies
    return EmpiricalCDF(latencies).quantile(0.9) if latencies else 0.0


def build_payload():
    """The BENCH_netmodel.json payload: per-regime strength → distortion."""
    peers, days = _bench_scale()
    payload = {
        "schema": "repro-bench-netmodel/1",
        "n_peers": peers,
        "duration_days": days,
        "seed": BENCH_SEED,
        "nat": {},
        "latency": {},
    }
    for share, result in nat_runs().items():
        metrics = reachability_metrics(result)
        coverage = metrics.get("crawl", {})
        payload["nat"][f"{share:g}"] = {
            "unreachable_share": metrics["unreachable_share"],
            "union_discovered": coverage.get("union_discovered", 0),
            "union_reachable": coverage.get("union_reachable", 0),
            "undercount_vs_discovered": coverage.get("undercount_vs_discovered", 0.0),
            "passive_pids": coverage.get("passive_pids", 0),
            "undercount_vs_passive": coverage.get("undercount_vs_passive", 0.0),
            "dial_failure_rate": metrics["dial_failure_rate"],
        }
    for scale, result in latency_runs().items():
        metrics = reachability_metrics(result)
        content = result.content
        payload["latency"][f"{scale:g}"] = {
            "mean_rtt": metrics["mean_rtt"],
            "retrieve_latency_p90": round(retrieve_p90(result), 4),
            "lookups_timed": metrics["lookups_timed"],
            "lookup_timeouts": metrics["lookup_timeouts"],
            "retrieval_success_rate": round(content.retrieval_success_rate, 6),
        }
    return payload


def assert_regime_shapes():
    """The regime-shape contract, shared by the pytest entry and script mode
    (CI runs the script once: asserts, then writes the artifact)."""
    nat = nat_runs()
    latency = latency_runs()

    # More NATed peers ⇒ the crawler reaches an ever-smaller share of what it
    # discovers, while the passive vantage point keeps seeing inbound dials.
    low, mid, high = (undercount(nat[s]) for s in NAT_SHARES)
    assert low < mid < high
    vs_passive = {s: crawler_coverage(nat[s])["undercount_vs_passive"] for s in NAT_SHARES}
    assert vs_passive[NAT_SHARES[0]] < vs_passive[NAT_SHARES[-1]]
    # The gap is the paper's: passive observes peers the crawler cannot reach.
    heavy_coverage = crawler_coverage(nat[NAT_SHARES[-1]])
    assert heavy_coverage["union_reachable"] < heavy_coverage["passive_pids"]

    # Higher RTT ⇒ retrieval p90 stretches and time-bounded walks expire.
    p90 = {s: retrieve_p90(latency[s]) for s in RTT_SCALES}
    assert p90[RTT_SCALES[0]] < p90[RTT_SCALES[1]] < p90[RTT_SCALES[2]]
    rtts = {s: latency[s].netmodel.mean_rtt for s in RTT_SCALES}
    assert rtts[RTT_SCALES[0]] < rtts[RTT_SCALES[1]] < rtts[RTT_SCALES[2]]
    timeouts = {s: latency[s].netmodel.lookup_timeouts for s in RTT_SCALES}
    assert timeouts[RTT_SCALES[0]] <= timeouts[RTT_SCALES[1]] <= timeouts[RTT_SCALES[2]]
    assert timeouts[RTT_SCALES[2]] > timeouts[RTT_SCALES[0]]


def test_netmodel_regimes(benchmark):
    payload = benchmark(build_payload)
    print()
    print(json.dumps(payload, indent=1, sort_keys=True))
    assert_regime_shapes()


def main(argv):
    out = argv[1] if len(argv) > 1 else "BENCH_netmodel.json"
    assert_regime_shapes()
    payload = build_payload()
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
