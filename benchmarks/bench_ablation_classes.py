"""Ablation — sensitivity of the Table IV classification thresholds.

The paper fixes the class cut-offs at 24 h / 2 h / 3 connections and notes that
the resulting "core" is a lower bound (misclassification moves core nodes into
light/one-time, never the other way).  This ablation sweeps the thresholds on
the same P4 dataset and checks the monotonicity that argument relies on.
"""

from repro.analysis.tables import TextTable
from repro.core.classification import ClassificationThresholds, PeerClassLabel
from repro.core.netsize import classify_peers

from benchlib import scale_note

HOUR = 3_600.0

SWEEP = [
    (
        "strict",
        ClassificationThresholds(
            heavy_duration=36 * HOUR, normal_duration=4 * HOUR, light_min_connections=5
        ),
    ),
    ("paper", ClassificationThresholds()),
    (
        "lenient",
        ClassificationThresholds(
            heavy_duration=12 * HOUR, normal_duration=1 * HOUR, light_min_connections=2
        ),
    ),
]


def run_sweep(dataset):
    return {name: classify_peers(dataset, thresholds) for name, thresholds in SWEEP}


def test_ablation_classification_thresholds(benchmark, p4_result):
    dataset = p4_result.dataset("go-ipfs")
    estimates = benchmark(run_sweep, dataset)

    print()
    print(f"P4: {scale_note(p4_result)}")
    table = TextTable(
        headers=["thresholds", "heavy", "normal", "light", "one-time", "core size"],
        title="Ablation — classification threshold sensitivity",
    )
    for name, estimate in estimates.items():
        counts = estimate.counts
        table.add_row(
            name,
            counts[PeerClassLabel.HEAVY].peers,
            counts[PeerClassLabel.NORMAL].peers,
            counts[PeerClassLabel.LIGHT].peers,
            counts[PeerClassLabel.ONE_TIME].peers,
            estimate.core_size,
        )
    print(table.render())

    strict = estimates["strict"]
    paper = estimates["paper"]
    lenient = estimates["lenient"]

    # Shape 1: every sweep point partitions the same peer population.
    classified = {e.classified_peers for e in estimates.values()}
    assert len(classified) == 1

    # Shape 2: the heavy core is monotone in the duration threshold —
    # stricter cut-offs can only shrink it, lenient ones only grow it.
    assert strict.core_size <= paper.core_size <= lenient.core_size

    # Shape 3: the paper's cut-offs sit strictly between the sweep extremes for
    # the combined stable population (heavy + normal).
    def stable(estimate):
        return (estimate.counts[PeerClassLabel.HEAVY].peers
                + estimate.counts[PeerClassLabel.NORMAL].peers)

    assert stable(strict) <= stable(paper) <= stable(lenient)

    # Shape 4: raising the light connection threshold moves peers into one-time.
    assert (strict.counts[PeerClassLabel.ONE_TIME].peers
            >= lenient.counts[PeerClassLabel.ONE_TIME].peers)
