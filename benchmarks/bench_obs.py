"""Metrics-overhead gate: streaming telemetry must stay near-free.

Runs one fixed workload with metrics disabled (the default
``population.obs=None``) and enabled, in interleaved off/on pairs under a
CPU timer, and fails when the enabled variant costs more than the tolerated
overhead (default 5 %).  The observability layer is supposed to be a plain
integer increment per fabric event plus one flush per window; this gate
keeps that promise honest as instruments accumulate.

The timing protocol is built for noisy shared runners: ``process_time``
(ignores co-tenants), GC parked around each run (collector pauses dwarf a
5 % bound), one untimed warm-up per variant, and interleaved off/on pairs.
The gated number is the ratio of the best-of-N times: scheduler noise only
ever *adds* time, so the minimum is the stable estimator of each variant's
true cost, and its ratio converges with repeats where a per-pair median
keeps a few points of jitter.  The per-pair median is still printed as a
drift diagnostic.

The snapshot written to ``BENCH_obs.json`` holds only machine-independent
fields — event counts, closed windows, observation totals, run-total
counters — so the committed baseline is a determinism fingerprint: CI
regenerates it and compares byte-for-byte.  Timing numbers go to stdout
only.

Environment knobs:

* ``REPRO_OBS_TOLERANCE`` — allowed fractional overhead (default 0.05)
* ``REPRO_OBS_REPEATS``   — off/on timing pairs for the median (default 7)
* ``REPRO_BENCH_PEERS`` / ``REPRO_BENCH_DAYS`` / ``REPRO_BENCH_SEED`` —
  workload scale overrides (shared with the other benchmarks)

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [BENCH_obs.json]
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import statistics
import sys
import time
from typing import List, Tuple

from conftest import BENCH_SEED, _env_float, _env_int

from repro.obs import ObsConfig
from repro.scenarios import build_scenario_config
from repro.simulation.scenario import Scenario

DEFAULT_SNAPSHOT = "BENCH_obs.json"
SNAPSHOT_SCHEMA = "repro-bench-obs/1"
#: a full-stack workload (bandwidth + content runtimes, retrieval latency
#: histograms) — the gate measures the marginal cost of the obs runtime on a
#: representative fabric, not the degenerate fabric where it is the only
#: runtime attached
SCENARIO = "flash-crowd-large-blocks"
OBS_PEERS = 600
#: long enough that one run takes O(1s) — the 5 % gate needs the timing
#: signal to dominate scheduler jitter
OBS_DAYS = 0.5
WINDOW_SECONDS = 300.0
DEFAULT_TOLERANCE = 0.05
DEFAULT_REPEATS = 7
TOLERANCE_ENV = "REPRO_OBS_TOLERANCE"
REPEATS_ENV = "REPRO_OBS_REPEATS"


def _tolerance() -> float:
    raw = os.environ.get(TOLERANCE_ENV, "")
    try:
        tolerance = float(raw) if raw else DEFAULT_TOLERANCE
    except ValueError:
        raise SystemExit(f"invalid {TOLERANCE_ENV}={raw!r} (expected a float)")
    if tolerance <= 0:
        raise SystemExit(f"{TOLERANCE_ENV} must be positive, got {tolerance}")
    return tolerance


def _repeats() -> int:
    repeats = _env_int(REPEATS_ENV) or DEFAULT_REPEATS
    if repeats < 1:
        raise SystemExit(f"{REPEATS_ENV} must be >= 1, got {repeats}")
    return repeats


def _config(with_metrics: bool):
    peers = _env_int("REPRO_BENCH_PEERS") or OBS_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or OBS_DAYS
    config = build_scenario_config(
        SCENARIO, n_peers=peers, duration_days=days, seed=BENCH_SEED
    )
    if with_metrics:
        config = dataclasses.replace(
            config,
            population=dataclasses.replace(
                config.population, obs=ObsConfig(window=WINDOW_SECONDS)
            ),
        )
    return config


def _timed_run(with_metrics: bool) -> Tuple[float, object]:
    """One run under a CPU timer, GC parked: process_time ignores the other
    tenants of a shared runner, and collector pauses would otherwise swamp a
    5 % bound."""
    config = _config(with_metrics)
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        result = Scenario(config).run()
        return time.process_time() - start, result
    finally:
        gc.enable()


def _measure(repeats: int) -> Tuple[float, object, float, object, List[float]]:
    """``repeats`` interleaved off/on pairs after one untimed warm-up each.

    Returns the best CPU seconds per variant — the gated overhead is their
    ratio, since noise only inflates a run and the minimum converges on the
    true cost — both results, and the per-pair on/off ratios whose median is
    printed as a drift diagnostic.
    """
    _timed_run(False)
    _timed_run(True)
    best_off = best_on = float("inf")
    baseline = metered = None
    ratios: List[float] = []
    for _ in range(repeats):
        off_wall, baseline = _timed_run(False)
        on_wall, metered = _timed_run(True)
        best_off = min(best_off, off_wall)
        best_on = min(best_on, on_wall)
        ratios.append(on_wall / off_wall)
    return best_off, baseline, best_on, metered, ratios


def snapshot_payload(baseline, metered) -> dict:
    """Machine-independent fingerprint of both variants (no wall-clock)."""
    summary = metered.metrics
    peers = _env_int("REPRO_BENCH_PEERS") or OBS_PEERS
    days = _env_float("REPRO_BENCH_DAYS") or OBS_DAYS
    return {
        "schema": SNAPSHOT_SCHEMA,
        "scenario": SCENARIO,
        "n_peers": peers,
        "duration_days": days,
        "seed": BENCH_SEED,
        "window_seconds": WINDOW_SECONDS,
        "baseline": {"events_processed": baseline.events_processed},
        "metrics": {
            "events_processed": metered.events_processed,
            "windows_closed": summary.windows_closed,
            "observations": summary.observations,
            "windows_dropped": summary.windows_dropped,
            "counters": summary.counters,
        },
    }


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    out_path = args[0] if args else DEFAULT_SNAPSHOT
    tolerance = _tolerance()
    repeats = _repeats()

    off_wall, baseline, on_wall, metered, ratios = _measure(repeats)
    if metered.metrics is None:
        raise SystemExit("metrics-enabled run returned no MetricsSummary")

    payload = snapshot_payload(baseline, metered)
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")

    overhead = on_wall / off_wall - 1.0 if off_wall > 0 else 0.0
    drift = statistics.median(ratios) - 1.0
    off_rate = baseline.events_processed / off_wall if off_wall > 0 else 0.0
    on_rate = metered.events_processed / on_wall if on_wall > 0 else 0.0
    print(
        f"metrics off: {off_wall:.3f}s cpu best-of-{repeats} ({off_rate:,.0f} ev/s)\n"
        f"metrics on:  {on_wall:.3f}s cpu best-of-{repeats} ({on_rate:,.0f} ev/s), "
        f"{payload['metrics']['windows_closed']} windows, "
        f"{payload['metrics']['observations']} observations\n"
        f"overhead: {overhead:+.1%} best-of-{repeats} ratio "
        f"(tolerance {tolerance:.0%}; paired-median drift {drift:+.1%})\n"
        f"wrote {out_path}"
    )
    if overhead > tolerance:
        print(
            f"FAIL: metrics-enabled overhead {overhead:.1%} exceeds "
            f"{tolerance:.0%} tolerance",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
