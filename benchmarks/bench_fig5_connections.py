"""Fig. 5 — simultaneous peer connections over the first 24 h of each period.

Regenerates the per-period connection time series for every vantage point and
checks the mechanism the figure shows: the tight-watermark periods (P0, P1) are
capped by the node's own trimming, P2 plateaus *below* its LowWater threshold,
and the DHT-Client vantage point (P3) holds an order of magnitude fewer
connections.
"""

from repro.analysis.plots import ascii_series, downsample
from repro.core.timeseries import connections_over_time
from repro.experiments.paper_values import PAPER

from benchlib import scale_note


def build_series(results):
    series = {}
    for period_id, result in results.items():
        for label, dataset in result.datasets.items():
            if label == "hydra":
                continue
            series[f"{period_id}/{label}"] = connections_over_time(dataset, limit=86_400.0)
    return series


def test_fig5_simultaneous_connections(benchmark, p0_result, p1_result, p2_result, p3_result):
    results = {"P0": p0_result, "P1": p1_result, "P2": p2_result, "P3": p3_result}
    series = benchmark(build_series, results)

    print()
    for period_id, result in results.items():
        print(f"{period_id}: {scale_note(result)}")
    print("Fig. 5 — simultaneous connections over the first 24 h (sparklines):")
    print(ascii_series({k: downsample(v, 80) for k, v in series.items()}))
    print(
        "paper: P2 plateaus at ~15k–16k (< LowWater 18k); "
        f"max simultaneous connections ≈ {PAPER.max_simultaneous_connections:,}"
    )

    def peak(key):
        return max((v for _, v in series[key]), default=0.0)

    def median_level(key):
        values = sorted(v for _, v in series[key])
        return values[len(values) // 2] if values else 0.0

    # Shape 1: P0's own trimming keeps its connection count well below P2's.
    assert median_level("P0/go-ipfs") < median_level("P2/go-ipfs")

    # Shape 2: P2 never reaches its LowWater threshold (the paper's observation
    # that ~15k-16k simultaneous connections sit below LowWater 18k).
    p2_low_water = results["P2"].config.go_ipfs.low_water
    assert peak("P2/go-ipfs") < p2_low_water

    # Shape 3: the DHT-Client vantage point holds far fewer connections than the
    # server vantage point of the same period configuration (P3 vs P2).
    assert peak("P3/go-ipfs") < 0.75 * peak("P2/go-ipfs")

    # Shape 4: local trimming is visible in P0's close reasons but absent in P2's.
    p0_reasons = {c.close_reason for c in results["P0"].dataset("go-ipfs").connections}
    p2_reasons = {c.close_reason for c in results["P2"].dataset("go-ipfs").connections}
    assert "local-trim" in p0_reasons
    assert "local-trim" not in p2_reasons
