"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The expensive
part — simulating a measurement period — happens once per period in a
session-scoped fixture; the benchmarked callable is the analysis that produces
the table/figure from the recorded dataset, which is what "regenerating" the
result means for a passive measurement study.

Every benchmark prints the paper's reported values next to the values measured
on the simulated network.  Absolute counts differ (the simulated population is
a few thousand peers, the live network was ~62k); the *shape* claims the paper
makes are asserted programmatically.

Environment knobs:

* ``REPRO_BENCH_PEERS``  — override the per-period population size.
* ``REPRO_BENCH_DAYS``   — override the per-period duration (simulated days).
* ``REPRO_BENCH_SEED``   — override the scenario seed (default 7).
"""

from __future__ import annotations

import os
from typing import Optional

import pytest

from repro.experiments.runner import run_period_cached


def _env_int(name: str) -> Optional[int]:
    value = os.environ.get(name)
    return int(value) if value else None


def _env_float(name: str) -> Optional[float]:
    value = os.environ.get(name)
    return float(value) if value else None


BENCH_SEED = _env_int("REPRO_BENCH_SEED") or 7


def run_bench_period(period_id: str, run_crawler: Optional[bool] = None):
    """Run one period at benchmark scale, honouring the environment overrides."""
    return run_period_cached(
        period_id,
        n_peers=_env_int("REPRO_BENCH_PEERS"),
        duration_days=_env_float("REPRO_BENCH_DAYS"),
        seed=BENCH_SEED,
        run_crawler=run_crawler,
    )


@pytest.fixture(scope="session")
def p0_result():
    return run_bench_period("P0")


@pytest.fixture(scope="session")
def p1_result():
    return run_bench_period("P1")


@pytest.fixture(scope="session")
def p2_result():
    return run_bench_period("P2")


@pytest.fixture(scope="session")
def p3_result():
    return run_bench_period("P3")


@pytest.fixture(scope="session")
def p4_result():
    return run_bench_period("P4")


@pytest.fixture(scope="session")
def p14_result():
    return run_bench_period("P14")


@pytest.fixture(autouse=True)
def _echo_benchmark_report(capsys):
    """Re-emit each benchmark's printed report past pytest's output capture.

    Every benchmark prints the regenerated table/figure next to the paper's
    values; without this hook those reports would only be visible for failing
    tests.  The captured stdout is forwarded to the real stdout so it lands in
    the run log (e.g. ``bench_output.txt``).
    """
    import sys

    yield
    captured = capsys.readouterr()
    if captured.out:
        with capsys.disabled():
            sys.stdout.write(captured.out)
            sys.stdout.flush()
