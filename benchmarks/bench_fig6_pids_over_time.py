"""Fig. 6 — number of PIDs over time during the ~14 day measurement.

Regenerates both series of the figure — the cumulative number of PIDs ever
seen and the number of PIDs gone for more than three days that never returned —
and checks the findings the paper derives from it: continuous PID growth, a
plateau of *connected* PIDs, and a large gap between PIDs and simultaneous
connections (the "every peer has around two PIDs" argument).
"""

from repro.analysis.plots import ascii_series, downsample
from repro.core.timeseries import (
    connected_peers_over_time,
    gone_pids_over_time,
    pids_over_time,
    summarize_timeseries,
)
from repro.experiments.paper_values import PAPER

from benchlib import scale_note

DAY = 86_400.0


def build_fig6(dataset):
    return {
        "all": pids_over_time(dataset, step=3 * 3600.0),
        ">=3d not connected": gone_pids_over_time(dataset, gone_threshold=3 * DAY, step=3 * 3600.0),
        "connected": connected_peers_over_time(dataset, limit=None),
    }


def test_fig6_pids_over_time(benchmark, p14_result):
    dataset = p14_result.dataset("go-ipfs")
    series = benchmark(build_fig6, dataset)
    summary = summarize_timeseries(dataset)

    print()
    print(f"P14: {scale_note(p14_result)}")
    print("Fig. 6 — PIDs over time (sparklines):")
    print(ascii_series({k: downsample(v, 80) for k, v in series.items()}))
    print(
        f"measured: {summary.total_pids} PIDs total, "
        f"{int(series['>=3d not connected'][-1][1])} gone >= 3 d, "
        f"plateau of connected PIDs ~{summary.plateau_connected_pids}, "
        f"{summary.pids_per_simultaneous_connection:.1f} PIDs per simultaneous connection"
    )
    print(
        f"paper:    ~{PAPER.fig6_total_pids:,.0f} PIDs after {PAPER.fig6_duration_days:.0f} d, "
        "continuous growth, plateau of connected PIDs, ~2 PIDs per simultaneous connection"
    )

    all_series = [v for _, v in series["all"]]
    gone_series = [v for _, v in series[">=3d not connected"]]
    connected_series = [v for _, v in series["connected"]]

    # Shape 1: the number of seen PIDs grows continuously over the measurement.
    assert all_series == sorted(all_series)
    first_half = all_series[len(all_series) // 2]
    assert all_series[-1] > first_half > 0

    # Shape 2: a growing set of PIDs has been gone for more than three days and
    # never returned (one-time users, rotated PIDs).
    assert gone_series[-1] > 0
    assert gone_series == sorted(gone_series)

    # Shape 3: connected PIDs plateau — the late-measurement level is far below
    # the cumulative PID count.
    late_connected = connected_series[-max(1, len(connected_series) // 10):]
    plateau = sum(late_connected) / len(late_connected)
    assert plateau < 0.6 * all_series[-1]

    # Shape 4: many more PIDs are seen than are ever connected simultaneously
    # (the paper's "around two PIDs per peer" indicator is > 1).
    assert summary.pids_per_simultaneous_connection > 1.2
