"""Small helpers shared by the benchmark modules (not a benchmark itself)."""

from __future__ import annotations


def scale_note(result) -> str:
    """One-line description of the simulated scale, printed by every benchmark."""
    population = len(result.population)
    days = result.config.duration / 86_400.0
    return (
        f"[simulated scale: {population} peers, {days:.2f} d, seed {result.config.seed}; "
        f"paper scale: ~62k connected PIDs]"
    )
