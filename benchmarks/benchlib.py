"""Shared benchmark helpers plus the core perf harness.

Besides the small formatting helpers the figure/table benchmarks use, this
module is the entry point for the repo's performance telemetry: it times every
benchmark period (P0–P14) via :mod:`repro.perf` and writes the
``BENCH_core.json`` snapshot that perf-oriented PRs diff against.

Environment knobs (all optional):

* ``REPRO_BENCH_PEERS``   — population override for every period
* ``REPRO_BENCH_DAYS``    — simulated-days override for every period
* ``REPRO_BENCH_SEED``    — seed (default 7)
* ``REPRO_BENCH_WORKERS`` — worker processes for multi-period runs (default 1)

Run it directly to produce a fresh snapshot::

    PYTHONPATH=src python benchmarks/benchlib.py            # full harness
    PYTHONPATH=src REPRO_BENCH_PEERS=300 REPRO_BENCH_DAYS=0.1 \
        python benchmarks/benchlib.py                       # quick smoke
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro import perf
from repro.experiments.runner import bench_workers, measure_periods

#: the six benchmark periods, in Table I order
CORE_PERIODS: Tuple[str, ...] = ("P0", "P1", "P2", "P3", "P4", "P14")


def scale_note(result) -> str:
    """One-line description of the simulated scale, printed by every benchmark."""
    population = len(result.population)
    days = result.config.duration / 86_400.0
    return (
        f"[simulated scale: {population} peers, {days:.2f} d, seed {result.config.seed}; "
        f"paper scale: ~62k connected PIDs]"
    )


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "")
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "")
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def bench_env() -> dict:
    """The harness configuration taken from the ``REPRO_BENCH_*`` knobs."""
    seed = _env_int("REPRO_BENCH_SEED")
    return {
        "n_peers": _env_int("REPRO_BENCH_PEERS"),
        "duration_days": _env_float("REPRO_BENCH_DAYS"),
        "seed": seed if seed is not None else 7,
        "workers": bench_workers(),
    }


def run_core_bench(
    periods: Sequence[str] = CORE_PERIODS,
    out: Optional[str] = perf.DEFAULT_SNAPSHOT_NAME,
    note: str = "",
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> List[perf.PeriodPerf]:
    """Time every period and (optionally) write the ``BENCH_core.json`` snapshot.

    Explicit arguments win over the ``REPRO_BENCH_*`` environment knobs.
    """
    env = bench_env()
    perfs = measure_periods(
        periods,
        n_peers=n_peers if n_peers is not None else env["n_peers"],
        duration_days=duration_days if duration_days is not None else env["duration_days"],
        seed=seed if seed is not None else env["seed"],
        workers=workers if workers is not None else env["workers"],
    )
    if out:
        perf.write_snapshot(out, perfs, note=note)
    return perfs


def render_perf_table(perfs: Sequence[perf.PeriodPerf]) -> str:
    """Human-readable summary of a harness run."""
    lines = [
        f"{'period':<7}{'peers':>7}{'days':>7}{'wall s':>9}"
        f"{'events':>10}{'ev/s':>10}{'queries':>9}",
    ]
    for p in perfs:
        lines.append(
            f"{p.period_id:<7}{p.n_peers:>7}{p.duration_days:>7.2f}{p.wall_seconds:>9.2f}"
            f"{p.events_processed:>10}{p.events_per_sec:>10.0f}{p.queries_sent:>9}"
        )
    total_wall = sum(p.wall_seconds for p in perfs)
    total_events = sum(p.events_processed for p in perfs)
    rate = total_events / total_wall if total_wall > 0 else 0.0
    lines.append(f"{'total':<7}{'':>7}{'':>7}{total_wall:>9.2f}{total_events:>10}{rate:>10.0f}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    out = args[0] if args else perf.DEFAULT_SNAPSHOT_NAME
    perfs = run_core_bench(out=out, note="core perf harness run")
    print(render_perf_table(perfs))
    print(f"snapshot written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
