"""Fig. 2 — passive vs active measurement horizons.

Regenerates the per-period comparison of observed PIDs: total and DHT-Server
counts for the passive vantage points (go-ipfs, hydra union) next to the
active crawler's min/max discovered nodes.
"""

from repro.analysis.tables import TextTable
from repro.core.horizon import compare_horizons
from repro.experiments.paper_values import PAPER

from benchlib import scale_note


def build_comparisons(results):
    comparisons = {}
    for period_id, result in results.items():
        labels = [label for label in ("go-ipfs", "hydra") if label in result.datasets]
        comparisons[period_id] = compare_horizons(
            result.datasets, crawler_range=result.crawls.range(), labels=labels
        )
    return comparisons


def test_fig2_measurement_horizon(benchmark, p0_result, p2_result, p3_result, p4_result):
    results = {"P0": p0_result, "P2": p2_result, "P3": p3_result, "P4": p4_result}
    comparisons = benchmark(build_comparisons, results)

    print()
    table = TextTable(
        headers=[
            "Period", "Vantage", "total PIDs", "DHT-Server", "DHT-Client",
            "crawler min", "crawler max",
        ],
        title="Fig. 2 — measurement horizons (measured)",
    )
    for period_id, comparison in sorted(comparisons.items()):
        crawler = comparison.crawler
        for entry in comparison.entries:
            table.add_row(
                period_id, entry.label, entry.total_pids, entry.dht_server_pids,
                entry.dht_client_pids,
                crawler.min_discovered if crawler and crawler.crawls else "-",
                crawler.max_discovered if crawler and crawler.crawls else "-",
            )
    print(table.render())
    print(
        f"paper: passive vantage points saw {PAPER.passive_pid_range[0]:,}–"
        f"{PAPER.passive_pid_range[1]:,} PIDs; crawler ranges ~10k–25k (DHT-Servers only)"
    )
    for period_id, result in results.items():
        print(f"{period_id}: {scale_note(result)}")

    # Shape 1: passive vantage points observe DHT-Clients, the crawler cannot.
    for comparison in comparisons.values():
        assert comparison.passive_sees_clients()

    # Shape 2: total PIDs exceed DHT-Server PIDs at every passive vantage point.
    for comparison in comparisons.values():
        for entry in comparison.entries:
            assert entry.total_pids >= entry.dht_server_pids

    # Shape 3: over a multi-day period the historic peerstore of the passive
    # node accumulates at least as many DHT-Servers as one crawl snapshot.
    p4 = comparisons["P4"]
    exceeded = p4.passive_servers_exceed_crawler_min("go-ipfs")
    if exceeded is not None:
        assert p4.entry("go-ipfs").dht_server_pids > 0
        assert exceeded or (
            p4.entry("go-ipfs").dht_server_pids >= 0.8 * p4.crawler.min_discovered
        )

    # Shape 4: the hydra union covers at least as much as the go-ipfs node in P0.
    p0 = comparisons["P0"]
    assert p0.entry("hydra").total_pids >= 0.8 * p0.entry("go-ipfs").total_pids
