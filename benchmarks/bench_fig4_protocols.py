"""Fig. 4 — occurrences of the supported protocols (P4 data set).

Regenerates the protocol histogram and the Section IV.B support counts: almost
everyone speaks id/ping, Bitswap support is widespread but *lower* than the
go-ipfs population (the storm anomaly), and /ipfs/kad/1.0.0 marks the
DHT-Server subset.
"""

from repro.analysis.plots import ascii_bar_chart
from repro.core.metadata import agent_breakdown, protocol_breakdown
from repro.experiments.paper_values import PAPER
from repro.libp2p.protocols import IPFS_ID, IPFS_PING, KAD_DHT

from benchlib import scale_note


def test_fig4_protocol_occurrences(benchmark, p4_result):
    dataset = p4_result.dataset("go-ipfs")
    breakdown = benchmark(protocol_breakdown, dataset)
    agents = agent_breakdown(dataset)

    print()
    print(f"P4: {scale_note(p4_result)}")
    print("Fig. 4 — protocol occurrences (measured, top 20):")
    top = dict(breakdown.top_protocols(20))
    print(ascii_bar_chart(top, max_rows=20))
    print(
        f"measured: {breakdown.distinct_protocols} distinct protocols, "
        f"bitswap {breakdown.bitswap_support}, kad {breakdown.kad_support}, "
        f"go-ipfs without bitswap {breakdown.goipfs_without_bitswap} "
        f"(of {agents.goipfs_peers} go-ipfs peers)"
    )
    print(
        f"paper:    {PAPER.distinct_protocols} distinct protocols, "
        f"bitswap {PAPER.bitswap_support}, kad {PAPER.kad_support}, "
        f"go-ipfs 0.8.0 without bitswap {PAPER.goipfs_080_without_bitswap} "
        f"(of {PAPER.goipfs_pids} go-ipfs peers)"
    )

    # Shape 1: id and ping are the most widely supported protocols.
    assert breakdown.histogram[IPFS_ID] == breakdown.peers_with_protocols
    assert breakdown.histogram.get(IPFS_PING, 0) >= 0.9 * breakdown.peers_with_protocols

    # Shape 2: fewer peers support Bitswap than claim to run go-ipfs
    # (the storm anomaly), yet Bitswap support is widespread.
    assert breakdown.bitswap_support < agents.goipfs_peers
    assert breakdown.bitswap_support > 0.5 * breakdown.peers_with_protocols
    assert breakdown.goipfs_without_bitswap > 0
    assert breakdown.goipfs_with_sbptp > 0

    # Shape 3: the kad protocol marks a strict subset of peers (the DHT-Servers);
    # in the paper ~30 % of peers announce it.
    assert 0 < breakdown.kad_support < breakdown.peers_with_protocols
    kad_share = breakdown.kad_support / breakdown.peers_with_protocols
    paper_kad_share = PAPER.kad_support / (PAPER.total_pids - PAPER.missing_agent_pids)
    assert abs(kad_share - paper_kad_share) < 0.25

    # Shape 4: the measured histogram is keyed by the protocol strings of Fig. 4.
    assert KAD_DHT in breakdown.histogram
