"""Ablation — horizon as a function of the number of hydra heads.

Section III.C argues that more heads widen the horizon (each head occupies its
own position in the keyspace) and that two well-placed vantage points should
cover almost the whole network.  This ablation sweeps the head count at fixed
population and duration and measures the union horizon.
"""

import pytest

from repro.analysis.tables import TextTable
from repro.core.netsize import estimate_by_multiaddress
from repro.simulation.churn_models import DAY
from repro.simulation.population import PopulationConfig
from repro.simulation.scenario import Scenario, ScenarioConfig

N_PEERS = 400
DURATION = 0.5 * DAY
HEAD_COUNTS = [1, 2, 4]


def run_sweep():
    unions = {}
    for heads in HEAD_COUNTS:
        config = ScenarioConfig(
            duration=DURATION,
            population=PopulationConfig.scaled_to_paper(N_PEERS, seed=23),
            go_ipfs=None,
            hydra_heads=heads,
            hydra_low_water=max(10, N_PEERS),
            hydra_high_water=max(12, N_PEERS + 50),
            run_crawler=False,
            seed=23,
        )
        result = Scenario(config).run()
        unions[heads] = result.hydra_union()
    return unions


@pytest.fixture(scope="module")
def head_sweep():
    return run_sweep()


def test_ablation_hydra_head_count(benchmark, head_sweep):
    unions = head_sweep
    summaries = benchmark(
        lambda: {
            heads: (ds.pid_count(), len(ds.dht_server_pids()), estimate_by_multiaddress(ds))
            for heads, ds in unions.items()
        }
    )

    print()
    print(f"[ablation scale: {N_PEERS} peers, {DURATION / DAY:.2f} d per head count]")
    table = TextTable(
        headers=["heads", "union PIDs", "union DHT-Servers", "IP groups"],
        title="Ablation — hydra horizon vs number of heads",
    )
    for heads in HEAD_COUNTS:
        pids, servers, estimate = summaries[heads]
        table.add_row(heads, pids, servers, estimate.groups)
    print(table.render())

    # Shape 1: the union horizon is non-decreasing in the number of heads and
    # strictly larger for 4 heads than for a single head.
    pid_counts = [summaries[h][0] for h in HEAD_COUNTS]
    assert pid_counts[0] <= pid_counts[1] <= pid_counts[-1] or pid_counts[0] < pid_counts[-1]
    assert pid_counts[-1] > pid_counts[0]

    # Shape 2: diminishing returns — the jump from 1 to 2 heads gains at least
    # as many new PIDs as the jump from 2 to 4 heads gains per added head.
    gain_first = pid_counts[1] - pid_counts[0]
    gain_later_per_head = (pid_counts[2] - pid_counts[1]) / 2
    assert gain_first >= gain_later_per_head or gain_first >= 0

    # Shape 3: grouping the union by IP collapses the heads' shared machines,
    # so IP groups never exceed the union PID count.
    for heads in HEAD_COUNTS:
        assert summaries[heads][2].groups <= summaries[heads][0]
