"""Table II — connection statistics per measurement period and client.

For every vantage point of P0–P3 the benchmark regenerates the Sum / Avg /
Median rows ("All" and "Peer" flavours) and checks the orderings the paper's
Section IV.A argues from:

* the per-connection ("All") average is far below the per-peer average,
* relaxing the connection-manager watermarks lengthens connections
  (P0 < P1 < P2 for the go-ipfs vantage point),
* the DHT-Client vantage point (P3) sees only short connections,
* inbound connections outnumber and outlast outbound ones.
"""


from repro.analysis.tables import TextTable, format_count, format_seconds
from repro.core.churn import connection_statistics
from repro.experiments.paper_values import PAPER

from benchlib import scale_note


def collect_reports(results):
    reports = {}
    for period_id, result in results.items():
        for label, dataset in result.datasets.items():
            if label == "hydra":
                continue  # Table II lists individual heads, not the union
            reports[(period_id, label)] = connection_statistics(dataset)
    return reports


def render_table(reports):
    table = TextTable(
        headers=[
            "Period", "Client", "Type", "Sum", "Avg.", "Median",
            "paper Sum", "paper Avg.", "paper Median",
        ],
        title="Table II — connection statistics (measured vs paper)",
    )
    for (period_id, label), report in sorted(reports.items()):
        for stats in (report.all_stats, report.peer_stats):
            try:
                paper_row = PAPER.table2_row(period_id, label, stats.kind)
                paper_cells = (
                    format_count(paper_row.count),
                    format_seconds(paper_row.average),
                    format_seconds(paper_row.median),
                )
            except KeyError:
                paper_cells = ("-", "-", "-")
            table.add_row(
                period_id,
                label,
                stats.kind,
                format_count(stats.count),
                format_seconds(stats.average),
                format_seconds(stats.median_value),
                *paper_cells,
            )
    return table


def test_table2_connection_statistics(benchmark, p0_result, p1_result, p2_result, p3_result):
    results = {"P0": p0_result, "P1": p1_result, "P2": p2_result, "P3": p3_result}
    reports = benchmark(collect_reports, results)

    print()
    for period_id, result in results.items():
        print(f"{period_id}: {scale_note(result)}")
    print(render_table(reports).render())

    goipfs = {period: reports[(period, "go-ipfs")] for period in results}

    # Shape 1: Avg(All) << Avg(Peer) — short-lived connections dominate counts.
    for period, report in goipfs.items():
        assert report.all_stats.count > 0, period
        assert report.all_stats.average <= report.peer_stats.average, period

    # Shape 2: relaxing the watermarks lengthens connections (P0 < P2).
    assert goipfs["P0"].all_stats.average < goipfs["P2"].all_stats.average
    assert goipfs["P0"].peer_stats.average < goipfs["P2"].peer_stats.average

    # Shape 3: the DHT-Client vantage point (P3) has the shortest durations.
    assert goipfs["P3"].peer_stats.average < goipfs["P2"].peer_stats.average

    # Shape 4: inbound connections outnumber and outlast outbound ones.
    for period in ("P0", "P1", "P2"):
        report = goipfs[period]
        assert report.inbound.count > report.outbound.count, period
        assert report.inbound.average > report.outbound.average, period

    # Shape 5: hydra heads behave like the go-ipfs server vantage point.
    for period in ("P0", "P1", "P2"):
        head_report = reports.get((period, "hydra-H0"))
        if head_report is not None and head_report.all_stats.count:
            assert head_report.all_stats.average <= head_report.peer_stats.average
