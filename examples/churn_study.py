#!/usr/bin/env python3
"""Churn study: how the connection-manager watermarks shape connection churn.

The paper's central finding is that IPFS connection churn is dominated by the
connection manager's trimming, not by peers leaving the network, and it
recommends revisiting the default LowWater/HighWater values for DHT-Servers.

This example reproduces that argument end to end: it runs the same simulated
network under the paper's P0 (defaults, 600/900), P1 (2k/4k) and P2 (18k/20k)
configurations plus the P3 DHT-Client deployment, and prints how durations,
close reasons, and the inbound/outbound split respond.

Run with::

    python examples/churn_study.py
"""

from repro.analysis.tables import TextTable, format_count, format_seconds
from repro.core.churn import connection_statistics, trim_share
from repro.experiments.periods import PERIODS
from repro.experiments.runner import run_period_cached

import os

#: fast-mode knobs: CI's examples-smoke job shrinks every example through
#: these without touching the documented default scale
N_PEERS = int(os.environ.get("REPRO_EXAMPLE_PEERS", "500"))
DURATION_DAYS = float(os.environ.get("REPRO_EXAMPLE_DAYS", "0.5"))


def main() -> None:
    print(
        f"Running P0–P3 at {N_PEERS} peers / {DURATION_DAYS} simulated days each "
        "(watermarks scaled to the population)…"
    )
    reports = {}
    for period_id in ("P0", "P1", "P2", "P3"):
        result = run_period_cached(
            period_id, n_peers=N_PEERS, duration_days=DURATION_DAYS, seed=7,
            run_crawler=False,
        )
        reports[period_id] = connection_statistics(result.dataset("go-ipfs"))

    table = TextTable(
        headers=[
            "Period", "Low/High (paper)", "Mode", "conns", "avg (all)",
            "avg (peer)", "median (all)", "trim share", "in:out",
        ],
        title="\nConnection churn across the measurement configurations",
    )
    for period_id, report in reports.items():
        spec = PERIODS[period_id]
        mode = "Client" if period_id == "P3" else "Server"
        ratio = (
            f"{report.inbound.count}:{report.outbound.count}"
            if report.outbound.count else f"{report.inbound.count}:0"
        )
        table.add_row(
            period_id,
            f"{spec.low_water}/{spec.high_water}",
            mode,
            format_count(report.all_stats.count),
            format_seconds(report.all_stats.average),
            format_seconds(report.peer_stats.average),
            format_seconds(report.all_stats.median_value),
            f"{trim_share(report):.2f}",
            ratio,
        )
    print(table.render())

    print("\nReading of the results (mirrors Section IV.A of the paper):")
    print(
        " * P0's tight defaults trim aggressively: the most connections, the shortest\n"
        "   durations, and the largest share of closes caused by trimming."
    )
    print(
        " * Relaxing the watermarks (P1, P2) lengthens connections; the remaining churn\n"
        "   comes from the *other* side's default watermarks, so the median stays low."
    )
    print(
        " * The DHT-Client deployment (P3) is not worth keeping connections to:\n"
        "   few peers contact it and they drop it quickly."
    )
    print(
        " * Inbound connections dominate and last longer than outbound ones,\n"
        "   confirming that closes are mostly trims rather than peers leaving."
    )


if __name__ == "__main__":
    main()
