#!/usr/bin/env python3
"""Quickstart: deploy a passive measurement node in a simulated IPFS network.

This example runs a small version of the paper's P2 measurement period
(relaxed connection-manager watermarks, go-ipfs DHT-Server plus a two-headed
hydra-booster), then prints the headline quantities the paper reports:
connection-churn statistics, the measurement horizon, and a first network-size
estimate.

Run with::

    python examples/quickstart.py
"""

from repro.analysis.tables import TextTable, format_count, format_seconds
from repro.core.churn import connection_statistics, trim_share
from repro.core.horizon import compare_horizons
from repro.core.netsize import estimate_network_size
from repro.experiments.runner import run_period_cached

import os

#: fast-mode knobs: CI's examples-smoke job shrinks every example through
#: these without touching the documented default scale
N_PEERS = int(os.environ.get("REPRO_EXAMPLE_PEERS", "600"))
DURATION_DAYS = float(os.environ.get("REPRO_EXAMPLE_DAYS", "0.5"))


def main() -> None:
    print("Simulating measurement period P2 (go-ipfs server + 2 hydra heads + crawler)…")
    result = run_period_cached("P2", n_peers=N_PEERS, duration_days=DURATION_DAYS, seed=42)

    # -- connection churn (Table II style) ---------------------------------------
    table = TextTable(
        headers=["Client", "Type", "Sum", "Avg.", "Median"],
        title="\nConnection statistics (Table II style)",
    )
    for label in ("go-ipfs", "hydra-H0", "hydra-H1"):
        report = connection_statistics(result.dataset(label))
        for stats in (report.all_stats, report.peer_stats):
            table.add_row(
                label, stats.kind, format_count(stats.count),
                format_seconds(stats.average), format_seconds(stats.median_value),
            )
    print(table.render())

    go_ipfs_report = connection_statistics(result.dataset("go-ipfs"))
    print(
        f"\nTrimming accounts for {trim_share(go_ipfs_report):.0%} of connection closes; "
        f"inbound:outbound = "
        f"{go_ipfs_report.inbound.count}:{go_ipfs_report.outbound.count}"
    )

    # -- measurement horizon (Fig. 2 style) -----------------------------------------
    comparison = compare_horizons(
        result.datasets, crawler_range=result.crawls.range(), labels=["go-ipfs", "hydra"]
    )
    horizon = TextTable(
        headers=["Vantage", "total PIDs", "DHT-Server", "DHT-Client"],
        title="\nMeasurement horizon (Fig. 2 style)",
    )
    for entry in comparison.entries:
        horizon.add_row(entry.label, entry.total_pids, entry.dht_server_pids,
                        entry.dht_client_pids)
    print(horizon.render())
    if comparison.crawler and comparison.crawler.crawls:
        print(
            f"active crawler: {comparison.crawler.crawls} crawls, "
            f"{comparison.crawler.min_discovered}–{comparison.crawler.max_discovered} "
            "DHT-Servers per crawl (clients are invisible to it)"
        )

    # -- network size (Section V style) -----------------------------------------------
    sizes = estimate_network_size(result.dataset("go-ipfs"))
    print(
        f"\nNetwork size estimates: {sizes.total_pids} PIDs observed, "
        f"{sizes.multiaddr.groups} IP groups, "
        f"core (heavy) peers: {sizes.core_network_size}, "
        f"{sizes.pids_per_simultaneous_connection:.1f} PIDs per simultaneous connection"
    )


if __name__ == "__main__":
    main()
