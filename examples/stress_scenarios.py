#!/usr/bin/env python3
"""Stress-scenario tour: what each churn regime does to a vantage point.

The paper measured one workload — the live IPFS network.  The scenario
registry adds controlled stress regimes on top of the same simulator: flash
crowds, diurnal cycles, correlated outages, client-heavy populations, hydra
head scaling, and the crawler racing a burst.  This example runs every stress
scenario at small scale and compares what the measurement node records.

Run with::

    python examples/stress_scenarios.py
"""

from repro.analysis.sweep_report import primary_dataset_label, render_aggregate
from repro.scenarios import scenario, scenario_names
from repro.sweep import summarize_cell

import os

#: fast-mode knobs: CI's examples-smoke job shrinks every example through
#: these without touching the documented default scale
N_PEERS = int(os.environ.get("REPRO_EXAMPLE_PEERS", "300"))
DURATION_DAYS = float(os.environ.get("REPRO_EXAMPLE_DAYS", "0.25"))
SEED = 7


def main() -> None:
    names = scenario_names("stress")
    print(
        f"Running {len(names)} stress scenarios at {N_PEERS} peers / "
        f"{DURATION_DAYS} simulated days (seed {SEED})…"
    )
    summaries = []
    for name in names:
        print(f"  {name}: {scenario(name).description}")
        summaries.append(summarize_cell(name, N_PEERS, DURATION_DAYS, SEED))

    print()
    print(render_aggregate(summaries))

    client_heavy = next(s for s in summaries if s["scenario"] == "client-heavy")
    diurnal = next(s for s in summaries if s["scenario"] == "diurnal-week")
    label = primary_dataset_label(client_heavy)
    print(
        "The paper's central claim survives every regime: trimming dominates "
        f"closes (client-heavy at 600/900 watermarks: trim share "
        f"{client_heavy['churn'][label]['trim_share']:.2f}, average duration "
        f"{client_heavy['churn'][label]['avg_duration']:.0f} s vs. "
        f"{diurnal['churn'][primary_dataset_label(diurnal)]['avg_duration']:.0f} s "
        "under relaxed 18k/20k watermarks)."
    )


if __name__ == "__main__":
    main()
