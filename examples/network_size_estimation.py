#!/usr/bin/env python3
"""Network-size estimation from a passive vantage point (Section V).

Reproduces both estimators of the paper on a simulated P4-style measurement
(multi-day, relaxed watermarks, DHT-Server vantage point):

1. multiaddress grouping — PIDs that connect from the same IP address are
   treated as one participant;
2. connection-behaviour classification — heavy / normal / light / one-time
   classes from the maximum connection duration and connection count, with the
   heavy class as the "core network".

It also prints the Fig. 7 CDF anchors that motivate the classification.

Run with::

    python examples/network_size_estimation.py
"""

from repro.analysis.tables import TextTable
from repro.core.netsize import connection_cdfs, estimate_network_size
from repro.experiments.runner import run_period_cached

import os

#: fast-mode knobs: CI's examples-smoke job shrinks every example through
#: these without touching the documented default scale
N_PEERS = int(os.environ.get("REPRO_EXAMPLE_PEERS", "700"))
DURATION_DAYS = float(os.environ.get("REPRO_EXAMPLE_DAYS", "1.5"))

HOUR = 3_600.0
DAY = 86_400.0


def main() -> None:
    print(
        f"Simulating a P4-style measurement (DHT-Server vantage point, "
        f"{N_PEERS} peers, {DURATION_DAYS:g} days)…"
    )
    result = run_period_cached(
        "P4", n_peers=N_PEERS, duration_days=DURATION_DAYS, seed=11, run_crawler=False
    )
    dataset = result.dataset("go-ipfs")
    report = estimate_network_size(dataset)

    # -- PIDs vs connections ----------------------------------------------------------
    print(
        f"\nObserved {report.total_pids} PIDs but at most "
        f"{report.peak_simultaneous_connections} simultaneous connections "
        f"({report.pids_per_simultaneous_connection:.1f} PIDs per connection) — "
        "counting PIDs overestimates the number of peers."
    )

    # -- estimator 1: multiaddress grouping ----------------------------------------------
    multiaddr = report.multiaddr
    table = TextTable(
        headers=["Quantity", "value"], title="\nEstimator 1 — multiaddress grouping"
    )
    table.add_row("connected PIDs", multiaddr.connected_pids)
    table.add_row("distinct IPs", multiaddr.distinct_ips)
    table.add_row("IP groups (network-size estimate)", multiaddr.groups)
    table.add_row("groups with a single PID", multiaddr.singleton_groups)
    table.add_row("largest group (PID-rotating peer)", multiaddr.largest_group_size)
    print(table.render())
    print(
        "Caveats (as in the paper): NAT and shared cloud IPs merge distinct peers,\n"
        "hydra heads collapse onto a few IPs, relayed peers show the relay's address."
    )

    # -- estimator 2: connection-behaviour classification ------------------------------------
    classes = report.classification
    table = TextTable(
        headers=["Class", "Peers", "DHT-Server", "DHT-Client"],
        title="\nEstimator 2 — classification by connection behaviour (Table IV)",
    )
    for class_name, peers, servers in classes.rows():
        table.add_row(class_name, peers, servers, peers - servers)
    print(table.render())
    print(
        f"Core network (heavy peers): {classes.core_size}; "
        f"core user base (heavy DHT-Clients): {classes.core_user_base}.\n"
        "The core is a lower bound: trimming can only demote core nodes into the\n"
        "light / one-time classes, never promote transient ones."
    )

    # -- Fig. 7 anchors -------------------------------------------------------------------------
    cdf = connection_cdfs(dataset)["all"]
    print("\nFig. 7 anchors (all PIDs):")
    print(f"  connected less than 1 h:   {cdf.fraction_connected_less_than(HOUR):.0%}")
    print(f"  connected more than 24 h:  {cdf.fraction_connected_more_than(DAY):.0%}")
    print(f"  exactly one connection:    {cdf.connection_count.fraction_at(1):.0%}")
    print(f"  more than 15 connections:  {1 - cdf.connection_count.fraction_at(15):.0%}")


if __name__ == "__main__":
    main()
