#!/usr/bin/env python3
"""Meta-data analysis and anomaly detection (Section IV.B).

A passive measurement node learns each peer's agent-version string and
supported protocols through the identify protocol.  The paper uses that meta
data to characterise the population and to spot anomalies:

* go-ipfs agents that do **not** support Bitswap but announce ``/sbptp/`` —
  the signature of IPStorm botnet nodes hiding behind a go-ipfs 0.8.0 agent,
* peers that repeatedly announce/retract ``/ipfs/kad/1.0.0`` (DHT-Server ↔
  DHT-Client role flapping) or ``/libp2p/autonat/1.0.0``,
* agent up- and downgrades, including "dirty" locally-modified builds.

The run streams while it simulates: the streaming-metrics hub closes a
window every simulated two hours (scaled down for short runs) and this
example subscribes to those closes, printing identify/flap counts live and
flagging windows whose identify traffic bursts well above the running mean —
the online version of the post-hoc anomaly report that follows.

Run with::

    python examples/anomaly_detection.py
"""

import dataclasses
import os

from repro.analysis.plots import ascii_bar_chart
from repro.core.metadata import analyze_metadata
from repro.experiments.periods import period
from repro.obs import ObsConfig
from repro.simulation.scenario import Scenario

#: fast-mode knobs: CI's examples-smoke job shrinks every example through
#: these without touching the documented default scale
N_PEERS = int(os.environ.get("REPRO_EXAMPLE_PEERS", "800"))
DURATION_DAYS = float(os.environ.get("REPRO_EXAMPLE_DAYS", "1.0"))

#: a window fires live output every 2 simulated hours at the default scale;
#: short fast-mode runs shrink it so they still stream a handful of windows
WINDOW_SECONDS = min(2 * 3600.0, max(300.0, DURATION_DAYS * 86400.0 / 8))

#: identify traffic this far above the running mean is flagged as a burst
BURST_FACTOR = 1.5


def _hours(seconds: float) -> str:
    return f"{seconds / 3600.0:5.1f}h"


def streaming_run() -> "Scenario":
    """Run P4 with the metrics hub attached, narrating each closed window."""
    spec = period("P4")
    config = spec.scenario_config(
        n_peers=N_PEERS, seed=5, duration_days=DURATION_DAYS, run_crawler=False
    )
    config = dataclasses.replace(
        config,
        population=dataclasses.replace(
            config.population, obs=ObsConfig(window=WINDOW_SECONDS)
        ),
    )
    scenario = Scenario(config)
    seen = {"windows": 0, "identify": 0}

    def on_window(payload: dict) -> None:
        counters = payload["counters"]
        identify = counters.get("fabric.identify", 0)
        flaps = counters.get("meta.role_flip", 0)
        autonat = counters.get("meta.autonat_flip", 0)
        mean = seen["identify"] / seen["windows"] if seen["windows"] else 0.0
        burst = (
            f"  ← identify burst ({identify / mean:.1f}× mean)"
            if seen["windows"] and mean > 0 and identify > BURST_FACTOR * mean
            else ""
        )
        print(
            f"  [{_hours(payload['start'])}–{_hours(payload['end'])}] "
            f"identify {identify:4d}, role flaps {flaps:3d}, "
            f"autonat flips {autonat:3d}{burst}"
        )
        seen["windows"] += 1
        seen["identify"] += identify

    scenario.network.obs.hub.subscribe(on_window)
    return scenario


def main() -> None:
    print("Simulating a P4-style measurement for the meta-data analysis…")
    print(f"\nLive windows ({WINDOW_SECONDS / 3600.0:.2g}h each) while the run streams:")
    result = streaming_run().run()
    dataset = result.dataset("go-ipfs")
    report = analyze_metadata(dataset, group_threshold=2)

    # -- population composition --------------------------------------------------------
    agents = report.agents
    print(
        f"\nAgent composition of {agents.total_peers} PIDs: "
        f"{agents.goipfs_peers} go-ipfs, {agents.hydra_peers} hydra, "
        f"{agents.crawler_peers} crawler, {agents.other_peers} other, "
        f"{agents.missing_peers} without identify"
    )
    print("\nAgent occurrences (grouped, Fig. 3 style):")
    print(ascii_bar_chart(agents.grouped, max_rows=15))

    protocols = report.protocols
    print("\nMost common protocols (Fig. 4 style):")
    print(ascii_bar_chart(dict(protocols.top_protocols(12)), max_rows=12))

    # -- anomalies ---------------------------------------------------------------------------
    print("\nAnomaly indicators:")
    print(
        f"  go-ipfs agents without Bitswap support: {protocols.goipfs_without_bitswap} "
        f"(of which {protocols.goipfs_with_sbptp} announce /sbptp/ — storm-like)"
    )
    print(f"  peers without any identify information: {agents.missing_peers}")

    # -- version changes ------------------------------------------------------------------------
    versions = report.versions
    print(
        f"\ngo-ipfs version changes: {versions.upgrades} upgrades, "
        f"{versions.downgrades} downgrades, {versions.changes} commit-only changes "
        f"(main–main {versions.main_to_main}, dirty–dirty {versions.dirty_to_dirty}, "
        f"cross {versions.dirty_to_main + versions.main_to_dirty})"
    )

    # -- protocol flapping -------------------------------------------------------------------------
    print(
        f"\nRole flapping: {report.kad_flaps.peers} peers changed their /ipfs/kad/1.0.0 "
        f"announcement {report.kad_flaps.changes} times "
        f"({report.kad_flaps.changes_per_peer:.1f} changes per flapping peer)"
    )
    print(
        f"Autonat flapping: {report.autonat_flaps.peers} peers, "
        f"{report.autonat_flaps.changes} changes"
    )
    print(
        "\nAs the paper notes, exotic agent/protocol combinations are stable enough to\n"
        "re-identify peers across PID changes — useful for measurement, concerning for privacy."
    )


if __name__ == "__main__":
    main()
