"""Performance telemetry for the simulation core.

The ROADMAP's north star is a reproduction that "runs as fast as the hardware
allows"; to make speed a tracked property rather than folklore, this module
measures measurement periods (wall time, events/sec, queries/sec, dataset
sizes) and writes machine-readable snapshots (``BENCH_core.json``) that future
optimisation PRs diff against.

The two entry points are:

* :func:`measure_period` — run one period under a timer and return a
  :class:`PeriodPerf` (cheap to pickle, so it also works as the unit of work
  for the process-parallel benchmark runner in
  :mod:`repro.experiments.runner`).
* :func:`write_snapshot` / :func:`load_snapshot` — persist and reread a list
  of :class:`PeriodPerf` plus environment metadata.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: file name of the core perf snapshot at the repo root
DEFAULT_SNAPSHOT_NAME = "BENCH_core.json"

#: schema tag written into (and expected from) core perf snapshots
SNAPSHOT_SCHEMA = "repro-bench-core/1"


class SnapshotSchemaError(ValueError):
    """A perf snapshot file is missing its schema tag or carries the wrong one.

    Raised by :func:`load_snapshot` with the offending path and the
    found/expected schemas in the message, instead of letting downstream
    comparison code ``KeyError`` on foreign JSON.
    """


@dataclass(frozen=True)
class PeriodPerf:
    """Timing and throughput of one simulated measurement period."""

    period_id: str
    n_peers: int
    duration_days: float
    seed: int
    wall_seconds: float
    events_processed: int
    events_per_sec: float
    #: FIND_NODE queries issued by the active crawler baseline (0 without it)
    queries_sent: int
    queries_per_sec: float
    #: per-dataset result sizes — the determinism fingerprint of the run
    dataset_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return asdict(self)


def dataset_counts(result) -> Dict[str, Dict[str, int]]:
    """Summarise a :class:`ScenarioResult`'s datasets as plain counts."""
    counts: Dict[str, Dict[str, int]] = {}
    for label in sorted(result.datasets):
        dataset = result.datasets[label]
        counts[label] = {
            "peers": len(dataset.peers),
            "connections": len(dataset.connections),
            "snapshots": len(dataset.snapshots),
            "changes": len(dataset.changes),
        }
    return counts


def measure_period(
    period_id: str,
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: int = 7,
    run_crawler: Optional[bool] = None,
) -> PeriodPerf:
    """Run one measurement period under a wall-clock timer.

    Defaults (peers, compressed duration, crawler) come from the period's
    benchmark spec, exactly like :func:`repro.experiments.runner.run_period`.
    """
    # Imported lazily so worker processes pay the import once, and so that
    # importing repro.perf never drags in the whole simulation stack.
    from repro.experiments.periods import period
    from repro.experiments.runner import run_period

    spec = period(period_id)
    peers = n_peers if n_peers is not None else spec.bench_peers
    days = duration_days
    if days is None:
        days = (
            spec.bench_duration_days
            if spec.bench_duration_days is not None
            else spec.duration_days
        )

    start = time.perf_counter()
    result = run_period(
        period_id, n_peers=peers, duration_days=days, seed=seed, run_crawler=run_crawler
    )
    wall = time.perf_counter() - start

    queries = sum(s.queries_sent for s in result.crawls.snapshots)
    return PeriodPerf(
        period_id=period_id,
        n_peers=peers,
        duration_days=days,
        seed=seed,
        wall_seconds=round(wall, 4),
        events_processed=result.events_processed,
        events_per_sec=round(result.events_processed / wall, 1) if wall > 0 else 0.0,
        queries_sent=queries,
        queries_per_sec=round(queries / wall, 1) if wall > 0 else 0.0,
        dataset_counts=dataset_counts(result),
    )


def snapshot_payload(perfs: List[PeriodPerf], note: str = "") -> dict:
    """Build the JSON payload for a perf snapshot."""
    total_wall = sum(p.wall_seconds for p in perfs)
    total_events = sum(p.events_processed for p in perfs)
    return {
        "schema": SNAPSHOT_SCHEMA,
        "note": note,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "totals": {
            "wall_seconds": round(total_wall, 3),
            "events_processed": total_events,
            "events_per_sec": round(total_events / total_wall, 1) if total_wall > 0 else 0.0,
        },
        "periods": [p.as_dict() for p in perfs],
    }


def write_snapshot(path: str, perfs: List[PeriodPerf], note: str = "") -> dict:
    """Write a perf snapshot to ``path``; returns the payload written."""
    payload = snapshot_payload(perfs, note=note)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return payload


def load_snapshot(path: str, expected_schema: Optional[str] = SNAPSHOT_SCHEMA) -> dict:
    """Read a snapshot written by :func:`write_snapshot`.

    Validates the ``schema`` field so a foreign/stale JSON file fails with a
    clear :class:`SnapshotSchemaError` naming the file and the found/expected
    schemas.  Pass ``expected_schema=None`` to skip the exact-match check
    (the field must still exist); pass another tag to validate a different
    snapshot family (e.g. the scaling benchmark's).
    """
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "schema" not in payload:
        expectation = expected_schema if expected_schema is not None else "a repro-bench tag"
        raise SnapshotSchemaError(
            f"{path}: not a perf snapshot — missing 'schema' field "
            f"(expected {expectation!r})"
        )
    found = payload["schema"]
    if expected_schema is not None and found != expected_schema:
        raise SnapshotSchemaError(
            f"{path}: snapshot schema {found!r} does not match expected "
            f"{expected_schema!r}"
        )
    return payload
