"""Content-routing workload model: Zipf catalogs, knobs, and lookup stats.

The real DHT's traffic is dominated by content routing — peers publishing
provider records for the CIDs they hold (PROVIDE) and resolving them before a
Bitswap fetch (FIND_PROVIDERS) — while the paper's passive vantage points only
ever *observe* that traffic.  This module models the workload side: a catalog
of content items with Zipf-distributed popularity (a small head of hot items
draws most requests), the configuration knobs of a publish/retrieve workload,
and the statistics a scenario reports about it (success rates, hop counts,
simulated lookup latencies).

Everything is identity-by-default: a scenario without a
:class:`ContentRoutingConfig` schedules no content events and draws nothing
from any RNG, so pre-existing fixed-seed goldens are unchanged.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.kademlia.keys import key_for_content
from repro.kademlia.provider_store import (
    DEFAULT_PROVIDER_TTL,
    DEFAULT_REPUBLISH_INTERVAL,
)
from repro.simulation.churn_models import HOUR


class ZipfCatalog:
    """A fixed catalog of content items with Zipf-distributed popularity.

    Item ``i`` (0-based) has sampling weight ``1 / (i + 1) ** exponent``; with
    the classic exponent around 1 the head items dominate requests, which is
    what makes flash-crowd retrieval scenarios concentrate on few keys.  CIDs,
    keys, and block payloads are all pure functions of the item index, so two
    runs with the same seed publish and resolve identical content.

    ``size_classes`` gives every item a *real* byte size, drawn per item (in
    item order, from an independent ``size_seed`` stream — the honest workload
    RNG is untouched) over ``(size_bytes, weight)`` pairs; the data-plane
    bandwidth model serializes these sizes through the transmit queues.
    ``None`` (the default) reports the tiny deterministic payload's length, so
    pre-existing goldens are unchanged.  Multi-MB sizes are transfer metadata:
    the stored block payload stays small either way.
    """

    def __init__(
        self,
        n_items: int,
        exponent: float = 1.05,
        size_classes: Optional[Sequence[Tuple[int, float]]] = None,
        size_seed: int = 0,
    ) -> None:
        if n_items <= 0:
            raise ValueError(f"n_items must be positive, got {n_items}")
        if exponent <= 0:
            raise ValueError(f"zipf exponent must be positive, got {exponent}")
        self.n_items = n_items
        self.exponent = exponent
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, n_items + 1):
            total += 1.0 / (rank**exponent)
            cumulative.append(total)
        self._cumulative = [c / total for c in cumulative]
        self._keys: List[Optional[int]] = [None] * n_items
        self._sizes: Optional[List[int]] = None
        if size_classes:
            for size, weight in size_classes:
                if size <= 0:
                    raise ValueError(f"block sizes must be positive, got {size}")
                if weight <= 0:
                    raise ValueError(
                        f"block-size weights must be positive, got {weight} for size {size}"
                    )
            size_rng = random.Random(size_seed)
            weight_total = float(sum(weight for _, weight in size_classes))
            size_cum: List[float] = []
            running = 0.0
            for _, weight in size_classes:
                running += weight / weight_total
                size_cum.append(running)
            self._sizes = []
            for _ in range(n_items):
                roll = size_rng.random()
                index = bisect.bisect_left(size_cum, roll)
                self._sizes.append(size_classes[min(index, len(size_classes) - 1)][0])

    def sample(self, rng: random.Random) -> int:
        """Draw an item index by popularity."""
        return bisect.bisect_left(self._cumulative, rng.random())

    def cid(self, item: int) -> str:
        return f"bafysim{item:08d}"

    def key(self, item: int) -> int:
        """The Kademlia key of an item's provider records (memoised)."""
        cached = self._keys[item]
        if cached is None:
            cached = key_for_content(self.cid(item).encode())
            self._keys[item] = cached
        return cached

    def block(self, item: int) -> bytes:
        """The deterministic block payload of an item."""
        return (self.cid(item).encode() + b"|") * 16

    def size(self, item: int) -> int:
        """The transfer size of an item's block in bytes.

        The drawn size when the catalog carries a size distribution, the
        stored payload's length otherwise.
        """
        if self._sizes is not None:
            return self._sizes[item]
        return len(self.block(item))


@dataclass
class ContentRoutingConfig:
    """Knobs of the publish/retrieve workload a scenario runs.

    Intervals are means of exponential inter-event times; scenario builders
    derive them from the scenario duration so compressed sweep cells still
    exercise the whole publish → resolve → expire cycle.
    """

    #: catalog size and popularity skew
    n_items: int = 64
    zipf_exponent: float = 1.05
    #: share of the general population that publishes / retrieves content
    publisher_share: float = 0.05
    retriever_share: float = 0.25
    #: mean time between two publishes (per publisher) / retrievals (per retriever)
    publish_interval: float = 2 * HOUR
    retrieve_interval: float = 1 * HOUR
    #: how many closest servers a provider record is stored on (go-ipfs: 20)
    replication: int = 10
    #: provider-record lifetime and reprovide cadence (``None``: never republish)
    provider_ttl: float = DEFAULT_PROVIDER_TTL
    republish_interval: Optional[float] = DEFAULT_REPUBLISH_INTERVAL
    #: lookup budget per operation
    max_queries: int = 32
    #: resolve stops after this many distinct providers
    max_providers: int = 5
    #: bootstrap servers seeding a lookup (clients have no routing table)
    bootstrap_count: int = 4
    #: simulated per-hop RTT and block-transfer time (uniform bounds, seconds);
    #: the transfer draw is replaced by real queue/serialization accounting
    #: when a bandwidth model is attached
    per_hop_latency: Tuple[float, float] = (0.06, 0.35)
    transfer_latency: Tuple[float, float] = (0.1, 0.8)
    #: interval of the provider-store expiry sweep (``None``: half the TTL)
    expiry_sweep_interval: Optional[float] = None
    #: per-item block-size distribution ((size_bytes, weight) pairs) drawn at
    #: catalog construction from ``block_size_seed``; ``None`` (the default)
    #: keeps the tiny deterministic payload sizes, so pre-existing goldens
    #: are unchanged
    block_size_classes: Optional[Tuple[Tuple[int, float], ...]] = None
    block_size_seed: int = 101

    def __post_init__(self) -> None:
        # Every rejection names the offending field and the value it carried;
        # a sweep override that lands out of range must be attributable from
        # the message alone.
        if self.n_items <= 0:
            raise ValueError(f"n_items must be positive, got {self.n_items}")
        if self.zipf_exponent <= 0:
            raise ValueError(f"zipf_exponent must be positive, got {self.zipf_exponent}")
        for name in ("publisher_share", "retriever_share"):
            share = getattr(self, name)
            if not 0.0 <= share <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {share}")
        for name in ("publish_interval", "retrieve_interval", "provider_ttl"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("republish_interval", "expiry_sweep_interval"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None, got {value}")
        for name in ("replication", "max_queries", "max_providers", "bootstrap_count"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        for name in ("per_hop_latency", "transfer_latency"):
            low, high = getattr(self, name)
            if low < 0 or high < low:
                raise ValueError(
                    f"{name} must satisfy 0 <= low <= high, got {low}/{high}"
                )
        if self.block_size_classes is not None:
            if not self.block_size_classes:
                raise ValueError(
                    "block_size_classes must be None or non-empty, got "
                    f"{self.block_size_classes!r}"
                )
            for size, weight in self.block_size_classes:
                if size <= 0:
                    raise ValueError(
                        f"block_size_classes sizes must be positive, got {size}"
                    )
                if weight <= 0:
                    raise ValueError(
                        f"block_size_classes weights must be positive, got "
                        f"{weight} for size {size}"
                    )

    def sweep_interval(self) -> float:
        """The effective expiry-sweep interval."""
        if self.expiry_sweep_interval is not None:
            return self.expiry_sweep_interval
        return self.provider_ttl / 2.0


@dataclass
class ContentRoutingStats:
    """What a scenario reports about its content-routing workload.

    Compact and picklable: the process-parallel sweep runner ships these back
    from worker processes instead of whole scenario results.
    """

    publishers: int = 0
    retrievers: int = 0
    #: PROVIDE operations (initial publishes; republished ones counted apart)
    provides: int = 0
    provide_successes: int = 0
    republishes: int = 0
    #: provider records accepted by servers, totalled over all operations
    records_stored: int = 0
    #: records dropped by the periodic TTL sweeps
    records_expired: int = 0
    #: FIND_PROVIDERS + fetch operations
    retrievals: int = 0
    retrieval_successes: int = 0
    #: retrievals served from the retriever's own blockstore (no lookup run)
    retrievals_local: int = 0
    #: live (unexpired) records left on the fabric when the window closed
    records_live_at_end: int = 0
    #: retrievals in the first/second half of the window (expiry visibility)
    first_half_retrievals: int = 0
    first_half_successes: int = 0
    second_half_retrievals: int = 0
    second_half_successes: int = 0
    #: per-operation samples for the CDF metrics
    provide_hops: List[int] = field(default_factory=list)
    retrieve_hops: List[int] = field(default_factory=list)
    provide_latencies: List[float] = field(default_factory=list)
    retrieve_latencies: List[float] = field(default_factory=list)

    @property
    def provide_success_rate(self) -> float:
        return self.provide_successes / self.provides if self.provides else 0.0

    @property
    def retrieval_success_rate(self) -> float:
        return self.retrieval_successes / self.retrievals if self.retrievals else 0.0

    @property
    def first_half_success_rate(self) -> float:
        if not self.first_half_retrievals:
            return 0.0
        return self.first_half_successes / self.first_half_retrievals

    @property
    def second_half_success_rate(self) -> float:
        if not self.second_half_retrievals:
            return 0.0
        return self.second_half_successes / self.second_half_retrievals
