"""Deterministic serialization of scenario results, for cross-engine proofs.

The vectorized engine is only allowed to be the default because every
registered scenario produces a **byte-identical** result on it and on the
legacy engine.  "Byte-identical" needs a precise meaning: this module renders
a :class:`~repro.simulation.scenario.ScenarioResult` into a canonical JSON
document — every dataset record, every crawl snapshot, every stats block,
every counter — and hashes it.  Two results are equivalent iff their
fingerprints match.

The config block is deliberately excluded: the two runs being compared differ
in ``config.engine`` by construction.  Everything the simulation *computed*
is included.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import List

from repro.simulation.scenario import ScenarioResult


def _canonical(value: object) -> object:
    """Recursively coerce a value into JSON-stable plain data.

    Sets (PID sets in crawl snapshots, protocol sets in stats) are sorted by
    their string form; tuples become lists; dataclasses render field-wise;
    anything else must already be a JSON scalar.
    """
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name)) for f in dataclasses.fields(value)
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _crawl_blobs(result: ScenarioResult) -> List[dict]:
    return [
        {
            "started_at": snap.started_at,
            "finished_at": snap.finished_at,
            "discovered": sorted(str(p) for p in snap.discovered),
            "reachable": sorted(str(p) for p in snap.reachable),
            "unreachable": sorted(str(p) for p in snap.unreachable),
            "queries_sent": snap.queries_sent,
        }
        for snap in result.crawls.snapshots
    ]


def result_blob(result: ScenarioResult) -> dict:
    """Everything the simulation computed, as canonical plain data."""
    return {
        "events_processed": result.events_processed,
        "version_changes": result.version_changes,
        "role_flips": result.role_flips,
        "autonat_flips": result.autonat_flips,
        "datasets": {
            label: _canonical(dataset.as_dict())
            for label, dataset in sorted(result.datasets.items())
        },
        "crawls": _crawl_blobs(result),
        "content": _canonical(result.content),
        "adversary": _canonical(result.adversary),
        "netmodel": _canonical(result.netmodel),
        "faults": _canonical(result.faults),
        "bandwidth": _canonical(result.bandwidth),
        "identity_keys": dict(sorted(result.identity_keys.items())),
        "population": len(result.population.profiles),
    }


def result_fingerprint(result: ScenarioResult) -> str:
    """SHA-256 over the canonical JSON rendering of :func:`result_blob`."""
    text = json.dumps(result_blob(result), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
