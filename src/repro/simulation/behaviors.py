"""Meta-data behaviours of simulated peers.

Section IV.B of the paper observes that announced meta data is *mostly*
constant, but not entirely:

* go-ipfs agents upgrade, downgrade, or change their commit (Table III),
* peers flap their ``/ipfs/kad/1.0.0`` announcement, i.e. switch between
  DHT-Server and DHT-Client roles (2'481 peers, 68'396 changes), and
* peers flap ``/libp2p/autonat/1.0.0`` (3'603 peers, 86'651 changes).

This module schedules those behaviours on the event engine and pushes the
resulting identify updates through the network fabric so the measurement nodes
observe them the same way the paper's clients did (identify-push / refresh on
an open connection).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.libp2p.agent import parse_goipfs_agent
from repro.simulation.agents import AgentCatalog
from repro.simulation.churn_models import HOUR
from repro.simulation.engine import Engine
from repro.simulation.network import SimPeer, SimulatedNetwork
from repro.simulation.population import VersionBehavior


@dataclass
class BehaviorConfig:
    """Timing knobs of the meta-data behaviours."""

    #: mean time between two role flips of a flapping peer (~27 flips / 3 d)
    role_flip_interval: float = 2.6 * HOUR
    #: mean time between two autonat flips of a flapping peer (~24 flips / 3 d)
    autonat_flip_interval: float = 2.9 * HOUR
    #: version changes happen once, somewhere in the middle of the measurement
    version_change_window: tuple = (0.1, 0.9)
    #: probability that a dirty build stays dirty after a change (Table III is
    #: dominated by main–main and dirty–dirty transitions)
    keep_dirty_probability: float = 0.95
    keep_main_probability: float = 0.97


class MetadataBehaviors:
    """Schedules version changes, role flips, and autonat flapping."""

    def __init__(
        self,
        engine: Engine,
        network: SimulatedNetwork,
        rng: Optional[random.Random] = None,
        config: Optional[BehaviorConfig] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.rng = rng or random.Random(network.population.config.seed + 2)
        self.config = config or BehaviorConfig()
        self.catalog = AgentCatalog(self.rng)
        self.version_changes_applied = 0
        self.role_flips_applied = 0
        self.autonat_flips_applied = 0

    # -- wiring ---------------------------------------------------------------------

    def schedule_all(self, duration: float) -> None:
        """Schedule behaviours for every peer in the network."""
        for peer in self.network.peers:
            profile = peer.profile
            if profile.version_behavior is not VersionBehavior.STABLE:
                low, high = self.config.version_change_window
                at = self.rng.uniform(low * duration, high * duration)
                self.engine.schedule(at, self._apply_version_change, peer)
            if profile.flips_role:
                self._schedule_role_flip(peer, duration)
            if profile.flips_autonat:
                self._schedule_autonat_flip(peer, duration)

    # -- version changes ---------------------------------------------------------------

    def _apply_version_change(self, peer: SimPeer) -> None:
        parsed = parse_goipfs_agent(peer.agent)
        if parsed is None:
            return
        behavior = peer.profile.version_behavior
        if behavior is VersionBehavior.UPGRADE:
            release = self.catalog.upgraded_release(parsed.release_string)
        elif behavior is VersionBehavior.DOWNGRADE:
            release = self.catalog.downgraded_release(parsed.release_string)
        else:
            release = parsed.release_string
        if parsed.dirty:
            stay_dirty = self.rng.random() < self.config.keep_dirty_probability
        else:
            stay_dirty = self.rng.random() > self.config.keep_main_probability
        new_agent = self.catalog.make_goipfs_agent(
            release=release, dirty_probability=1.0 if stay_dirty else 0.0
        )
        if new_agent == peer.agent:
            return
        peer.agent = new_agent
        self.version_changes_applied += 1
        self.network.push_identify(peer)

    # -- role flips -----------------------------------------------------------------------

    def _schedule_role_flip(self, peer: SimPeer, duration: float) -> None:
        delay = self.rng.expovariate(1.0 / self.config.role_flip_interval)
        if self.engine.now + delay > duration:
            return
        self.engine.schedule(delay, self._apply_role_flip, peer, duration)

    def _apply_role_flip(self, peer: SimPeer, duration: float) -> None:
        peer.kad_announced = not peer.kad_announced
        self.role_flips_applied += 1
        self.network.push_identify(peer)
        self._schedule_role_flip(peer, duration)

    # -- autonat flips ------------------------------------------------------------------------

    def _schedule_autonat_flip(self, peer: SimPeer, duration: float) -> None:
        delay = self.rng.expovariate(1.0 / self.config.autonat_flip_interval)
        if self.engine.now + delay > duration:
            return
        self.engine.schedule(delay, self._apply_autonat_flip, peer, duration)

    def _apply_autonat_flip(self, peer: SimPeer, duration: float) -> None:
        peer.autonat_announced = not peer.autonat_announced
        self.autonat_flips_applied += 1
        self.network.push_identify(peer)
        self._schedule_autonat_flip(peer, duration)
