"""Meta-data behaviours of simulated peers.

Section IV.B of the paper observes that announced meta data is *mostly*
constant, but not entirely:

* go-ipfs agents upgrade, downgrade, or change their commit (Table III),
* peers flap their ``/ipfs/kad/1.0.0`` announcement, i.e. switch between
  DHT-Server and DHT-Client roles (2'481 peers, 68'396 changes), and
* peers flap ``/libp2p/autonat/1.0.0`` (3'603 peers, 86'651 changes).

This module schedules those behaviours on the event engine and pushes the
resulting identify updates through the network fabric so the measurement nodes
observe them the same way the paper's clients did (identify-push / refresh on
an open connection).

:class:`ContentBehaviors` schedules the other traffic class the paper's
vantage points sit in the middle of: content routing.  Publishers store
provider records for Zipf-popular items on the servers closest to each key
(and republish them), retrievers resolve the records and fetch the block from
a live provider over Bitswap — all against the same churning fabric, which is
what makes record liveness a measurable property.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.kademlia.dht import iterative_find_providers, iterative_provide
from repro.libp2p.agent import parse_goipfs_agent
from repro.simulation.agents import AgentCatalog
from repro.simulation.churn_models import HOUR
from repro.simulation.content import (
    ContentRoutingConfig,
    ContentRoutingStats,
    ZipfCatalog,
)
from repro.simulation.engine import Engine, PeriodicTask
from repro.simulation.network import SimPeer, SimulatedNetwork
from repro.simulation.population import VersionBehavior


@dataclass
class BehaviorConfig:
    """Timing knobs of the meta-data behaviours."""

    #: mean time between two role flips of a flapping peer (~27 flips / 3 d)
    role_flip_interval: float = 2.6 * HOUR
    #: mean time between two autonat flips of a flapping peer (~24 flips / 3 d)
    autonat_flip_interval: float = 2.9 * HOUR
    #: version changes happen once, somewhere in the middle of the measurement
    version_change_window: tuple = (0.1, 0.9)
    #: probability that a dirty build stays dirty after a change (Table III is
    #: dominated by main–main and dirty–dirty transitions)
    keep_dirty_probability: float = 0.95
    keep_main_probability: float = 0.97


class MetadataBehaviors:
    """Schedules version changes, role flips, and autonat flapping."""

    def __init__(
        self,
        engine: Engine,
        network: SimulatedNetwork,
        rng: Optional[random.Random] = None,
        config: Optional[BehaviorConfig] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.rng = rng or random.Random(network.population.config.seed + 2)
        self.config = config or BehaviorConfig()
        self.catalog = AgentCatalog(self.rng)
        self.version_changes_applied = 0
        self.role_flips_applied = 0
        self.autonat_flips_applied = 0

    # -- wiring ---------------------------------------------------------------------

    def schedule_all(self, duration: float) -> None:
        """Schedule behaviours for every peer in the network."""
        for peer in self.network.peers:
            profile = peer.profile
            if profile.version_behavior is not VersionBehavior.STABLE:
                low, high = self.config.version_change_window
                at = self.rng.uniform(low * duration, high * duration)
                self.engine.schedule_drop(at, self._apply_version_change, peer)
            if profile.flips_role:
                self._schedule_role_flip(peer, duration)
            if profile.flips_autonat:
                self._schedule_autonat_flip(peer, duration)

    # -- version changes ---------------------------------------------------------------

    def _apply_version_change(self, peer: SimPeer) -> None:
        parsed = parse_goipfs_agent(peer.agent)
        if parsed is None:
            return
        behavior = peer.profile.version_behavior
        if behavior is VersionBehavior.UPGRADE:
            release = self.catalog.upgraded_release(parsed.release_string)
        elif behavior is VersionBehavior.DOWNGRADE:
            release = self.catalog.downgraded_release(parsed.release_string)
        else:
            release = parsed.release_string
        if parsed.dirty:
            stay_dirty = self.rng.random() < self.config.keep_dirty_probability
        else:
            stay_dirty = self.rng.random() > self.config.keep_main_probability
        new_agent = self.catalog.make_goipfs_agent(
            release=release, dirty_probability=1.0 if stay_dirty else 0.0
        )
        if new_agent == peer.agent:
            return
        peer.agent = new_agent
        self.version_changes_applied += 1
        if self.network.obs is not None:
            self.network.obs.hub.inc("meta.version_change", self.engine.now)
        self.network.push_identify(peer)

    # -- role flips -----------------------------------------------------------------------

    def _schedule_role_flip(self, peer: SimPeer, duration: float) -> None:
        delay = self.rng.expovariate(1.0 / self.config.role_flip_interval)
        if self.engine.now + delay > duration:
            return
        self.engine.schedule_drop(delay, self._apply_role_flip, peer, duration)

    def _apply_role_flip(self, peer: SimPeer, duration: float) -> None:
        peer.kad_announced = not peer.kad_announced
        self.role_flips_applied += 1
        if self.network.obs is not None:
            self.network.obs.hub.inc("meta.role_flip", self.engine.now)
        self.network.push_identify(peer)
        self._schedule_role_flip(peer, duration)

    # -- autonat flips ------------------------------------------------------------------------

    def _schedule_autonat_flip(self, peer: SimPeer, duration: float) -> None:
        delay = self.rng.expovariate(1.0 / self.config.autonat_flip_interval)
        if self.engine.now + delay > duration:
            return
        self.engine.schedule_drop(delay, self._apply_autonat_flip, peer, duration)

    def _apply_autonat_flip(self, peer: SimPeer, duration: float) -> None:
        peer.autonat_announced = not peer.autonat_announced
        self.autonat_flips_applied += 1
        if self.network.obs is not None:
            self.network.obs.hub.inc("meta.autonat_flip", self.engine.now)
        self.network.push_identify(peer)
        self._schedule_autonat_flip(peer, duration)


class ContentBehaviors:
    """Schedules the publish/retrieve content-routing workload."""

    def __init__(
        self,
        engine: Engine,
        network: SimulatedNetwork,
        rng: Optional[random.Random] = None,
        config: Optional[ContentRoutingConfig] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.rng = rng or random.Random(network.population.config.seed + 3)
        self.config = config or ContentRoutingConfig()
        self.catalog = ZipfCatalog(
            self.config.n_items,
            self.config.zipf_exponent,
            size_classes=self.config.block_size_classes,
            size_seed=self.config.block_size_seed,
        )
        self.stats = ContentRoutingStats()
        self._duration = 0.0
        self._sweep_task: Optional[PeriodicTask] = None
        #: items each publisher has provided, kept only under fault injection
        #: so crash recovery knows what to republish (peer_index -> items)
        self._published: Dict[int, Set[int]] = {}
        if network.faults is not None:
            # Republish-on-recovery needs a way back into the workload.
            network.faults.content = self

    # -- wiring ---------------------------------------------------------------------

    def schedule_all(self, duration: float) -> None:
        """Pick publishers/retrievers and schedule their first operations.

        Role draws happen for every general-population peer in index order,
        so the workload is a pure function of the content RNG seed.
        """
        self._duration = duration
        config = self.config
        for peer in self.network.peers:
            profile = peer.profile
            if profile.is_crawler or profile.is_hydra_head:
                continue
            is_publisher = self.rng.random() < config.publisher_share
            is_retriever = self.rng.random() < config.retriever_share
            if is_publisher:
                self.stats.publishers += 1
                delay = self.rng.uniform(0.0, min(config.publish_interval, duration))
                self.engine.schedule_drop(delay, self._publish, peer)
            if is_retriever:
                self.stats.retrievers += 1
                delay = self.rng.uniform(0.0, min(config.retrieve_interval, duration))
                self.engine.schedule_drop(delay, self._retrieve, peer)
        self._sweep_task = PeriodicTask(self.engine, config.sweep_interval(), self._sweep)

    def finalize(self, now: float) -> ContentRoutingStats:
        """Close the books: count the records still live on the fabric."""
        self.stats.records_live_at_end = self.network.provider_record_count(now)
        return self.stats

    # -- shared helpers -------------------------------------------------------------

    def _schedule_next(self, peer: SimPeer, interval: float, callback) -> None:
        delay = self.rng.expovariate(1.0 / interval)
        if self.engine.now + delay > self._duration:
            return
        self.engine.schedule_drop(delay, callback, peer)

    def _seeds(self, peer: SimPeer, key: int):
        """Lookup entry points: bootstrap servers plus own table neighbours."""
        seeds = list(self.network.bootstrap_peers(self.config.bootstrap_count))
        if peer.routing_table is not None:
            seeds.extend(peer.routing_table.closest_peers(key, self.config.bootstrap_count))
        return seeds

    def _lookup_latency(self, hops: int) -> float:
        low, high = self.config.per_hop_latency
        return sum(self.rng.uniform(low, high) for _ in range(hops))

    def _sweep(self, now: float) -> None:
        self.stats.records_expired += self.network.sweep_provider_stores(now)

    # -- publishing -----------------------------------------------------------------

    def _publish(self, peer: SimPeer) -> None:
        self._schedule_next(peer, self.config.publish_interval, self._publish)
        if not peer.online:
            return
        item = self.catalog.sample(self.rng)
        self._do_provide(peer, item, republish=False)

    def _do_provide(self, peer: SimPeer, item: int, republish: bool) -> None:
        config = self.config
        network = self.network
        faults = network.faults
        key = self.catalog.key(item)
        clock = network.netmodel_clock(peer)
        tracer = network.tracer
        if tracer is not None:
            tracer.begin(
                "content.republish" if republish else "content.provide",
                peer.profile.peer_index,
            )
            tracer.push("walk", "walk")
        if clock is None:
            if faults is None:
                query = network.dht_query
                add = lambda remote, k, p: network.add_provider(  # noqa: E731
                    remote, k, p, config.provider_ttl
                )
                retry = None
            else:
                # Fault-aware wrappers name the source peer so partitions and
                # link loss apply to this walk's RPCs.
                query = lambda remote, target, count: network.dht_query(  # noqa: E731
                    remote, target, count, src=peer
                )
                add = lambda remote, k, p: network.add_provider(  # noqa: E731
                    remote, k, p, config.provider_ttl, src=peer
                )
                retry = faults.retry_state(tracer=tracer)
            result = iterative_provide(
                key,
                query,
                add,
                peer.current_pid,
                self._seeds(peer, key),
                replication=config.replication,
                max_queries=config.max_queries,
                retry=retry,
                trace=tracer,
            )
            latency = self._lookup_latency(result.hops)
            if tracer is not None:
                # The idealised fabric draws the walk latency synthetically;
                # one leaf carries it so per-trace attribution still sums to
                # the measured latency.
                tracer.leaf("lookup", "walk", latency, hops=result.hops)
                tracer.pop(latency)
        else:
            # Under a netmodel the walk accrues real simulated time (RTTs and
            # failed-dial timeouts) and gives up once the budget is spent.
            retry = None if faults is None else faults.retry_state(clock, tracer=tracer)
            result = iterative_provide(
                key,
                network.timed_query_fn(clock, src=peer),
                network.timed_add_provider_fn(clock, config.provider_ttl, src=peer),
                peer.current_pid,
                self._seeds(peer, key),
                replication=config.replication,
                max_queries=config.max_queries,
                give_up=clock.expired,
                retry=retry,
                trace=tracer,
            )
            latency = clock.finish()
            if tracer is not None:
                tracer.pop(latency, hops=result.hops)
        if faults is not None:
            self._published.setdefault(peer.profile.peer_index, set()).add(item)
        peer.ensure_bitswap().add_block(self.catalog.cid(item), self.catalog.block(item))
        stats = self.stats
        if republish:
            stats.republishes += 1
        else:
            stats.provides += 1
            if result.succeeded():
                stats.provide_successes += 1
            stats.provide_hops.append(result.hops)
            stats.provide_latencies.append(latency)
        stats.records_stored += len(result.stored_on)
        if network.obs is not None:
            now = self.engine.now
            network.obs.hub.inc(
                "content.republish" if republish else "content.provide", now
            )
            if not republish:
                network.obs.hub.observe("content.provide_seconds", now, latency)
        if tracer is not None:
            tracer.finish_root(
                latency,
                failed=not result.succeeded(),
                timed_out=clock is not None and clock.expired(),
                hops=result.hops,
                stored=len(result.stored_on),
            )
        if config.republish_interval is not None:
            if self.engine.now + config.republish_interval <= self._duration:
                self.engine.schedule_drop(
                    config.republish_interval, self._republish, peer, item
                )

    def _republish(self, peer: SimPeer, item: int) -> None:
        # An offline node cannot reprovide; its records now race the TTL.
        if peer.online:
            self._do_provide(peer, item, republish=True)

    def on_peer_recovered(self, peer: SimPeer) -> None:
        """Republish a crashed publisher's items shortly after its restart.

        Called by the fault runtime when ``republish_on_recovery`` is set.
        Delays come from the fault stream so the honest workload RNG is
        untouched.
        """
        items = self._published.get(peer.profile.peer_index)
        if not items:
            return
        faults = self.network.faults
        for item in sorted(items):
            delay = faults.rng.uniform(1.0, 60.0)
            if self.engine.now + delay <= self._duration:
                faults.stats.recovery_republishes += 1
                self.engine.schedule_drop(delay, self._republish, peer, item)

    # -- retrieval ------------------------------------------------------------------

    def _retrieve(self, peer: SimPeer) -> None:
        self._schedule_next(peer, self.config.retrieve_interval, self._retrieve)
        if not peer.online:
            return
        config = self.config
        network = self.network
        item = self.catalog.sample(self.rng)
        cid = self.catalog.cid(item)
        bitswap = peer.ensure_bitswap()
        if bitswap.has_block(cid):
            self.stats.retrievals_local += 1
            return
        key = self.catalog.key(item)
        faults = network.faults
        clock = network.netmodel_clock(peer)
        tracer = network.tracer
        if tracer is not None:
            tracer.begin("content.retrieve", peer.profile.peer_index)
            tracer.push("walk", "walk")
        if clock is None:
            if faults is None:
                get_providers = network.get_providers
                retry = None
            else:
                get_providers = lambda remote, k: network.get_providers(  # noqa: E731
                    remote, k, src=peer
                )
                retry = faults.retry_state(tracer=tracer)
            result = iterative_find_providers(
                key,
                get_providers,
                self._seeds(peer, key),
                self_id=peer.current_pid,
                max_queries=config.max_queries,
                max_providers=config.max_providers,
                retry=retry,
                trace=tracer,
            )
            latency = self._lookup_latency(result.hops)
            if tracer is not None:
                # Synthetic walk latency on the idealised fabric: one leaf
                # carries it so per-trace attribution still sums.
                tracer.leaf("lookup", "walk", latency, hops=result.hops)
                tracer.pop(latency)
        else:
            retry = None if faults is None else faults.retry_state(clock, tracer=tracer)
            result = iterative_find_providers(
                key,
                network.timed_get_providers_fn(clock, src=peer),
                self._seeds(peer, key),
                self_id=peer.current_pid,
                max_queries=config.max_queries,
                max_providers=config.max_providers,
                give_up=clock.expired,
                retry=retry,
                trace=tracer,
            )
            latency = clock.finish()
            if tracer is not None:
                tracer.pop(latency, hops=result.hops)
        success = False
        for pid in result.providers:
            provider = network.peers_by_pid.get(pid)
            if provider is None or provider is peer:
                continue
            if faults is not None:
                faults.stats.provider_checks += 1
            # A stale record: the provider left or rotated its PID since.
            if not provider.online or provider.current_pid != pid:
                if faults is not None:
                    # Crash leftovers and churn both strand records; the
                    # resilience report tracks how often retrievers hit them.
                    faults.stats.stale_provider_hits += 1
                continue
            if provider.bitswap is None:
                continue
            if network.netmodel is not None and not network.netmodel.dial(provider.net):
                # A NATed provider holds the block but cannot be fetched from;
                # the failed dial still costs the same timeout a walk pays.
                dial_timeout = network.netmodel.config.reachability.dial_timeout
                latency += dial_timeout
                if tracer is not None:
                    tracer.leaf("provider_dial", "dial", dial_timeout)
                continue
            bandwidth = network.bandwidth
            plan = None
            if bandwidth is not None:
                # Plan the transfer *before* the Bitswap exchange: a fetch
                # abandoned for a hopeless queue must not end with the block
                # in the local store anyway.
                rtt = 0.0
                if network.netmodel is not None:
                    rtt = network.netmodel.rtt(peer.net, provider.net)
                plan = bandwidth.plan_transfer(
                    self.engine.now,
                    provider.link,
                    peer.link,
                    self.catalog.size(item),
                    rtt=rtt,
                )
                if plan is None:
                    # The provider's uplink (or our downlink) is saturated past
                    # the timeout: give up on this provider and try the next.
                    latency += bandwidth.config.transfer_timeout
                    if tracer is not None:
                        tracer.leaf(
                            "transfer_wait",
                            "queue",
                            bandwidth.config.transfer_timeout,
                            outcome="timeout",
                        )
                    continue
            if faults is None:
                block = bitswap.fetch_from(peer.current_pid, pid, provider.bitswap, cid)
            else:
                block = bitswap.fetch_from(
                    peer.current_pid,
                    pid,
                    provider.bitswap,
                    cid,
                    deliver=lambda p=provider: faults.bitswap_deliver(peer.flt, p.flt),
                    retry=faults.retry_state(),
                )
            if block is None:
                if tracer is not None:
                    # The exchange died on the fault gate; no simulated time
                    # was charged, the leaf just records the failed fetch.
                    tracer.leaf("bitswap", "transfer", 0.0, outcome="lost")
                continue
            success = True
            if plan is not None:
                # Real data plane: RTT + queueing + serialization, and the
                # links stay busy for everyone behind us.
                transfer_seconds = bandwidth.commit_transfer(self.engine.now, plan)
                latency += transfer_seconds
                if tracer is not None:
                    tracer.transfer(
                        plan.rtt, plan.queueing, plan.serialization,
                        transfer_seconds, plan.size,
                    )
                if network.obs is not None:
                    network.obs.hub.observe(
                        "bandwidth.transfer_seconds", self.engine.now, transfer_seconds
                    )
            else:
                fetch_seconds = self.rng.uniform(*config.transfer_latency)
                latency += fetch_seconds
                rtt_seconds = 0.0
                if network.netmodel is not None:
                    # The Bitswap exchange pays its round trip to the provider.
                    rtt_seconds = network.netmodel.rtt(peer.net, provider.net)
                    latency += rtt_seconds
                if tracer is not None:
                    tracer.push("transfer", "transfer")
                    tracer.leaf("exchange", "transfer", fetch_seconds)
                    if rtt_seconds:
                        tracer.leaf("rtt", "transfer", rtt_seconds)
                    tracer.pop(fetch_seconds + rtt_seconds)
            break
        stats = self.stats
        stats.retrievals += 1
        if success:
            stats.retrieval_successes += 1
        if self.engine.now <= self._duration / 2.0:
            stats.first_half_retrievals += 1
            if success:
                stats.first_half_successes += 1
        else:
            stats.second_half_retrievals += 1
            if success:
                stats.second_half_successes += 1
        stats.retrieve_hops.append(result.hops)
        stats.retrieve_latencies.append(latency)
        if network.obs is not None:
            now = self.engine.now
            network.obs.hub.inc(
                "content.retrieve_ok" if success else "content.retrieve_fail", now
            )
            network.obs.hub.observe("content.retrieve_seconds", now, latency)
        if tracer is not None:
            tracer.finish_root(
                latency,
                failed=not success,
                timed_out=clock is not None and clock.expired(),
                hops=result.hops,
                providers=len(result.providers),
            )
