"""The synthetic agent-string catalogue.

Fig. 3 of the paper shows the observed distribution of agent versions: the bulk
of the network runs some go-ipfs release (0.4.x through 0.11.0 plus -dev
builds), plus hydra-booster heads, self-identified crawlers, the IPStorm botnet
("storm"), an assortment of exotic agents (go-qkfile, ant, ioi, even a
go-ethereum node) and a tail of peers that never delivered an agent string.

The catalogue below reproduces that composition.  Shares are expressed as
weights relative to the whole population and follow Section IV.B's absolute
counts (50'254 go-ipfs, 1'028 hydra, 586 crawler, 10'926 other, 3'059 missing
out of 65'853 PIDs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.libp2p.agent import GO_IPFS_PREFIX, GoIpfsVersion, parse_goipfs_agent

__all__ = ["AgentCatalog", "GoIpfsVersion", "parse_goipfs_agent", "AgentSample"]


#: go-ipfs release distribution (release string -> relative weight), modelled on
#: Fig. 3: 0.8.0 to 0.11.0 dominate, older 0.4.x releases linger, -dev builds
#: are rare.  The absolute occupancy of individual releases does not matter for
#: any claim; orderings (0.11.0/0.10.0/0.8.0 on top) do.
GO_IPFS_RELEASE_WEIGHTS: Dict[str, float] = {
    "0.11.0": 0.26,
    "0.10.0": 0.20,
    "0.9.1": 0.07,
    "0.9.0": 0.05,
    "0.8.0": 0.22,      # inflated by the storm population masquerading as 0.8.0
    "0.7.0": 0.06,
    "0.6.0": 0.04,
    "0.5.0-dev": 0.01,
    "0.4.23": 0.03,
    "0.4.22": 0.03,
    "0.4.21": 0.02,
    "0.11.0-dev": 0.01,
}

#: Non-go-ipfs agents observed in Fig. 3 (excluding hydra and crawlers, which
#: are assigned by role, and excluding "missing").
OTHER_AGENT_WEIGHTS: Dict[str, float] = {
    "storm": 0.45,
    "go-qkfile/0.9.1/": 0.20,
    "ant/0.2.1/fe027af": 0.12,
    "ioi": 0.10,
    "rust-ipfs/0.1.0": 0.05,
    "js-ipfs/0.55.0": 0.05,
    "go-ethereum/v1.10.13": 0.03,
}

CRAWLER_AGENTS: Tuple[str, ...] = (
    "nebula-crawler/1.0.0",
    "ipfs crawler",
)

HYDRA_AGENT = "hydra-booster/0.7.4"

#: Commit hashes used to synthesise the "commit" part of go-ipfs agent strings.
_COMMIT_POOL: Tuple[str, ...] = (
    "0c2f9d5", "b2efcf5", "67220ed", "3e0ca8c", "ce693d7", "d6cbf95",
    "f7e9b4a", "9a1cbe3", "aa21781", "5bb3fc2", "8cde761", "2f7a0d9",
)


@dataclass(frozen=True)
class AgentSample:
    """An agent string plus the derived facts the simulation needs."""

    agent: Optional[str]          # None models a peer whose identify never completed
    is_goipfs: bool
    is_storm: bool
    release: Optional[str] = None


class AgentCatalog:
    """Samples agent strings for the synthetic population."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self._goipfs_releases = list(GO_IPFS_RELEASE_WEIGHTS.items())
        self._other_agents = list(OTHER_AGENT_WEIGHTS.items())

    # -- go-ipfs ---------------------------------------------------------------

    def sample_goipfs_release(self) -> str:
        return self._weighted_choice(self._goipfs_releases)

    def make_goipfs_agent(
        self, release: Optional[str] = None, dirty_probability: float = 0.08
    ) -> str:
        """Build a full go-ipfs agent string with a commit part."""
        release = release or self.sample_goipfs_release()
        commit = self.rng.choice(_COMMIT_POOL)
        dirty = self.rng.random() < dirty_probability
        suffix = "-dirty" if dirty else ""
        return f"{GO_IPFS_PREFIX}/{release}/{commit}{suffix}"

    def upgraded_release(self, release: str) -> str:
        """Return a release string strictly newer than ``release`` (if possible)."""
        ordered = self._ordered_releases()
        try:
            idx = ordered.index(release)
        except ValueError:
            return ordered[-1]
        newer = ordered[idx + 1:] or ordered[-1:]
        return self.rng.choice(newer) if isinstance(newer, list) and newer else ordered[-1]

    def downgraded_release(self, release: str) -> str:
        """Return a release string strictly older than ``release`` (if possible)."""
        ordered = self._ordered_releases()
        try:
            idx = ordered.index(release)
        except ValueError:
            return ordered[0]
        older = ordered[:idx] or ordered[:1]
        return self.rng.choice(older) if older else ordered[0]

    def _ordered_releases(self) -> List[str]:
        def key(release: str) -> Tuple[int, int, int]:
            parsed = parse_goipfs_agent(f"{GO_IPFS_PREFIX}/{release}")
            assert parsed is not None
            return parsed.release

        return sorted(GO_IPFS_RELEASE_WEIGHTS, key=key)

    # -- other agent families ----------------------------------------------------

    def sample_other_agent(self) -> str:
        return self._weighted_choice(self._other_agents)

    def sample_crawler_agent(self) -> str:
        return self.rng.choice(CRAWLER_AGENTS)

    def hydra_agent(self) -> str:
        return HYDRA_AGENT

    # -- sampling by population share --------------------------------------------

    def sample(
        self,
        goipfs_share: float = 0.763,
        other_share: float = 0.166,
        missing_share: float = 0.046,
        storm_share: float = 0.114,
    ) -> AgentSample:
        """Draw an agent for a generic (non-hydra, non-crawler) peer.

        Shares follow Section IV.B: 50'254/65'853 go-ipfs, 10'926 other,
        3'059 missing; 7'498 storm-like peers masquerade as go-ipfs 0.8.0
        (they announce /sbptp/ instead of Bitswap).
        """
        roll = self.rng.random()
        if roll < missing_share:
            return AgentSample(agent=None, is_goipfs=False, is_storm=False)
        if roll < missing_share + other_share:
            agent = self.sample_other_agent()
            return AgentSample(agent=agent, is_goipfs=False, is_storm=agent == "storm")
        # go-ipfs population; a slice of it is the storm botnet hiding behind 0.8.0
        if self.rng.random() < storm_share:
            agent = self.make_goipfs_agent(release="0.8.0")
            return AgentSample(agent=agent, is_goipfs=True, is_storm=True, release="0.8.0")
        release = self.sample_goipfs_release()
        agent = self.make_goipfs_agent(release=release)
        return AgentSample(agent=agent, is_goipfs=True, is_storm=False, release=release)

    # -- helpers -----------------------------------------------------------------

    def _weighted_choice(self, items: Sequence[Tuple[str, float]]) -> str:
        total = sum(weight for _, weight in items)
        roll = self.rng.random() * total
        cumulative = 0.0
        for value, weight in items:
            cumulative += weight
            if roll <= cumulative:
                return value
        return items[-1][0]
