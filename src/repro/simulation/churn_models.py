"""Session (uptime / downtime) models for simulated peers.

P2P measurement literature consistently finds heavy-tailed session lengths:
most sessions are short, a small core stays online for days.  The paper's
Table IV classification (heavy / normal / light / one-time) is exactly a
coarse-graining of that behaviour as seen through connection records.  The
distributions here drive the ground-truth session behaviour of the synthetic
population; the analysis code then has to *recover* the classification from
the recorded connections, the same way the paper does.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

DAY = 86_400.0
HOUR = 3_600.0
MINUTE = 60.0


class Distribution(Protocol):
    """A positive random variable (durations in seconds)."""

    def sample(self, rng: random.Random) -> float:  # pragma: no cover - protocol
        ...

    def mean(self) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class FixedDistribution:
    """Always returns the same value (useful in tests and for crawler probes)."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("value must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDistribution:
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("require 0 <= low <= high")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class ExponentialDistribution:
    """Memoryless durations; ``mean_value`` is the expected duration."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_value)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class WeibullDistribution:
    """Weibull durations; shape < 1 gives the heavy tail typical of P2P churn."""

    scale: float
    shape: float

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.shape <= 0:
            raise ValueError("scale and shape must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.weibullvariate(self.scale, self.shape)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


@dataclass(frozen=True)
class LogNormalDistribution:
    """Log-normal durations parameterised by the underlying normal's mu/sigma."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    @classmethod
    def from_median_and_sigma(cls, median: float, sigma: float) -> "LogNormalDistribution":
        if median <= 0:
            raise ValueError("median must be positive")
        return cls(mu=math.log(median), sigma=sigma)


@dataclass(frozen=True)
class ParetoDistribution:
    """Pareto durations (power-law tail) with a minimum value ``xm``."""

    xm: float
    alpha: float

    def __post_init__(self) -> None:
        if self.xm <= 0 or self.alpha <= 0:
            raise ValueError("xm and alpha must be positive")

    def sample(self, rng: random.Random) -> float:
        return self.xm * (1.0 + rng.paretovariate(self.alpha) - 1.0)

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)


@dataclass(frozen=True)
class SessionModel:
    """Alternating online/offline behaviour of a peer.

    ``max_sessions`` caps how often the peer ever (re)joins — one-time peers
    use 1 or 2; ``None`` means unbounded.
    """

    uptime: Distribution
    downtime: Distribution
    max_sessions: Optional[int] = None
    #: probability that the peer is already online when the measurement starts
    initially_online_probability: float = 0.5

    def initial_state(self, rng: random.Random) -> Tuple[bool, float]:
        """Return (online?, time until the first state change)."""
        online = rng.random() < self.initially_online_probability
        # Residual time of the in-progress session/downtime.  Sampling a fresh
        # duration is a standard simplification (exact residuals would need the
        # stationary distribution); it slightly shortens observed first
        # sessions, which is conservative for the classification analysis.
        duration = self.uptime.sample(rng) if online else self.downtime.sample(rng)
        return online, duration

    def next_uptime(self, rng: random.Random) -> float:
        return self.uptime.sample(rng)

    def next_downtime(self, rng: random.Random) -> float:
        return self.downtime.sample(rng)


# -- canonical session models for the paper's peer classes ------------------------

def always_on_session() -> SessionModel:
    """Heavy peers: effectively always online for the whole measurement."""
    return SessionModel(
        uptime=ExponentialDistribution(30 * DAY),
        downtime=UniformDistribution(MINUTE, 10 * MINUTE),
        initially_online_probability=1.0,
    )


def normal_session() -> SessionModel:
    """Normal peers: sessions of a few hours to a day, daily usage pattern."""
    return SessionModel(
        uptime=LogNormalDistribution.from_median_and_sigma(6 * HOUR, 0.8),
        downtime=LogNormalDistribution.from_median_and_sigma(8 * HOUR, 0.8),
        initially_online_probability=0.5,
    )


def light_session() -> SessionModel:
    """Light peers: many short sessions (repeated experimentation, flaky nodes)."""
    return SessionModel(
        uptime=WeibullDistribution(scale=20 * MINUTE, shape=0.7),
        downtime=WeibullDistribution(scale=2 * HOUR, shape=0.8),
        initially_online_probability=0.3,
    )


def one_time_session(rng_sessions: int = 1) -> SessionModel:
    """One-time peers: one or two short appearances, never to return."""
    return SessionModel(
        uptime=LogNormalDistribution.from_median_and_sigma(15 * MINUTE, 1.0),
        downtime=UniformDistribution(10 * MINUTE, 2 * HOUR),
        max_sessions=rng_sessions,
        initially_online_probability=0.0,
    )
