"""Session (uptime / downtime) models for simulated peers.

P2P measurement literature consistently finds heavy-tailed session lengths:
most sessions are short, a small core stays online for days.  The paper's
Table IV classification (heavy / normal / light / one-time) is exactly a
coarse-graining of that behaviour as seen through connection records.  The
distributions here drive the ground-truth session behaviour of the synthetic
population; the analysis code then has to *recover* the classification from
the recorded connections, the same way the paper does.

Beyond the stationary :class:`SessionModel` the module provides a small
library of non-stationary churn models behind one :class:`ChurnModel`
protocol — diurnal sine-modulated activity, flash-crowd bursts, correlated
mass outages, heavy-tailed Pareto sessions, and replay of recorded session
traces.  The network fabric only talks to the protocol, so a scenario swaps
churn regimes by swapping the model on the peer profiles.
"""

from __future__ import annotations

import csv
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

DAY = 86_400.0
HOUR = 3_600.0
MINUTE = 60.0


class Distribution(Protocol):
    """A positive random variable (durations in seconds)."""

    def sample(self, rng: random.Random) -> float:  # pragma: no cover - protocol
        ...

    def mean(self) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class FixedDistribution:
    """Always returns the same value (useful in tests and for crawler probes)."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("value must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDistribution:
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("require 0 <= low <= high")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class ExponentialDistribution:
    """Memoryless durations; ``mean_value`` is the expected duration."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_value)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class WeibullDistribution:
    """Weibull durations; shape < 1 gives the heavy tail typical of P2P churn."""

    scale: float
    shape: float

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.shape <= 0:
            raise ValueError("scale and shape must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.weibullvariate(self.scale, self.shape)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


@dataclass(frozen=True)
class LogNormalDistribution:
    """Log-normal durations parameterised by the underlying normal's mu/sigma."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    @classmethod
    def from_median_and_sigma(cls, median: float, sigma: float) -> "LogNormalDistribution":
        if median <= 0:
            raise ValueError("median must be positive")
        return cls(mu=math.log(median), sigma=sigma)


@dataclass(frozen=True)
class ParetoDistribution:
    """Pareto durations (power-law tail) with a minimum value ``xm``."""

    xm: float
    alpha: float

    def __post_init__(self) -> None:
        if self.xm <= 0 or self.alpha <= 0:
            raise ValueError("xm and alpha must be positive")

    def sample(self, rng: random.Random) -> float:
        return self.xm * (1.0 + rng.paretovariate(self.alpha) - 1.0)

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)


class ChurnModel(Protocol):
    """What the network fabric needs from a peer's churn behaviour.

    :class:`SessionModel` is the stationary reference implementation; the
    non-stationary models below modulate it by the simulation clock ``now``
    (seconds since measurement start).  Implementations may additionally
    provide ``arrival_time(rng, duration)`` to place a one-time peer's single
    appearance inside the measurement window (defaults to a uniform draw done
    by the network fabric when the hook is absent).
    """

    max_sessions: Optional[int]

    def initial_state(self, rng: random.Random) -> Tuple[bool, float]:  # pragma: no cover
        ...

    def next_uptime(self, rng: random.Random, now: float = 0.0) -> float:  # pragma: no cover
        ...

    def next_downtime(self, rng: random.Random, now: float = 0.0) -> float:  # pragma: no cover
        ...


@dataclass(frozen=True)
class SessionModel:
    """Alternating online/offline behaviour of a peer.

    ``max_sessions`` caps how often the peer ever (re)joins — one-time peers
    use 1 or 2; ``None`` means unbounded.
    """

    uptime: Distribution
    downtime: Distribution
    max_sessions: Optional[int] = None
    #: probability that the peer is already online when the measurement starts
    initially_online_probability: float = 0.5

    def initial_state(self, rng: random.Random) -> Tuple[bool, float]:
        """Return (online?, time until the first state change)."""
        online = rng.random() < self.initially_online_probability
        # Residual time of the in-progress session/downtime.  Sampling a fresh
        # duration is a standard simplification (exact residuals would need the
        # stationary distribution); it slightly shortens observed first
        # sessions, which is conservative for the classification analysis.
        duration = self.uptime.sample(rng) if online else self.downtime.sample(rng)
        return online, duration

    def next_uptime(self, rng: random.Random, now: float = 0.0) -> float:
        return self.uptime.sample(rng)

    def next_downtime(self, rng: random.Random, now: float = 0.0) -> float:
        return self.downtime.sample(rng)


# -- canonical session models for the paper's peer classes ------------------------

def always_on_session() -> SessionModel:
    """Heavy peers: effectively always online for the whole measurement."""
    return SessionModel(
        uptime=ExponentialDistribution(30 * DAY),
        downtime=UniformDistribution(MINUTE, 10 * MINUTE),
        initially_online_probability=1.0,
    )


def normal_session() -> SessionModel:
    """Normal peers: sessions of a few hours to a day, daily usage pattern."""
    return SessionModel(
        uptime=LogNormalDistribution.from_median_and_sigma(6 * HOUR, 0.8),
        downtime=LogNormalDistribution.from_median_and_sigma(8 * HOUR, 0.8),
        initially_online_probability=0.5,
    )


def light_session() -> SessionModel:
    """Light peers: many short sessions (repeated experimentation, flaky nodes)."""
    return SessionModel(
        uptime=WeibullDistribution(scale=20 * MINUTE, shape=0.7),
        downtime=WeibullDistribution(scale=2 * HOUR, shape=0.8),
        initially_online_probability=0.3,
    )


def one_time_session(rng_sessions: int = 1) -> SessionModel:
    """One-time peers: one or two short appearances, never to return."""
    return SessionModel(
        uptime=LogNormalDistribution.from_median_and_sigma(15 * MINUTE, 1.0),
        downtime=UniformDistribution(10 * MINUTE, 2 * HOUR),
        max_sessions=rng_sessions,
        initially_online_probability=0.0,
    )


def pareto_session(
    mean_uptime: float,
    mean_downtime: float,
    alpha: float = 1.5,
    initially_online_probability: float = 0.5,
) -> SessionModel:
    """Heavy-tailed sessions: Pareto uptime *and* downtime with the given means.

    ``alpha`` must exceed 1 so the requested means are finite; smaller alpha
    means a heavier tail (more mass in very long sessions/absences).
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a finite mean")
    if mean_uptime <= 0 or mean_downtime <= 0:
        raise ValueError("means must be positive")
    factor = (alpha - 1.0) / alpha
    return SessionModel(
        uptime=ParetoDistribution(xm=mean_uptime * factor, alpha=alpha),
        downtime=ParetoDistribution(xm=mean_downtime * factor, alpha=alpha),
        initially_online_probability=initially_online_probability,
    )


# -- non-stationary churn models ---------------------------------------------------


@dataclass(frozen=True)
class DiurnalChurnModel:
    """Sine-modulated activity: short downtimes near the daily peak, long ones
    off-peak (and symmetrically longer/shorter uptimes).

    The activity factor at simulation time ``t`` is
    ``1 + amplitude * cos(2π (t - peak_time) / period)``; uptimes are
    multiplied by it (their mean over one full cycle matches the base model),
    downtimes divided by it (shortest at the peak, longest at the trough).
    """

    base: SessionModel
    amplitude: float = 0.5
    period: float = DAY
    peak_time: float = 18 * HOUR

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def max_sessions(self) -> Optional[int]:
        return self.base.max_sessions

    def activity(self, now: float) -> float:
        """The instantaneous activity factor (in ``[1 - a, 1 + a]``)."""
        phase = 2.0 * math.pi * (now - self.peak_time) / self.period
        return 1.0 + self.amplitude * math.cos(phase)

    def initial_state(self, rng: random.Random) -> Tuple[bool, float]:
        return self.base.initial_state(rng)

    def next_uptime(self, rng: random.Random, now: float = 0.0) -> float:
        return self.base.next_uptime(rng) * self.activity(now)

    def next_downtime(self, rng: random.Random, now: float = 0.0) -> float:
        return self.base.next_downtime(rng) / self.activity(now)


@dataclass(frozen=True)
class FlashCrowdChurnModel:
    """A burst window during which peers arrive and return much faster.

    Inside ``[burst_start, burst_start + burst_duration)`` downtimes shrink by
    ``intensity``; one-time peers concentrate their single appearance inside
    the window with probability ``arrival_share`` (via the ``arrival_time``
    hook the network fabric consults for one-time peers).
    """

    base: SessionModel
    burst_start: float
    burst_duration: float
    intensity: float = 8.0
    arrival_share: float = 0.8

    def __post_init__(self) -> None:
        if self.burst_start < 0 or self.burst_duration <= 0:
            raise ValueError("burst window must be non-negative and non-empty")
        if self.intensity < 1.0:
            raise ValueError("intensity must be >= 1")
        if not 0.0 <= self.arrival_share <= 1.0:
            raise ValueError("arrival_share must be in [0, 1]")

    @property
    def max_sessions(self) -> Optional[int]:
        return self.base.max_sessions

    def in_burst(self, now: float) -> bool:
        return self.burst_start <= now < self.burst_start + self.burst_duration

    def initial_state(self, rng: random.Random) -> Tuple[bool, float]:
        return self.base.initial_state(rng)

    def next_uptime(self, rng: random.Random, now: float = 0.0) -> float:
        return self.base.next_uptime(rng)

    def next_downtime(self, rng: random.Random, now: float = 0.0) -> float:
        downtime = self.base.next_downtime(rng)
        if self.in_burst(now):
            return downtime / self.intensity
        return downtime

    def arrival_time(self, rng: random.Random, duration: float) -> float:
        """First-appearance time of a one-time peer within ``duration``."""
        window_start = min(self.burst_start, duration)
        window_end = min(self.burst_start + self.burst_duration, duration)
        if rng.random() < self.arrival_share and window_end > window_start:
            return rng.uniform(window_start, window_end)
        return rng.uniform(0.0, duration * 0.95)


@dataclass(frozen=True)
class MassOutageChurnModel:
    """A correlated outage: affected peers all drop at ``outage_start`` and
    stay away until ``outage_start + outage_duration`` (region failure, ISP or
    cloud-provider incident).

    Uptimes that would span the outage start are truncated so the peer drops
    exactly when the outage hits; downtimes that would end inside the outage
    are extended past its end plus a small ``recovery_spread`` jitter, which
    models the (partially synchronised) reconnect stampede afterwards.
    """

    base: SessionModel
    outage_start: float
    outage_duration: float
    recovery_spread: float = 10 * MINUTE

    def __post_init__(self) -> None:
        if self.outage_start < 0 or self.outage_duration <= 0:
            raise ValueError("outage window must be non-negative and non-empty")
        if self.recovery_spread < 0:
            raise ValueError("recovery_spread must be non-negative")

    @property
    def max_sessions(self) -> Optional[int]:
        return self.base.max_sessions

    @property
    def outage_end(self) -> float:
        return self.outage_start + self.outage_duration

    def in_outage(self, now: float) -> bool:
        return self.outage_start <= now < self.outage_end

    def initial_state(self, rng: random.Random) -> Tuple[bool, float]:
        online, duration = self.base.initial_state(rng)
        if online and duration > self.outage_start:
            duration = max(1.0, self.outage_start)
        return online, duration

    def next_uptime(self, rng: random.Random, now: float = 0.0) -> float:
        if self.in_outage(now):
            # Should not come online mid-outage; if scheduled to, flap briefly.
            return MINUTE
        uptime = self.base.next_uptime(rng)
        if now < self.outage_start < now + uptime:
            return self.outage_start - now
        return uptime

    def next_downtime(self, rng: random.Random, now: float = 0.0) -> float:
        downtime = self.base.next_downtime(rng)
        end = now + downtime
        if now < self.outage_end and end > self.outage_start and end < self.outage_end:
            return (self.outage_end - now) + rng.uniform(0.0, self.recovery_spread)
        return downtime


class TraceReplayChurnModel:
    """Replays recorded session/intersession intervals (e.g. from a live
    measurement exported as CSV).

    Each peer should get its own instance (see :meth:`spawn`) so peers walk
    the trace from different offsets; samples cycle when the trace is
    exhausted.  Replay is deterministic: the RNG is only used to pick the
    initial online state.
    """

    def __init__(
        self,
        sessions: Sequence[float],
        intersessions: Sequence[float],
        offset: int = 0,
        max_sessions: Optional[int] = None,
        initially_online_probability: float = 0.5,
    ) -> None:
        if not sessions or not intersessions:
            raise ValueError("trace needs at least one session and one intersession")
        for value in list(sessions) + list(intersessions):
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"trace intervals must be positive and finite, got {value!r}")
        self.sessions: List[float] = list(sessions)
        self.intersessions: List[float] = list(intersessions)
        self.max_sessions = max_sessions
        self.initially_online_probability = initially_online_probability
        self._up_cursor = offset % len(self.sessions)
        self._down_cursor = offset % len(self.intersessions)

    @classmethod
    def from_csv(
        cls,
        path: str,
        session_column: str = "session",
        intersession_column: str = "intersession",
        **kwargs,
    ) -> "TraceReplayChurnModel":
        """Load a trace from a CSV with session/intersession columns (seconds).

        Malformed input raises one clear :class:`ValueError` naming the file,
        and — for bad values — the offending row and column, instead of
        leaking a ``KeyError``/``TypeError`` from the csv plumbing.
        """
        sessions: List[float] = []
        intersessions: List[float] = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            header = reader.fieldnames
            missing = [
                column
                for column in (session_column, intersession_column)
                if header is None or column not in header
            ]
            if missing:
                raise ValueError(
                    f"trace CSV {path!r} is missing column(s) "
                    f"{', '.join(repr(c) for c in missing)}; "
                    f"found {header if header is not None else 'an empty file'}"
                )
            # enumerate from 2: row 1 is the header line
            for line, row in enumerate(reader, start=2):
                for column, target in (
                    (session_column, sessions),
                    (intersession_column, intersessions),
                ):
                    raw = row.get(column)
                    try:
                        target.append(float(raw))
                    except (TypeError, ValueError):
                        raise ValueError(
                            f"trace CSV {path!r} row {line}, column {column!r}: "
                            f"expected a number, got {raw!r}"
                        ) from None
        if not sessions:
            raise ValueError(f"trace CSV {path!r} holds no data rows")
        return cls(sessions, intersessions, **kwargs)

    def spawn(self, rng: random.Random) -> "TraceReplayChurnModel":
        """A fresh per-peer instance starting at an RNG-chosen trace offset."""
        return TraceReplayChurnModel(
            self.sessions,
            self.intersessions,
            offset=rng.randrange(len(self.sessions)),
            max_sessions=self.max_sessions,
            initially_online_probability=self.initially_online_probability,
        )

    def mean_uptime(self) -> float:
        return sum(self.sessions) / len(self.sessions)

    def mean_downtime(self) -> float:
        return sum(self.intersessions) / len(self.intersessions)

    def initial_state(self, rng: random.Random) -> Tuple[bool, float]:
        online = rng.random() < self.initially_online_probability
        duration = self.next_uptime(rng) if online else self.next_downtime(rng)
        return online, duration

    def next_uptime(self, rng: random.Random, now: float = 0.0) -> float:
        value = self.sessions[self._up_cursor]
        self._up_cursor = (self._up_cursor + 1) % len(self.sessions)
        return value

    def next_downtime(self, rng: random.Random, now: float = 0.0) -> float:
        value = self.intersessions[self._down_cursor]
        self._down_cursor = (self._down_cursor + 1) % len(self.intersessions)
        return value
