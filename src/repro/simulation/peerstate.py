"""Struct-of-arrays peer state for the vectorized fabric.

The legacy fabric walks one python object per peer for every keyspace or
classification question.  This module keeps the per-peer facts the hot paths
actually ask about as flat numpy arrays, indexed by ``peer_index``:

* **routing keys** — each peer's 256-bit Kademlia key as four big-endian
  ``uint64`` limbs, so "closest peers to a target" is a vectorized XOR plus a
  ``lexsort`` instead of a python ``sorted`` with big-int comparisons.  The
  limb ordering is *exact*: comparing ``(limb0, limb1, limb2, limb3)``
  lexicographically is identical to comparing the 256-bit integers, so the
  vectorized neighbourhood computation returns byte-identical results.
* **role / class codes** — DHT-Server flags, behaviour classes, netmodel
  region and reachability assignments, and fault roles as small integer
  codes, for batch counting and mask building.
* **session timers** — one float per peer, used to stage a whole
  population's initial session arrivals before handing them to
  :meth:`~repro.simulation.vectorized.VectorizedEngine.schedule_bulk`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.simulation.population import CLASS_CODES

#: reachability string -> compact code (netmodel-less peers stay at -1)
REACHABILITY_CODES = {"public": 0, "nat": 1, "relayed": 2}


def key_limbs(key: int) -> tuple:
    """Split a 256-bit key into four big-endian uint64 limbs."""
    mask = (1 << 64) - 1
    return (
        (key >> 192) & mask,
        (key >> 128) & mask,
        (key >> 64) & mask,
        key & mask,
    )


class PeerStateArrays:
    """Flat per-peer state, indexed by position in the fabric's peer list."""

    def __init__(self, n: int) -> None:
        self.n = n
        #: (n, 4) big-endian uint64 limbs of each peer's current Kademlia key
        self.kad_limbs = np.zeros((n, 4), dtype=np.uint64)
        #: whether the peer announced /ipfs/kad/1.0.0 at build time
        self.is_server = np.zeros(n, dtype=bool)
        #: behaviour class code (population.CLASS_CODES)
        self.class_codes = np.full(n, -1, dtype=np.int8)
        #: netmodel region (-1 without a netmodel)
        self.region_codes = np.full(n, -1, dtype=np.int16)
        #: reachability code (REACHABILITY_CODES; -1 without a netmodel)
        self.reach_codes = np.full(n, -1, dtype=np.int8)
        #: fault role bitmask: 1 = crashable, 2 = partition minority, 4 = slow
        self.fault_roles = np.zeros(n, dtype=np.int8)
        #: staging area for batched session arrivals (+inf = nothing staged)
        self.session_next = np.full(n, np.inf, dtype=np.float64)

    @classmethod
    def from_network(cls, network) -> "PeerStateArrays":
        """Snapshot the fabric's per-peer state (call after runtimes attach)."""
        peers = network.peers
        state = cls(len(peers))
        for i, peer in enumerate(peers):
            state.set_key(i, peer.current_pid.kad_key())
            state.is_server[i] = peer.profile.is_dht_server
            state.class_codes[i] = CLASS_CODES[peer.profile.peer_class]
            net = peer.net
            if net is not None:
                state.region_codes[i] = net.region
                state.reach_codes[i] = REACHABILITY_CODES.get(net.reachability, -1)
            flt = peer.flt
            if flt is not None:
                role = 0
                if flt.crashable:
                    role |= 1
                if flt.side == 1:
                    role |= 2
                if flt.slow_factor != 1.0:
                    role |= 4
                state.fault_roles[i] = role
        return state

    # -- keyspace ---------------------------------------------------------------

    def set_key(self, index: int, key: int) -> None:
        """(Re)register a peer's Kademlia key (PID rotation updates it)."""
        self.kad_limbs[index] = key_limbs(key)

    def closest_to(
        self, target: int, k: int, candidates: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Indices of the ``k`` peers closest to ``target`` by XOR distance.

        Exact: the limb-wise lexsort orders candidates identically to sorting
        by the 256-bit XOR distance integers (keys are unique, so the order is
        total and no tie-break is needed).  ``candidates`` restricts the
        search to a subset of peer indices (e.g. DHT-Servers only).
        """
        t = np.array(key_limbs(target), dtype=np.uint64)
        if candidates is None:
            limbs = self.kad_limbs
            index_map = None
        else:
            index_map = np.asarray(candidates, dtype=np.intp)
            limbs = self.kad_limbs[index_map]
        x = limbs ^ t  # broadcast XOR per limb
        # lexsort's last key is primary: most-significant limb first.
        order = np.lexsort((x[:, 3], x[:, 2], x[:, 1], x[:, 0]))[:k]
        if index_map is not None:
            order = index_map[order]
        return order.tolist()

    # -- batch counting ---------------------------------------------------------

    def server_indices(self) -> List[int]:
        return np.flatnonzero(self.is_server).tolist()

    def count_by(self, codes: np.ndarray) -> dict:
        """Histogram of a code array: ``{code: count}`` for codes >= 0."""
        values, counts = np.unique(codes[codes >= 0], return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    # -- session timers ---------------------------------------------------------

    def stage_session(self, index: int, time: float) -> None:
        """Stage a peer's next session arrival for batched scheduling."""
        self.session_next[index] = time

    def staged_sessions(self) -> tuple:
        """Consume staged arrivals: (indices, times) in peer-index order."""
        staged = np.flatnonzero(np.isfinite(self.session_next))
        times = self.session_next[staged].tolist()
        self.session_next[staged] = np.inf
        return staged.tolist(), times
