"""Sharded scenario execution: partition the population over sub-simulations.

The vectorized engine buys roughly constant-factor speedups; the road to
million-peer populations is horizontal.  ``engine="sharded"`` splits the
configured population into ``engine_shards`` near-equal, independently-seeded
sub-populations, runs each on its own vectorized fabric (optionally in worker
processes via ``REPRO_BENCH_WORKERS``, reusing the parallel period runner's
fan-out), and merges the per-shard results deterministically in shard order.

Semantics, stated precisely:

* **Deterministic**: the same sharded config produces byte-identical results
  on every run and for every worker count.  Shard ``i`` derives its seed as
  ``seed + 100003 * (i + 1)`` (a prime stride, so shard seed spaces never
  collide with each other or with the base seed's +10/+20/... offsets), and
  the merge walks shards in index order.
* **Not byte-identical to the single-fabric engines**: each shard is a
  self-contained network with its own measurement vantage points, so
  cross-shard connections never form.  The merged result models ``S``
  federated observers of disjoint population slices — throughput scales,
  per-dataset aggregate shapes are preserved, but individual records differ
  from a single fabric of the same size.  The cross-engine equivalence suite
  therefore covers legacy vs vectorized only; sharded mode is pinned by its
  own determinism and merge-correctness tests.
* **No adversaries**: attack scenarios reason about one global keyspace
  (eclipse neighbourhoods, Sybil flooding of specific routing tables), which
  partitioning would silently weaken.  Sharded runs of adversarial configs
  raise instead of producing misleading numbers.

Merge rules (also exercised by tests/test_sharded.py):

* datasets — per label: peer records merged (PID spaces are disjoint across
  shards), connection/change lists concatenated in shard order then stably
  sorted by time, snapshots *summed* per timestamp (every shard polls on the
  same cadence, so the merged snapshot is the federation-wide gauge reading).
* crawls — snapshots concatenated in shard order.
* scalar counters (events processed, flips, content/netmodel/faults stats) —
  summed field-wise; list fields concatenate, dict fields sum per key,
  optional floats take the max non-``None`` value, and ``max_*`` bounds are
  configuration rather than measurement and keep the first shard's value.
* metrics (repro.obs) — every shard retains its complete window series;
  same-index windows combine field-wise in shard order and the merged
  ``metrics.jsonl`` is written once after the merge, so the streaming series
  is byte-identical for every worker count.
* spans (repro.obs.spans) — per-kind operation counts sum, kept traces
  concatenate in shard order under a re-applied retention cap, and the
  merged ``traces.jsonl`` is written once after the merge — byte-identical
  for every worker count.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, TypeVar

from repro.core.records import MeasurementDataset, PeerRecord
from repro.crawler.monitor import CrawlMonitor
from repro.simulation.population import Population

#: prime seed stride between shards; large enough that the per-subsystem
#: +10..+80 offsets of neighbouring shards can never overlap
SHARD_SEED_STRIDE = 100003

T = TypeVar("T")


def shard_sizes(n_peers: int, shards: int) -> List[int]:
    """Near-equal split of ``n_peers`` over ``shards`` (empty shards dropped).

    The first ``n_peers % shards`` shards get one extra peer, so sizes differ
    by at most one and the split is a pure function of the two inputs.
    """
    if n_peers < 1:
        raise ValueError(f"n_peers must be >= 1, got {n_peers}")
    shards = min(shards, n_peers)
    base, extra = divmod(n_peers, shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]


def shard_seed(base_seed: int, shard: int) -> int:
    return base_seed + SHARD_SEED_STRIDE * (shard + 1)


def shard_configs(config) -> List:
    """Build the per-shard single-fabric configs for a sharded scenario."""
    from repro.simulation.scenario import ScenarioConfig  # circular-import guard

    assert isinstance(config, ScenarioConfig)
    if config.population.adversary is not None:
        raise ValueError(
            "sharded scenarios do not support adversaries: attacks target one "
            "global keyspace, which partitioning would silently weaken; run "
            "adversarial configs on engine='vectorized' or 'legacy'"
        )
    sizes = shard_sizes(config.population.n_peers, config.engine_shards)
    obs = config.population.obs
    if obs is not None:
        # Shards must not race for the shared JSONL file; each shard instead
        # retains its complete window series in memory, and the merged series
        # is written once by run_sharded_scenario.
        obs = dataclasses.replace(obs, jsonl_path=None, retain_windows=True)
    trace = config.population.trace
    if trace is not None:
        # Same discipline as metrics: shards keep their traces in memory and
        # the merged traces.jsonl is written once by run_sharded_scenario.
        trace = dataclasses.replace(trace, jsonl_path=None)
    configs = []
    for index, size in enumerate(sizes):
        seed = shard_seed(config.seed, index)
        population = dataclasses.replace(config.population, n_peers=size, seed=seed)
        if obs is not None:
            population = dataclasses.replace(population, obs=obs)
        if trace is not None:
            population = dataclasses.replace(population, trace=trace)
        configs.append(
            dataclasses.replace(
                config,
                engine="vectorized",
                seed=seed,
                # NetModelRuntime/FaultRuntime seed from population.config.seed,
                # so the population seed must be derived per shard as well.
                population=population,
            )
        )
    return configs


#: connection-id range width per shard; far above any per-shard connection count
SHARD_CONNECTION_ID_STRIDE = 1_000_000_000


def run_shard(config, shard_index: int) -> "ScenarioResult":  # noqa: F821
    """Run one shard; module-level so worker processes can import it by name.

    Connection ids come from a process-global counter, so without a reset the
    sequential path would number shard 1's connections after shard 0's while
    the process-pool path (fresh interpreter per worker) restarts at 1 —
    breaking worker-count invariance.  Each shard instead claims its own
    billion-wide id range, which is deterministic under any execution order
    and keeps ids unique across the merged result.
    """
    import itertools

    import repro.libp2p.connection as connection_module
    from repro.simulation.scenario import Scenario

    connection_module._connection_ids = itertools.count(
        1 + shard_index * SHARD_CONNECTION_ID_STRIDE
    )
    return Scenario(config).run()


def run_sharded_scenario(config, workers: Optional[int] = None):
    """Run ``config`` partitioned over shards and merge the results.

    ``workers=None`` reads ``REPRO_BENCH_WORKERS`` (default sequential);
    the worker count never changes the merged result, only wall time.
    """
    from repro.experiments.runner import run_cells
    from repro.simulation.scenario import ScenarioResult

    configs = shard_configs(config)
    results: List[ScenarioResult] = run_cells(
        run_shard, [(cfg, index) for index, cfg in enumerate(configs)], workers=workers
    )
    merged = merge_shard_results(config, results)
    obs = config.population.obs
    if obs is not None and merged.metrics is not None:
        from repro.obs.hub import ring_tail, write_jsonl

        if obs.jsonl_path is not None:
            write_jsonl(merged.metrics.windows, obs.jsonl_path)
        if not obs.retain_windows:
            # The shards retained every window for the merge; bound the
            # in-memory view back to what the caller's config asked for.
            merged.metrics = ring_tail(merged.metrics, obs.ring_capacity)
    trace = config.population.trace
    if trace is not None and merged.spans is not None and trace.jsonl_path is not None:
        from repro.obs.trace_export import write_traces

        write_traces(merged.spans.traces, trace.jsonl_path)
    return merged


# -- merging ---------------------------------------------------------------------------


def merge_shard_results(config, results: Sequence) -> "ScenarioResult":  # noqa: F821
    from repro.simulation.scenario import ScenarioResult

    if not results:
        raise ValueError("cannot merge zero shard results")
    labels: List[str] = []
    for result in results:
        for label in result.datasets:
            if label not in labels:
                labels.append(label)
    datasets = {
        label: merge_datasets(
            [r.datasets[label] for r in results if label in r.datasets], label
        )
        for label in labels
    }
    crawls = CrawlMonitor()
    for result in results:
        crawls.snapshots.extend(result.crawls.snapshots)
    population = Population(
        config=config.population,
        profiles=[p for r in results for p in r.population.profiles],
    )
    return ScenarioResult(
        config=config,
        datasets=datasets,
        crawls=crawls,
        population=population,
        events_processed=sum(r.events_processed for r in results),
        version_changes=sum(r.version_changes for r in results),
        role_flips=sum(r.role_flips for r in results),
        autonat_flips=sum(r.autonat_flips for r in results),
        content=merge_stats([r.content for r in results]),
        adversary=None,
        netmodel=merge_stats([r.netmodel for r in results]),
        faults=merge_stats([r.faults for r in results]),
        bandwidth=merge_stats([r.bandwidth for r in results]),
        metrics=_merge_metrics([r.metrics for r in results]),
        spans=_merge_spans([r.spans for r in results]),
        # Keyspace positions are per-fabric; report the first shard's vantage
        # points (analyses needing all of them can rerun shard_configs()).
        identity_keys=dict(results[0].identity_keys),
    )


def _merge_metrics(metrics: Sequence) -> Optional["MetricsSummary"]:  # noqa: F821
    """Merge per-shard window series (same-index windows combine field-wise
    in shard order; see :func:`repro.obs.hub.merge_summaries`)."""
    present = [m for m in metrics if m is not None]
    if not present:
        return None
    from repro.obs.hub import merge_summaries

    return merge_summaries(present)


def _merge_spans(spans: Sequence) -> Optional["TraceSummary"]:  # noqa: F821
    """Merge per-shard trace summaries (traces concatenate in shard order and
    the retention cap is re-applied; see
    :func:`repro.obs.trace_export.merge_trace_summaries`)."""
    present = [s for s in spans if s is not None]
    if not present:
        return None
    from repro.obs.trace_export import merge_trace_summaries

    return merge_trace_summaries(present)


def merge_datasets(shards: Sequence[MeasurementDataset], label: str) -> MeasurementDataset:
    """Merge the same-label dataset of every shard into one federation view."""
    if not shards:
        raise ValueError(f"no shard produced dataset {label!r}")
    merged = MeasurementDataset(
        label=label,
        started_at=min(d.started_at for d in shards),
        ended_at=max(d.ended_at for d in shards),
        measurement_role=shards[0].measurement_role,
    )
    snapshot_order: List[float] = []
    snapshot_sums: Dict[float, List[int]] = {}
    for dataset in shards:
        for record in dataset.peers.values():
            # Round-trip through the dict form so shard records stay unshared,
            # exactly like MeasurementDataset.union does.
            merged.merge_peer(PeerRecord.from_dict(record.as_dict()))
        merged.connections.extend(dataset.connections)
        merged.changes.extend(dataset.changes)
        for snap in dataset.snapshots:
            if snap.timestamp not in snapshot_sums:
                snapshot_order.append(snap.timestamp)
                snapshot_sums[snap.timestamp] = [0, 0, 0]
            totals = snapshot_sums[snap.timestamp]
            totals[0] += snap.simultaneous_connections
            totals[1] += snap.known_pids
            totals[2] += snap.connected_pids
    merged.connections.sort(key=lambda c: c.opened_at)
    merged.changes.sort(key=lambda c: c.timestamp)
    snapshot_cls = type(shards[0].snapshots[0]) if shards[0].snapshots else None
    if snapshot_cls is None:
        for dataset in shards[1:]:
            if dataset.snapshots:
                snapshot_cls = type(dataset.snapshots[0])
                break
    if snapshot_cls is not None:
        merged.snapshots = [
            snapshot_cls(
                timestamp=ts,
                simultaneous_connections=snapshot_sums[ts][0],
                known_pids=snapshot_sums[ts][1],
                connected_pids=snapshot_sums[ts][2],
            )
            for ts in sorted(snapshot_order)
        ]
    return merged


#: dataclass fields that are configured bounds, not measurements — first wins
_BOUND_FIELDS = frozenset(
    {"max_rtt_samples", "max_events", "max_transfer_samples", "max_utilization_samples"}
)


def merge_stats(stats: Sequence[Optional[T]]) -> Optional[T]:
    """Field-wise merge of per-shard stats dataclasses.

    ints/floats sum, lists concatenate, dicts sum per key, ``Optional[float]``
    takes the max non-``None`` value, and ``max_*`` bounds keep the first
    shard's value.  ``None`` entries (subsystem absent on that shard) are
    skipped; all-``None`` merges to ``None``.
    """
    present = [s for s in stats if s is not None]
    if not present:
        return None
    cls = type(present[0])
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"cannot merge non-dataclass stats {cls.__name__}")
    merged_kwargs = {}
    for field_info in dataclasses.fields(cls):
        name = field_info.name
        values = [getattr(s, name) for s in present]
        first = values[0]
        if name in _BOUND_FIELDS:
            merged_kwargs[name] = first
        elif "Optional" in str(field_info.type) or any(v is None for v in values):
            # Optional measurements (e.g. partition heal time): the merged
            # value is the latest over shards where the event happened at all.
            non_null = [v for v in values if v is not None]
            merged_kwargs[name] = max(non_null) if non_null else None
        elif isinstance(first, bool):
            merged_kwargs[name] = any(values)
        elif isinstance(first, (int, float)):
            merged_kwargs[name] = sum(values)
        elif isinstance(first, list):
            merged_kwargs[name] = [item for value in values for item in value]
        elif isinstance(first, set):
            merged_kwargs[name] = set().union(*values)
        elif isinstance(first, dict):
            combined: Dict = {}
            for value in values:
                for key, count in value.items():
                    combined[key] = combined.get(key, 0) + count
            merged_kwargs[name] = combined
        else:
            raise TypeError(
                f"no merge rule for field {cls.__name__}.{name} of type "
                f"{type(first).__name__}"
            )
    return cls(**merged_kwargs)
