"""The unified fabric-runtime protocol.

Three optional subsystems ride the simulated fabric — network conditions
(:mod:`repro.netmodel`), fault injection (:mod:`repro.faults`), and the
data-plane bandwidth model (:mod:`repro.bandwidth`).  Before this protocol
existed each one occupied its own attribute slot on
:class:`~repro.simulation.network.SimulatedNetwork` and every RPC path
repeated a per-subsystem ``if x is not None`` ladder.  Now each subsystem is
a :class:`FabricRuntime`: the network keeps them in one ordered
``runtimes`` list and dispatches every hook point through that list, so
adding a subsystem means implementing the hooks — not editing the fabric.

The hook surface, in fabric call order:

* :meth:`assign_peer` — one per-peer assignment drawn at construction time,
  in peer-index order, stored on the ``SimPeer`` attribute named by
  :attr:`slot`.  Each runtime draws from its **own** salted RNG stream with a
  fixed draw count per peer, so streams are pure functions of the assignment
  order and attaching one subsystem never shifts another's draws.
* :meth:`assign_identity` — measurement identities (vantage points), at the
  top of ``start()``.
* :meth:`install` — schedule the runtime's own processes (crash timers,
  partitions), at the bottom of ``start()``.
* :meth:`on_contact` / :meth:`note_contact_made` — a peer's inbound contact
  of a vantage point: veto-with-retry before the connection, notification
  after.
* :meth:`on_dial` — a vantage point's outbound dial of a peer (veto).
* :meth:`on_rpc` / :meth:`on_timed_rpc` — one DHT RPC against a simulated
  peer, without / with a :class:`~repro.netmodel.runtime.WalkClock` accruing
  simulated wire time.
* :meth:`identify_delay` — extra seconds an identify exchange spends on the
  wire (RTT, payload serialization); rides the existing event heap.
* :meth:`on_identify_delivered` — an identify record actually reached a
  vantage point (initial exchange or identify-push); pure notification.

Hooks receive ``SimPeer`` objects and read their own slot
(``peer.net`` / ``peer.flt`` / ``peer.link``); a ``None`` source peer stands
for a measurement identity or the crawler baseline.  Every hook has a
behaviour-neutral default, so a runtime only overrides what it models —
and the dispatch loops in ``network.py`` stay byte-identical to the old
per-subsystem ``if`` ladders when the same subsystems are attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netmodel.runtime import WalkClock
    from repro.simulation.network import SimPeer, SimulatedNetwork
    from repro.simulation.population import PeerProfile


class FabricRuntime:
    """Base class of the pluggable fabric subsystems.

    Subclasses set :attr:`slot` (the ``SimPeer`` attribute their per-peer
    assignment lands on) and :attr:`name` (the ``SimulatedNetwork`` attribute
    the runtime is also exposed under, for analysis/report code that asks for
    one subsystem by name).
    """

    #: SimPeer attribute holding this runtime's per-peer assignment
    slot: str = ""
    #: SimulatedNetwork attribute this runtime is exposed under
    name: str = ""

    # -- assignment (construction time, deterministic in peer order) ---------------

    def assign_peer(self, profile: Optional["PeerProfile"] = None, **kwargs):
        """Draw one peer's assignment; called in peer-index order."""
        raise NotImplementedError

    def assign_identity(self, label: str) -> None:
        """Assign a measurement identity (vantage point); default: nothing."""

    def install(self, network: "SimulatedNetwork", duration: float) -> None:
        """Schedule the runtime's own processes; default: none."""

    # -- contact / dial hooks --------------------------------------------------------

    def on_contact(self, peer: "SimPeer") -> Optional[float]:
        """Veto a peer's contact of a vantage point.

        Returns ``None`` to let the contact proceed, or a retry delay in
        seconds — the fabric reschedules the attempt and asks again.
        """
        return None

    def note_contact_made(self, peer: "SimPeer") -> None:
        """A peer reached a vantage point (inbound or outbound); default: ignore."""

    def on_dial(self, peer: "SimPeer") -> bool:
        """Whether a vantage point's outbound dial of ``peer`` succeeds."""
        return True

    # -- RPC hooks -------------------------------------------------------------------

    def on_rpc(self, src: Optional["SimPeer"], dst: "SimPeer") -> bool:
        """Whether one DHT RPC from ``src`` (``None``: a vantage point or the
        crawler) reaches ``dst`` and its reply makes it back."""
        return True

    def on_timed_rpc(
        self, clock: "WalkClock", src: Optional["SimPeer"], dst: "SimPeer"
    ) -> bool:
        """Like :meth:`on_rpc`, for RPCs accruing wire time on ``clock``."""
        return self.on_rpc(src, dst)

    # -- identify --------------------------------------------------------------------

    def identify_delay(self, label: str, peer: "SimPeer") -> float:
        """Extra seconds the identify exchange with ``peer`` spends on the
        wire (added to the scheduled delivery's event-heap delay)."""
        return 0.0

    def on_identify_delivered(self, label: str, peer: "SimPeer") -> None:
        """An identify record from ``peer`` reached the identity labelled
        ``label`` (initial exchange or identify-push); default: ignore."""
