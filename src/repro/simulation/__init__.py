"""Discrete-event simulation of the IPFS network.

The paper measures the live IPFS network; this package provides the synthetic
stand-in: a deterministic, seedable discrete-event simulation of a peer
population whose composition and dynamics are calibrated to the values the
paper reports (see ``repro.experiments.paper_values``).  The passive
measurement nodes (go-ipfs, hydra-booster), the active crawler baseline, and
the remote peers all run against the same simulated clock.
"""

from repro.simulation.engine import Engine, Event
from repro.simulation.churn_models import (
    ChurnModel,
    DiurnalChurnModel,
    ExponentialDistribution,
    FixedDistribution,
    FlashCrowdChurnModel,
    LogNormalDistribution,
    MassOutageChurnModel,
    ParetoDistribution,
    SessionModel,
    TraceReplayChurnModel,
    UniformDistribution,
    WeibullDistribution,
    pareto_session,
)
from repro.simulation.agents import AgentCatalog, GoIpfsVersion, parse_goipfs_agent
from repro.simulation.population import (
    ChurnModelFactory,
    PeerClass,
    PeerProfile,
    Population,
    PopulationConfig,
    default_session_model,
    generate_population,
)
from repro.simulation.network import SimulatedNetwork, MeasurementIdentity
from repro.simulation.scenario import Scenario, ScenarioConfig, ScenarioResult

__all__ = [
    "Engine",
    "Event",
    "ChurnModel",
    "ChurnModelFactory",
    "DiurnalChurnModel",
    "ExponentialDistribution",
    "FixedDistribution",
    "FlashCrowdChurnModel",
    "LogNormalDistribution",
    "MassOutageChurnModel",
    "ParetoDistribution",
    "TraceReplayChurnModel",
    "UniformDistribution",
    "WeibullDistribution",
    "SessionModel",
    "pareto_session",
    "AgentCatalog",
    "GoIpfsVersion",
    "parse_goipfs_agent",
    "PeerClass",
    "PeerProfile",
    "Population",
    "PopulationConfig",
    "default_session_model",
    "generate_population",
    "SimulatedNetwork",
    "MeasurementIdentity",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
]
