"""Discrete-event simulation of the IPFS network.

The paper measures the live IPFS network; this package provides the synthetic
stand-in: a deterministic, seedable discrete-event simulation of a peer
population whose composition and dynamics are calibrated to the values the
paper reports (see ``repro.experiments.paper_values``).  The passive
measurement nodes (go-ipfs, hydra-booster), the active crawler baseline, and
the remote peers all run against the same simulated clock.
"""

from repro.simulation.engine import Engine, Event
from repro.simulation.churn_models import (
    ExponentialDistribution,
    FixedDistribution,
    LogNormalDistribution,
    ParetoDistribution,
    SessionModel,
    UniformDistribution,
    WeibullDistribution,
)
from repro.simulation.agents import AgentCatalog, GoIpfsVersion, parse_goipfs_agent
from repro.simulation.population import (
    PeerClass,
    PeerProfile,
    Population,
    PopulationConfig,
    generate_population,
)
from repro.simulation.network import SimulatedNetwork, MeasurementIdentity
from repro.simulation.scenario import Scenario, ScenarioConfig, ScenarioResult

__all__ = [
    "Engine",
    "Event",
    "ExponentialDistribution",
    "FixedDistribution",
    "LogNormalDistribution",
    "ParetoDistribution",
    "UniformDistribution",
    "WeibullDistribution",
    "SessionModel",
    "AgentCatalog",
    "GoIpfsVersion",
    "parse_goipfs_agent",
    "PeerClass",
    "PeerProfile",
    "Population",
    "PopulationConfig",
    "generate_population",
    "SimulatedNetwork",
    "MeasurementIdentity",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
]
