"""The simulated IPFS network fabric.

This module wires the synthetic population to the measurement identities
(go-ipfs node, hydra heads) on top of the discrete-event engine:

* **sessions** — peers come online and go offline according to their ground
  truth session model; one-time peers appear once, spread over the whole
  measurement window.
* **contacts** — while online, a peer eventually discovers each measurement
  identity (faster when the identity is a DHT-Server, fastest when the peer
  sits in the identity's Kademlia neighbourhood) and opens a connection.
* **connection lifetime** — a connection ends because the remote trims it
  (default go-ipfs watermarks at the remote), the remote goes offline, our own
  connection manager trims it, a short protocol exchange finishes (crawlers),
  or the measurement ends.  These close reasons are exactly the churn sources
  the paper discusses in Section IV.A.
* **identify** — after connecting, peers exchange identify records (agent,
  protocols, addresses); meta-data behaviours push updates later.
* **DHT queries** — online DHT-Servers answer FIND_NODE queries from their
  routing tables, which is what the active crawler baseline walks.
* **malicious response paths** — a peer carrying an attacker behaviour
  (:mod:`repro.adversary`) intercepts the three DHT RPCs before the honest
  implementation runs: poisoned or dropped FIND_NODE / GET_PROVIDERS replies
  and black-holed ADD_PROVIDER stores.  Without an adversary installed the
  hooks are dormant ``None`` checks, so honest runs are byte-identical.
* **network conditions** — with a :mod:`repro.netmodel` attached, every peer
  carries a region/reachability assignment: DHT RPCs against NATed peers fail
  like real dials do (the crawler-undercount mechanism), identify deliveries
  are delayed by the inter-region RTT (the delay rides the existing event
  heap), and iterative walks accrue simulated latency on a
  :class:`~repro.netmodel.runtime.WalkClock` with a give-up budget.  Without
  a netmodel the hooks are dormant ``None`` checks, so idealised runs are
  byte-identical.
* **fault injection** — with :mod:`repro.faults` attached, RPCs can be lost
  or duplicated on the wire, peers crash abruptly (dirty state: records and
  ledgers left behind, unlike graceful churn) and restart, a scheduled
  partition cuts a minority share off from every vantage point until it
  heals, and slow nodes burn walk budgets with RTT spikes.  Resilience rides
  along: retry/backoff on walks and Bitswap, republish after crash recovery.
  Without a fault config the hooks are dormant ``None`` checks, so clean
  runs are byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.ipfs.bitswap import BitswapEngine
from repro.kademlia.keys import key_for_peer, xor_distance
from repro.kademlia.provider_store import ProviderStore
from repro.kademlia.routing_table import RoutingTable
from repro.libp2p.connection import CloseReason, Connection
from repro.libp2p.identify import IdentifyRecord
from repro.libp2p.multiaddr import Multiaddr, addresses_for_peer
from repro.libp2p.peer_id import PeerId
from repro.libp2p.protocols import AUTONAT, KAD_DHT
from repro.core.measurement import PassiveMeasurement
from repro.faults.runtime import FaultRuntime
from repro.netmodel.runtime import NetModelRuntime, WalkClock
from repro.simulation.churn_models import HOUR, MINUTE
from repro.simulation.engine import Engine, PeriodicTask
from repro.simulation.fabric import FabricRuntime
from repro.simulation.peerstate import PeerStateArrays
from repro.simulation.population import PeerClass, PeerProfile, Population


@dataclass
class NetworkConfig:
    """Tunables of the network fabric (not of the population)."""

    #: remote peers' grace period + mean additional delay before they trim a
    #: connection they do not value (defaults mimic go-ipfs 20 s grace plus a
    #: trim cycle hitting within a couple of minutes).
    remote_grace: float = 20.0
    remote_trim_mean: float = 70.0
    #: how strongly a DHT-Client measurement node is discovered less often
    client_discovery_penalty: float = 10.0
    #: probability that a peer ever bothers contacting a DHT-Client vantage point
    client_contact_probability: float = 0.15
    #: how much less a remote values a connection to a DHT-Client vantage point
    client_keep_factor: float = 0.04
    #: size of a measurement identity's Kademlia neighbourhood (fast discovery)
    neighborhood_size: int = 30
    neighborhood_delay_max: float = 15 * MINUTE
    #: measurement node's own periodic maintenance
    identity_tick_interval: float = 60.0
    outbound_dial_interval: float = 300.0
    outbound_dial_batch: int = 3
    #: probability that an identify exchange completes on a new connection
    identify_success: float = 0.97
    #: share of one-time peers that reconnect once after losing their connection
    one_time_reconnect_probability: float = 0.3
    #: routing-table bootstrap sample per simulated DHT-Server
    routing_table_sample: int = 120
    #: entries pointing at peers offline for longer than this are not returned
    routing_entry_expiry: float = 2 * HOUR
    #: interval between crawl contacts of crawler-like peers
    crawler_contact_interval: float = 8 * HOUR
    crawler_probe_duration: tuple = (10.0, 60.0)


class SimPeer:
    """Runtime state of one simulated remote peer."""

    __slots__ = (
        "profile",
        "rng",
        "current_pid",
        "all_pids",
        "online",
        "sessions_started",
        "connections",
        "kad_announced",
        "autonat_announced",
        "agent",
        "routing_table",
        "last_online_at",
        "addrs",
        "_dial_addr",
        "provider_store",
        "bitswap",
        "attacker",
        "obs",
        "trc",
        "net",
        "flt",
        "link",
        "_identify_cache",
    )

    def __init__(self, profile: PeerProfile, rng: random.Random) -> None:
        self.profile = profile
        self.rng = rng
        self.current_pid = PeerId.random(rng)
        self.all_pids: Set[PeerId] = {self.current_pid}
        self.online = False
        self.sessions_started = 0
        #: label -> open Connection at the corresponding measurement identity
        self.connections: Dict[str, Connection] = {}
        self.kad_announced = profile.is_dht_server
        self.autonat_announced = AUTONAT in profile.protocols
        self.agent = profile.agent
        self.routing_table: Optional[RoutingTable] = None
        #: content-routing state, created lazily when a workload touches the
        #: peer (scenarios without content routing never allocate either)
        self.provider_store: Optional[ProviderStore] = None
        self.bitswap: Optional[BitswapEngine] = None
        #: malicious response behaviour (repro.adversary), None for honest peers
        self.attacker = None
        #: observability assignment (repro.obs), always None — the metrics
        #: runtime keeps no per-peer state, the slot just satisfies the
        #: fabric-runtime assignment pass
        self.obs = None
        #: span-tracing assignment (repro.obs.spans), always None — like obs,
        #: the tracer keeps no per-peer state
        self.trc = None
        #: network conditions (repro.netmodel), None on the idealised fabric
        self.net = None
        #: fault assignment (repro.faults), None on the fault-free fabric
        self.flt = None
        #: bandwidth link (repro.bandwidth), None on the zero-size fabric
        self.link = None
        #: memoised identify record, keyed on the mutable fields it depends on
        self._identify_cache: Optional[tuple] = None
        self.last_online_at = float("-inf")
        self.addrs: List[Multiaddr] = addresses_for_peer(
            profile.public_ip, rng, behind_nat=profile.behind_nat
        )
        # The observed dial address only depends on immutable profile fields;
        # memoised because every contact/outbound dial asks for it.
        self._dial_addr = Multiaddr.tcp(
            profile.public_ip, port=4001 + (profile.peer_index % 1000)
        )

    # -- identity ------------------------------------------------------------------

    def rotate_pid(self) -> None:
        self.current_pid = PeerId.random(self.rng)
        self.all_pids.add(self.current_pid)
        if self.routing_table is not None:
            self.routing_table = RoutingTable(self.current_pid)

    def dial_addr(self) -> Multiaddr:
        """The multiaddr the measurement node observes for this peer's connections."""
        return self._dial_addr

    def ensure_provider_store(self, ttl: float) -> ProviderStore:
        """The peer's provider-record store, created on first use."""
        if self.provider_store is None:
            self.provider_store = ProviderStore(ttl=ttl)
        return self.provider_store

    def ensure_bitswap(self) -> BitswapEngine:
        """The peer's Bitswap engine, created on first use."""
        if self.bitswap is None:
            self.bitswap = BitswapEngine()
        return self.bitswap

    def identify_record(self) -> IdentifyRecord:
        # The record is a pure function of (agent, kad, autonat) plus the
        # immutable profile protocols and addresses; identify deliveries are a
        # hot path, so the frozen record is memoised until a behaviour flips
        # one of those fields.  Consumers treat records as immutable (the
        # dataclass is frozen), so sharing one instance is safe.
        key = (self.agent, self.kad_announced, self.autonat_announced)
        cached = self._identify_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        protocols = set(self.profile.protocols)
        if self.kad_announced:
            protocols.add(KAD_DHT)
        else:
            protocols.discard(KAD_DHT)
        if self.autonat_announced:
            protocols.add(AUTONAT)
        else:
            protocols.discard(AUTONAT)
        record = IdentifyRecord.make(
            agent_version=self.agent,
            protocols=protocols,
            listen_addrs=self.addrs,
        )
        self._identify_cache = (key, record)
        return record

    @property
    def is_dht_server(self) -> bool:
        return self.kad_announced


class MeasurementIdentity:
    """One passive vantage point (a go-ipfs node or a single hydra head)."""

    def __init__(
        self,
        label: str,
        node,
        poll_interval: float = 30.0,
        is_dht_server: Optional[bool] = None,
    ) -> None:
        self.label = label
        self.node = node
        self.poll_interval = poll_interval
        if is_dht_server is None:
            is_dht_server = bool(getattr(node, "is_dht_server", True))
        self.is_dht_server = is_dht_server
        role = "server" if is_dht_server else "client"
        self.measurement = PassiveMeasurement(
            node, label, measurement_role=role, poll_interval=poll_interval
        )
        self.neighborhood: Set[PeerId] = set()

    @property
    def peer_id(self) -> PeerId:
        return self.node.peer_id


class SimulatedNetwork:
    """Glue between population, measurement identities, and the event engine."""

    def __init__(
        self,
        engine: Engine,
        population: Population,
        rng: Optional[random.Random] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.engine = engine
        self.population = population
        self.rng = rng or random.Random(population.config.seed + 1)
        self.config = config or NetworkConfig()
        self.identities: List[MeasurementIdentity] = []
        self._identities_by_label: Dict[str, MeasurementIdentity] = {}
        self.peers: List[SimPeer] = [SimPeer(p, self.rng) for p in population]
        self.peers_by_pid: Dict[PeerId, SimPeer] = {p.current_pid: p for p in self.peers}
        #: peers currently online, keyed by peer_index (kept incrementally so
        #: per-tick maintenance never scans the whole population)
        self._online: Dict[int, SimPeer] = {}
        #: peers that ever accepted a provider record (sweep targets)
        self.provider_peers: List[SimPeer] = []
        #: memoised bootstrap candidates (immutable profile predicate)
        self._stable_server_peers: Optional[List[SimPeer]] = None
        #: set by AdversaryBehaviors.install(); observes honest record stores
        self.adversary_monitor = None
        #: the pluggable fabric subsystems, in dispatch order (obs, netmodel,
        #: faults, bandwidth).  Every RPC / dial / contact / identify hook
        #: point walks this list — adding a subsystem means implementing the
        #: :class:`~repro.simulation.fabric.FabricRuntime` hooks, not editing
        #: the fabric.  The named attributes below (``netmodel`` / ``faults``
        #: / ``bandwidth``) expose the same runtimes for analysis and report
        #: code that asks for one subsystem by name.
        self.runtimes: List[FabricRuntime] = []
        #: streaming-metrics runtime; None runs without observability
        self.obs = None
        #: causal span tracer; None runs without tracing
        self.tracer = None
        #: network-conditions runtime; None keeps the idealised fabric
        self.netmodel: Optional[NetModelRuntime] = None
        #: fault-injection runtime; None keeps the fault-free fabric
        self.faults: Optional[FaultRuntime] = None
        #: data-plane bandwidth runtime; None keeps the zero-size fabric
        self.bandwidth = None
        obscfg = population.config.obs
        if obscfg is not None:
            # Attached *first*: the metrics runtime must see every attempt
            # before a sibling's veto ladder can end the dispatch loop early.
            from repro.obs.runtime import MetricsRuntime

            self._attach_runtime(MetricsRuntime(obscfg, engine))
        tracecfg = population.config.trace
        if tracecfg is not None:
            # Deliberately NOT on the runtimes ladder: the tracer never
            # vetoes, charges, or contributes identify delay, so putting it
            # there would add one no-op Python call to every hook dispatch
            # on the fabric.  Recording happens only at the explicitly
            # instrumented call sites below.
            from repro.obs.spans import SpanTracer

            self.tracer = SpanTracer(tracecfg, engine)
        netcfg = population.config.netmodel
        if netcfg is not None:
            self._attach_runtime(NetModelRuntime(netcfg, population.config.seed))
        faultcfg = population.config.faults
        if faultcfg is not None and faultcfg.enabled:
            self._attach_runtime(FaultRuntime(faultcfg, population.config.seed, engine))
        bwcfg = population.config.bandwidth
        if bwcfg is not None:
            from repro.bandwidth.runtime import BandwidthRuntime

            self._attach_runtime(BandwidthRuntime(bwcfg, population.config.seed))
        # Per-runtime peer assignments, each pass over all peers in peer_index
        # order from the runtime's own salted RNG stream — honest draws are
        # untouched either way, and attaching one subsystem never shifts
        # another's stream.
        for runtime in self.runtimes:
            slot = runtime.slot
            for peer in self.peers:
                setattr(peer, slot, runtime.assign_peer(peer.profile))
        #: struct-of-arrays peer state, built at start() on a vectorized
        #: engine (kad-key limbs, role/region/fault codes, session timers)
        self.state: Optional[PeerStateArrays] = None
        self._duration: Optional[float] = None
        self._tasks: List[PeriodicTask] = []
        self._started = False

    # ------------------------------------------------------------------ setup ----

    def _attach_runtime(self, runtime: FabricRuntime) -> None:
        self.runtimes.append(runtime)
        setattr(self, runtime.name, runtime)

    def add_measurement_identity(self, identity: MeasurementIdentity) -> None:
        if self._started:
            raise RuntimeError("identities must be added before start()")
        self.identities.append(identity)
        self._identities_by_label[identity.label] = identity

    def start(self, duration: float) -> None:
        """Schedule every process for a measurement of ``duration`` seconds."""
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        self._duration = duration
        for runtime in self.runtimes:
            for identity in self.identities:
                runtime.assign_identity(identity.label)
        if getattr(self.engine, "vectorized", False):
            self.state = PeerStateArrays.from_network(self)
        self._build_routing_tables()
        self._compute_neighborhoods()
        for identity in self.identities:
            self._tasks.append(
                PeriodicTask(
                    self.engine,
                    identity.poll_interval,
                    lambda now, ident=identity: ident.measurement.poll(now),
                )
            )
            self._tasks.append(
                PeriodicTask(
                    self.engine,
                    self.config.identity_tick_interval,
                    lambda now, ident=identity: self._identity_tick(ident, now),
                )
            )
            self._tasks.append(
                PeriodicTask(
                    self.engine,
                    self.config.outbound_dial_interval,
                    lambda now, ident=identity: self._identity_outbound(ident, now),
                )
            )
        if self.state is not None:
            # Vectorized path: the RNG draws happen in the same per-peer order
            # as the legacy loop, but the resulting arrival times are staged in
            # the session-timer array and handed to schedule_bulk in one batch
            # (contiguous sequence numbers in peer-index order).  Arrival
            # times are continuous draws, so the different sequence-number
            # assignment cannot flip a tie — the equivalence suite pins this.
            for peer in self.peers:
                delay = self._initial_session_delay(peer, duration)
                if delay is not None:
                    self.state.stage_session(
                        peer.profile.peer_index, self.engine.now + delay
                    )
            indices, times = self.state.staged_sessions()
            self.engine.schedule_bulk(
                times, self._session_start, [self.peers[i] for i in indices]
            )
        else:
            for peer in self.peers:
                self._schedule_initial_session(peer, duration)
        for runtime in self.runtimes:
            runtime.install(self, duration)

    def _build_routing_tables(self) -> None:
        """Seed each simulated DHT-Server's routing table with other servers."""
        server_peers = [p for p in self.peers if p.profile.is_dht_server]
        server_pids = [p.current_pid for p in server_peers]
        sample_size = min(self.config.routing_table_sample, max(0, len(server_pids) - 1))
        for peer in server_peers:
            table = RoutingTable(peer.current_pid)
            if sample_size:
                for pid in self.rng.sample(server_pids, sample_size):
                    if pid != peer.current_pid:
                        table.add_peer(pid)
            peer.routing_table = table

    def _compute_neighborhoods(self) -> None:
        """Peers closest to a measurement identity discover it quickly.

        On the vectorized engine the closest-by-XOR selection runs over the
        struct-of-arrays key limbs (broadcast XOR + lexsort); the limb order
        is exactly the 256-bit integer order, so both paths pick the same
        neighbourhood peers.
        """
        if self.state is not None:
            server_positions = self.state.server_indices()
            for identity in self.identities:
                if not identity.is_dht_server or not server_positions:
                    continue
                target = key_for_peer(identity.peer_id)
                closest = self.state.closest_to(
                    target, self.config.neighborhood_size, candidates=server_positions
                )
                identity.neighborhood = {self.peers[i].current_pid for i in closest}
            return
        server_peers = [p for p in self.peers if p.profile.is_dht_server]
        for identity in self.identities:
            if not identity.is_dht_server or not server_peers:
                continue
            target = key_for_peer(identity.peer_id)
            closest = sorted(
                server_peers,
                key=lambda p: xor_distance(key_for_peer(p.current_pid), target),
            )[: self.config.neighborhood_size]
            identity.neighborhood = {p.current_pid for p in closest}

    # --------------------------------------------------------------- sessions ----

    def _initial_session_delay(self, peer: SimPeer, duration: float) -> Optional[float]:
        """Draw a peer's initial arrival; ``None`` means it started right now.

        Shared by the legacy per-peer scheduling loop and the vectorized
        batched path: both perform the identical RNG draws in the identical
        order, and peers whose session starts immediately enter
        :meth:`_session_start_now` inline either way.
        """
        profile = peer.profile
        if profile.peer_class is PeerClass.ONE_TIME:
            # One-time peers appear once, spread over the whole window: this is
            # what makes the number of known PIDs grow continuously (Fig. 6).
            # Churn models may place the appearance themselves (flash crowds
            # concentrate arrivals inside their burst window).
            arrival = getattr(profile.session_model, "arrival_time", None)
            if arrival is not None:
                return arrival(self.rng, duration)
            return self.rng.uniform(0.0, duration * 0.95)
        online, first_change = profile.session_model.initial_state(self.rng)
        if online:
            self._session_start_now(peer, self.engine.now, first_change)
            return None
        return first_change

    def _schedule_initial_session(self, peer: SimPeer, duration: float) -> None:
        delay = self._initial_session_delay(peer, duration)
        if delay is not None:
            self.engine.schedule_drop(delay, self._session_start, peer)

    def _session_start(self, peer: SimPeer) -> None:
        profile = peer.profile
        max_sessions = profile.session_model.max_sessions
        if max_sessions is not None and peer.sessions_started >= max_sessions:
            return
        uptime = profile.session_model.next_uptime(self.rng, self.engine.now)
        self._session_start_now(peer, self.engine.now, uptime)

    def _session_start_now(self, peer: SimPeer, now: float, uptime: float) -> None:
        if peer.online:
            return
        profile = peer.profile
        if peer.sessions_started > 0 and profile.rotates_pid:
            old_pid = peer.current_pid
            peer.rotate_pid()
            self.peers_by_pid[peer.current_pid] = peer
            # keep the old mapping: closed-connection bookkeeping may still look it up
            self.peers_by_pid.setdefault(old_pid, peer)
        peer.online = True
        peer.sessions_started += 1
        peer.last_online_at = now
        self._online[peer.profile.peer_index] = peer
        # The session epoch guards against stale end events: after a crash +
        # restart (repro.faults) the pre-crash session's end must not kill the
        # new session.  Without faults the epoch check never fires.
        self.engine.schedule_drop(uptime, self._session_end, peer, peer.sessions_started)
        for identity in self.identities:
            delay = self._contact_delay(peer, identity)
            if delay is not None:
                self.engine.schedule_drop(delay, self._attempt_contact, peer, identity)

    def _session_end(self, peer: SimPeer, epoch: Optional[int] = None) -> None:
        if not peer.online:
            return
        if epoch is not None and epoch != peer.sessions_started:
            # A crash/restart cycle superseded the session this end event
            # belonged to; the restarted session scheduled its own end.
            return
        now = self.engine.now
        peer.online = False
        peer.last_online_at = now
        self._online.pop(peer.profile.peer_index, None)
        for label, conn in list(peer.connections.items()):
            identity = self._identity_by_label(label)
            if identity is not None and conn.is_open:
                identity.node.close_connection(conn, CloseReason.REMOTE_LEFT, now)
            peer.connections.pop(label, None)
        profile = peer.profile
        max_sessions = profile.session_model.max_sessions
        if max_sessions is not None and peer.sessions_started >= max_sessions:
            return
        downtime = profile.session_model.next_downtime(self.rng, now)
        self.engine.schedule_drop(downtime, self._session_start, peer)

    # ----------------------------------------------------------------- faults ----

    def crash_peer(self, peer: SimPeer) -> None:
        """Abrupt peer death (repro.faults), distinct from graceful churn.

        The peer vanishes mid-session with *dirty* state: provider records it
        stored for others, its own records on remote servers, and Bitswap
        ledgers are all left behind (stale-record fodder for retrievers).  No
        next-session draw happens here — only the fault runtime's restart
        event re-enters the session machinery via :meth:`_session_start`.
        """
        if not peer.online:
            return
        now = self.engine.now
        peer.online = False
        peer.last_online_at = now
        self._online.pop(peer.profile.peer_index, None)
        for label, conn in list(peer.connections.items()):
            identity = self._identity_by_label(label)
            if identity is not None and conn.is_open:
                identity.node.close_connection(conn, CloseReason.REMOTE_LEFT, now)
            peer.connections.pop(label, None)

    def sever_connections(self, peer: SimPeer) -> int:
        """Cut every open measurement connection of ``peer`` (partition onset).

        The peer stays online on its own side of the split; returns how many
        open connections were severed.
        """
        severed = 0
        now = self.engine.now
        for label, conn in list(peer.connections.items()):
            identity = self._identity_by_label(label)
            if identity is not None and conn.is_open:
                identity.node.close_connection(conn, CloseReason.REMOTE_LEFT, now)
                severed += 1
            peer.connections.pop(label, None)
        return severed

    # --------------------------------------------------------------- contacts ----

    def _identity_by_label(self, label: str) -> Optional[MeasurementIdentity]:
        return self._identities_by_label.get(label)

    def _contact_delay(self, peer: SimPeer, identity: MeasurementIdentity) -> Optional[float]:
        """Time until ``peer`` contacts ``identity`` in this session (None: never)."""
        profile = peer.profile
        if profile.is_crawler:
            # Crawlers probe every DHT-Server on their crawl schedule.
            if not identity.is_dht_server:
                return None
            return self.rng.uniform(0.0, min(self.config.crawler_contact_interval, 2 * HOUR))
        if identity.is_dht_server:
            if peer.current_pid in identity.neighborhood:
                return self.rng.uniform(30.0, self.config.neighborhood_delay_max)
            return self.rng.expovariate(1.0 / profile.discovery_mean)
        # DHT-Client measurement node: nobody actively seeks it.
        if self.rng.random() > self.config.client_contact_probability:
            return None
        return self.rng.expovariate(
            1.0 / (profile.discovery_mean * self.config.client_discovery_penalty)
        )

    def _attempt_contact(self, peer: SimPeer, identity: MeasurementIdentity) -> None:
        now = self.engine.now
        if not peer.online:
            return
        for runtime in self.runtimes:
            retry = runtime.on_contact(peer)
            if retry is not None:
                # A runtime vetoed the contact (e.g. a partition cuts this
                # peer off from every vantage point) and named the retry
                # delay; try again then.
                self.engine.schedule_drop(retry, self._attempt_contact, peer, identity)
                return
        if identity.label in peer.connections and peer.connections[identity.label].is_open:
            return
        conn = identity.node.handle_inbound_connection(peer.current_pid, peer.dial_addr(), now)
        peer.connections[identity.label] = conn
        self.peers_by_pid[peer.current_pid] = peer
        for runtime in self.runtimes:
            runtime.note_contact_made(peer)
        self._schedule_identify(peer, identity)
        self._plan_connection_end(peer, identity, conn)

    def _schedule_identify(self, peer: SimPeer, identity: MeasurementIdentity) -> None:
        """Roll the identify exchange and schedule its delivery.

        The RNG draws (success roll, base processing delay) are identical
        whether or not the tracer is attached; the tracer only *reads* the
        per-runtime delay contributions while they are summed — identify
        exchanges cannot fail once scheduled, so their sampling gate runs up
        front and unsampled ones record nothing.
        """
        if peer.agent is None or self.rng.random() >= self.config.identify_success:
            return
        base = self.rng.uniform(0.5, 5.0)
        delay = base
        tracer = self.tracer
        if tracer is not None and tracer.begin_identify(
            identity.label, peer.profile.peer_index
        ):
            # Identify is by far the most frequent traced operation, so its
            # whole span tree is recorded in one composite call: collect the
            # per-runtime wire-time contributions (round trips, payload
            # serialization — they ride the same event heap) and hand them
            # over together with the base processing delay.
            parts = []
            for runtime in self.runtimes:
                extra = runtime.identify_delay(identity.label, peer)
                delay += extra
                if extra:
                    parts.append((runtime.name, extra))
            tracer.finish_identify(delay, base, parts, identity.label)
        else:
            for runtime in self.runtimes:
                # Wire time of the identify exchange (round trips, payload
                # serialization) rides the same event heap.
                delay += runtime.identify_delay(identity.label, peer)
        self.engine.schedule_drop(delay, self._deliver_identify, peer, identity)

    def _deliver_identify(self, peer: SimPeer, identity: MeasurementIdentity) -> None:
        conn = peer.connections.get(identity.label)
        if conn is None or not conn.is_open:
            return
        identity.node.receive_identify(peer.current_pid, peer.identify_record(), self.engine.now)
        for runtime in self.runtimes:
            runtime.on_identify_delivered(identity.label, peer)

    def push_identify(self, peer: SimPeer) -> None:
        """Push an updated identify record to every identity the peer is connected to."""
        if peer.agent is None:
            # Peers whose identify exchange never completes cannot push either.
            return
        for label, conn in peer.connections.items():
            if not conn.is_open:
                continue
            identity = self._identity_by_label(label)
            if identity is not None:
                identity.node.receive_identify(
                    peer.current_pid, peer.identify_record(), self.engine.now
                )
                for runtime in self.runtimes:
                    runtime.on_identify_delivered(label, peer)

    def _plan_connection_end(
        self, peer: SimPeer, identity: MeasurementIdentity, conn: Connection
    ) -> None:
        """Decide who will close this connection, and when."""
        profile = peer.profile
        if profile.is_crawler:
            duration = self.rng.uniform(*self.config.crawler_probe_duration)
            self.engine.schedule_drop(
                duration, self._remote_close, peer, identity, conn, CloseReason.PROTOCOL_DONE
            )
            return
        keep_probability = profile.keep_probability
        if not identity.is_dht_server:
            keep_probability *= self.config.client_keep_factor
        if self.rng.random() < keep_probability:
            # The remote values the connection: it survives until the peer goes
            # offline or our own connection manager trims it.
            return
        delay = self.config.remote_grace + self.rng.expovariate(1.0 / self.config.remote_trim_mean)
        self.engine.schedule_drop(
            delay, self._remote_close, peer, identity, conn, CloseReason.REMOTE_TRIM
        )

    def _remote_close(
        self,
        peer: SimPeer,
        identity: MeasurementIdentity,
        conn: Connection,
        reason: CloseReason,
    ) -> None:
        if not conn.is_open:
            return
        if peer.connections.get(identity.label) is not conn:
            return
        identity.node.close_connection(conn, reason, self.engine.now)
        peer.connections.pop(identity.label, None)
        self._maybe_reconnect(peer, identity, reason)

    def _maybe_reconnect(
        self, peer: SimPeer, identity: MeasurementIdentity, reason: CloseReason
    ) -> None:
        if not peer.online:
            return
        profile = peer.profile
        if profile.is_crawler:
            self.engine.schedule_drop(
                self.config.crawler_contact_interval, self._attempt_contact, peer, identity
            )
            return
        if profile.peer_class is PeerClass.ONE_TIME:
            if self.rng.random() > self.config.one_time_reconnect_probability:
                return
        delay = self.rng.expovariate(1.0 / profile.reconnect_mean)
        self.engine.schedule_drop(delay, self._attempt_contact, peer, identity)

    # ----------------------------------------------------- identity maintenance ----

    def _identity_tick(self, identity: MeasurementIdentity, now: float) -> None:
        """Run the identity's connection-manager trim and handle the fallout."""
        victims = identity.node.tick(now)
        for conn in victims:
            peer = self.peers_by_pid.get(conn.remote_peer)
            if peer is None:
                continue
            if peer.connections.get(identity.label) is conn:
                peer.connections.pop(identity.label, None)
            self._maybe_reconnect(peer, identity, CloseReason.LOCAL_TRIM)

    def _identity_outbound(self, identity: MeasurementIdentity, now: float) -> None:
        """The measurement node's own modest outbound dialling (DHT queries,
        Bitswap sessions, routing-table maintenance) toward online peers."""
        # Iterate the online set in peer_index order: identical ordering to a
        # full population scan (peers are built in ascending index order), so
        # the rng.sample draws — and thus the datasets — stay byte-identical.
        dialable = [
            p
            for _, p in sorted(self._online.items())
            if identity.label not in p.connections
        ]
        if not dialable:
            return
        batch = min(self.config.outbound_dial_batch, len(dialable))
        for peer in self.rng.sample(dialable, batch):
            if not all(runtime.on_dial(peer) for runtime in self.runtimes):
                # A runtime vetoed the dial (NAT, partition, ...); the attempt
                # is counted by the vetoing runtime, no connection is recorded.
                continue
            conn = identity.node.dial(peer.current_pid, peer.dial_addr(), now)
            peer.connections[identity.label] = conn
            self.peers_by_pid[peer.current_pid] = peer
            for runtime in self.runtimes:
                runtime.note_contact_made(peer)
            self._schedule_identify(peer, identity)
            # Outbound connections are valued even less by the remote side: we
            # dialled them, they did not ask for us.
            delay = self.config.remote_grace + self.rng.expovariate(
                1.0 / self.config.remote_trim_mean
            )
            keep = peer.profile.keep_probability * 0.35
            if not identity.is_dht_server:
                keep *= self.config.client_keep_factor
            if self.rng.random() < keep:
                continue
            self.engine.schedule_drop(
                delay, self._remote_close, peer, identity, conn, CloseReason.REMOTE_TRIM
            )

    # ------------------------------------------------------------- DHT queries ----

    def dht_query(
        self, remote: PeerId, target: int, count: int, src: Optional[SimPeer] = None
    ) -> Optional[List[PeerId]]:
        """FIND_NODE against a simulated peer (used by the crawler baseline).

        Peers carrying an attacker behaviour may poison, shadow, or drop the
        reply; honest peers answer from their routing table.  Under a
        netmodel, a NATed peer is undialable: the query fails exactly like a
        real crawler's dial does, which is what opens the
        crawler-undercount-vs-passive gap.  Under fault injection, ``src``
        names the querying peer so partitions and link loss apply; ``None``
        is a vantage point / crawler (majority side).
        """
        peer = self.peers_by_pid.get(remote)
        if peer is None or not peer.online or not peer.is_dht_server:
            return None
        tracer = self.tracer
        if tracer is None or not tracer.recording:
            for runtime in self.runtimes:
                if not runtime.on_rpc(src, peer):
                    return None
            return self._answer_find_node(peer, target, count)
        vetoed = self._rpc_vetoed(src, peer)
        if vetoed is not None:
            tracer.rpc("find_node", 0.0, self._veto_outcome(vetoed))
            return None
        reply = self._answer_find_node(peer, target, count)
        tracer.rpc("find_node", 0.0, "ok" if reply is not None else "dropped")
        return reply

    def _rpc_vetoed(self, src: Optional[SimPeer], peer: SimPeer):
        """Dispatch the on_rpc ladder; return the vetoing runtime, if any.

        Only the traced paths pay for remembering *who* vetoed: a netmodel
        veto is an undialable peer (the leaf categorises as ``dial``), any
        other veto died on the wire after dialling.
        """
        for runtime in self.runtimes:
            if not runtime.on_rpc(src, peer):
                return runtime
        return None

    def _veto_outcome(self, vetoed) -> str:
        return "dial_fail" if vetoed is self.netmodel else "lost"

    def _answer_find_node(
        self, peer: SimPeer, target: int, count: int
    ) -> Optional[List[PeerId]]:
        if peer.attacker is not None:
            return peer.attacker.on_find_node(self, peer, target, count)
        return self.honest_find_node(peer, target, count)

    def honest_find_node(
        self, peer: SimPeer, target: int, count: int
    ) -> Optional[List[PeerId]]:
        """The honest FIND_NODE reply of an online DHT-Server."""
        if peer.routing_table is None:
            return []
        now = self.engine.now
        entries = peer.routing_table.closest_peers(target, count * 2)
        fresh: List[PeerId] = []
        for pid in entries:
            entry_peer = self.peers_by_pid.get(pid)
            if entry_peer is None:
                continue
            # Stale entries (peer long offline) have been cleaned from real
            # routing tables; the crawler then no longer sees those nodes.
            offline_for = now - entry_peer.last_online_at
            if not entry_peer.online and offline_for > self.config.routing_entry_expiry:
                continue
            fresh.append(pid)
            if len(fresh) >= count:
                break
        return fresh

    # ----------------------------------------------------------- content routing ----

    def add_provider(
        self,
        remote: PeerId,
        key: int,
        provider: PeerId,
        ttl: float,
        src: Optional[SimPeer] = None,
    ) -> Optional[bool]:
        """ADD_PROVIDER against a simulated peer (None: unreachable)."""
        peer = self.peers_by_pid.get(remote)
        if peer is None or not peer.online or not peer.is_dht_server:
            return None
        tracer = self.tracer
        if tracer is None or not tracer.recording:
            for runtime in self.runtimes:
                if not runtime.on_rpc(src, peer):
                    return None
            return self._answer_add_provider(peer, key, provider, ttl)
        vetoed = self._rpc_vetoed(src, peer)
        if vetoed is not None:
            tracer.rpc("add_provider", 0.0, self._veto_outcome(vetoed))
            return None
        stored = self._answer_add_provider(peer, key, provider, ttl)
        tracer.rpc("add_provider", 0.0, "ok" if stored is not None else "dropped")
        return stored

    def _answer_add_provider(
        self, peer: SimPeer, key: int, provider: PeerId, ttl: float
    ) -> Optional[bool]:
        if peer.attacker is not None:
            return peer.attacker.on_add_provider(self, peer, key, provider, ttl)
        return self.honest_add_provider(peer, key, provider, ttl)

    def honest_add_provider(
        self, peer: SimPeer, key: int, provider: PeerId, ttl: float
    ) -> Optional[bool]:
        """Store a record on an online server (the honest ADD_PROVIDER path)."""
        store = peer.provider_store
        if store is None:
            store = peer.ensure_provider_store(ttl)
            self.provider_peers.append(peer)
        store.add(key, provider, self.engine.now, ttl=ttl)
        if self.adversary_monitor is not None:
            self.adversary_monitor.note_honest_store(key, provider)
        return True

    def get_providers(
        self, remote: PeerId, key: int, count: int = 20, src: Optional[SimPeer] = None
    ) -> Optional[tuple]:
        """GET_PROVIDERS against a simulated peer: (providers, closer peers)."""
        peer = self.peers_by_pid.get(remote)
        if peer is None or not peer.online or not peer.is_dht_server:
            return None
        tracer = self.tracer
        if tracer is None or not tracer.recording:
            for runtime in self.runtimes:
                if not runtime.on_rpc(src, peer):
                    return None
            return self._answer_get_providers(peer, key, count)
        vetoed = self._rpc_vetoed(src, peer)
        if vetoed is not None:
            tracer.rpc("get_providers", 0.0, self._veto_outcome(vetoed))
            return None
        reply = self._answer_get_providers(peer, key, count)
        tracer.rpc("get_providers", 0.0, "ok" if reply is not None else "dropped")
        return reply

    def _answer_get_providers(
        self, peer: SimPeer, key: int, count: int = 20
    ) -> Optional[tuple]:
        if peer.attacker is not None:
            return peer.attacker.on_get_providers(self, peer, key, count)
        return self.honest_get_providers(peer, key, count)

    def honest_get_providers(
        self, peer: SimPeer, key: int, count: int = 20
    ) -> Optional[tuple]:
        """The honest GET_PROVIDERS reply of an online DHT-Server."""
        if peer.provider_store is not None:
            providers = peer.provider_store.providers(key, self.engine.now, limit=count)
        else:
            providers = []
        closer = self.honest_find_node(peer, key, count) or []
        return providers, closer

    # ------------------------------------------------------- timed RPC wrappers ----

    def netmodel_clock(self, peer: SimPeer) -> Optional[WalkClock]:
        """A latency clock for one of ``peer``'s iterative walks (None on the
        idealised fabric — callers fall back to the zero-latency RPCs)."""
        if self.netmodel is None:
            return None
        return self.netmodel.clock(peer.net)

    def _timed_peer(
        self,
        clock: WalkClock,
        remote: PeerId,
        src: Optional[SimPeer] = None,
        kind: str = "find_node",
    ) -> Optional[SimPeer]:
        """Resolve a timed RPC's target and charge the wire time.

        One place for the queryable-peer precondition shared with the untimed
        RPCs plus the clock accounting: a dead/client target answers nothing
        (and costs nothing), a NATed one burns the dial timeout, a reachable
        one is charged a round trip and returned for the ``_answer_*`` path.
        Under fault injection a slow responder additionally burns its RTT
        spike, and a lost/partitioned exchange answers nothing after paying
        the wire time (the caller waited for a reply that never came).

        When an operation is being traced, the RPC becomes a leaf span whose
        duration is the clock delta around this dispatch — leaf durations
        therefore telescope exactly to the walk's accrued latency.
        """
        peer = self.peers_by_pid.get(remote)
        if peer is None or not peer.online or not peer.is_dht_server:
            return None
        tracer = self.tracer
        if tracer is None or not tracer.recording:
            for runtime in self.runtimes:
                if not runtime.on_timed_rpc(clock, src, peer):
                    return None
            return peer
        before = clock.elapsed
        vetoed = None
        for runtime in self.runtimes:
            if not runtime.on_timed_rpc(clock, src, peer):
                vetoed = runtime
                break
        if vetoed is None:
            tracer.rpc(kind, clock.elapsed - before, "ok", rtt=clock.last_rtt)
            return peer
        tracer.rpc(kind, clock.elapsed - before, self._veto_outcome(vetoed))
        return None

    def timed_query_fn(self, clock: WalkClock, src: Optional[SimPeer] = None):
        """A FIND_NODE query function that accrues dial/RTT time on ``clock``."""

        def query(remote: PeerId, target: int, count: int) -> Optional[List[PeerId]]:
            peer = self._timed_peer(clock, remote, src, kind="find_node")
            if peer is None:
                return None
            return self._answer_find_node(peer, target, count)

        return query

    def timed_add_provider_fn(self, clock: WalkClock, ttl: float, src: Optional[SimPeer] = None):
        """An ADD_PROVIDER function that accrues dial/RTT time on ``clock``."""

        def add_provider(remote: PeerId, key: int, provider: PeerId) -> Optional[bool]:
            peer = self._timed_peer(clock, remote, src, kind="add_provider")
            if peer is None:
                return None
            return self._answer_add_provider(peer, key, provider, ttl)

        return add_provider

    def timed_get_providers_fn(
        self, clock: WalkClock, count: int = 20, src: Optional[SimPeer] = None
    ):
        """A GET_PROVIDERS function that accrues dial/RTT time on ``clock``."""

        def get_providers(remote: PeerId, key: int) -> Optional[tuple]:
            peer = self._timed_peer(clock, remote, src, kind="get_providers")
            if peer is None:
                return None
            return self._answer_get_providers(peer, key, count)

        return get_providers

    def sweep_provider_stores(self, now: float) -> int:
        """Expire provider records on every store; returns records dropped."""
        dropped = 0
        for peer in self.provider_peers:
            if peer.provider_store is not None:
                dropped += peer.provider_store.expire(now)
        return dropped

    def provider_record_count(self, now: Optional[float] = None) -> int:
        """Live provider records across the fabric (all records when now=None)."""
        total = 0
        for peer in self.provider_peers:
            store = peer.provider_store
            if store is None:
                continue
            if now is None:
                total += len(store)
            else:
                total += sum(
                    len(store.records_for(key, now)) for key in list(store.keys())
                )
        return total

    def bootstrap_peers(self, count: int = 4) -> List[PeerId]:
        """Well-known entry points for crawls: long-lived online DHT-Servers.

        The candidate set depends only on immutable profile fields, so it is
        computed once; PIDs resolve at call time (stable peers rarely rotate).
        Every content publish/retrieve seeds its lookup here, so this must not
        scan the population per operation.
        """
        if self._stable_server_peers is None:
            stable = [
                p
                for p in self.peers
                if p.profile.peer_class is PeerClass.HEAVY and p.profile.is_dht_server
            ]
            if not stable:
                stable = [p for p in self.peers if p.profile.is_dht_server]
            self._stable_server_peers = stable
        return [p.current_pid for p in self._stable_server_peers[:count]]

    # ------------------------------------------------------------------ stats ----

    def online_count(self) -> int:
        return len(self._online)

    def online_server_count(self) -> int:
        # Scans only the online subset; kad_announced can flip at runtime
        # (role-flip behaviours), so the server property is not cached.  The
        # raw attribute (== is_dht_server) keeps the per-window metrics
        # gauge scan off the property protocol.
        return sum(1 for p in self._online.values() if p.kad_announced)

    def observed_pid_count(self) -> int:
        return sum(len(p.all_pids) for p in self.peers)
