"""The vectorized discrete-event engine.

Same observable semantics as :class:`~repro.simulation.engine.Engine` — the
cross-engine equivalence suite asserts byte-identical scenario results — but
the internals are built for large populations:

* :meth:`VectorizedEngine.schedule_drop` pushes a bare ``(time, seq,
  callback, args)`` tuple onto the heap.  No :class:`Event` object, no
  back-pointer, no cancelled flag: for the fabric's hot paths (session churn,
  contacts, identify deliveries, behaviour ticks — none of which are ever
  cancelled) this removes one allocation and two attribute writes per event.
* :meth:`VectorizedEngine.schedule_bulk` stores a whole batch of homogeneous
  events (e.g. every peer's initial session arrival) as numpy-sorted *timer
  columns* instead of ``n`` individual heap pushes: one ``lexsort`` replaces
  ``n`` ``heappush`` calls.  The drain loop merges the column head with the
  heap head by ``(time, sequence)``, so batched and single events interleave
  exactly as they would on the legacy engine.

Determinism invariant: every schedule call — single, drop, or bulk — consumes
sequence numbers from the *same* global counter in call order.  Two events at
the same timestamp therefore fire in schedule order on both engines, which is
what makes the byte-identity guarantee hold even under timestamp ties.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.simulation.engine import Engine

#: compact the consumed prefix of the timer columns once it exceeds this
_COMPACT_THRESHOLD = 4096


class VectorizedEngine(Engine):
    """Heap + numpy timer columns, drained in exact ``(time, seq)`` order."""

    vectorized = True

    def __init__(self, start_time: float = 0.0) -> None:
        super().__init__(start_time)
        # The consolidated bulk column: parallel lists sorted by (time, seq),
        # consumed front-to-back via _bulk_pos.  Kept as plain python lists
        # after the numpy sort so the drain loop never touches numpy scalars
        # (np.float64 leaking into `now` would poison dataset timestamps).
        self._bulk_times: List[float] = []
        self._bulk_seqs: List[int] = []
        self._bulk_callbacks: List[Optional[Callable[[Any], None]]] = []
        self._bulk_payloads: List[Any] = []
        self._bulk_pos = 0

    # -- scheduling --------------------------------------------------------------

    def schedule_drop(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Allocation-free fire-and-forget scheduling (see base class)."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(
            self._heap,  # type: ignore[arg-type]
            (self._now + delay, next(self._sequence), callback, args),
        )

    def schedule_bulk(
        self,
        times: Sequence[float],
        callback: Callable[[Any], None],
        payloads: Sequence[Any],
    ) -> None:
        """Batch-schedule ``callback(payloads[i])`` at ``times[i]`` (see base class)."""
        n = len(times)
        if n != len(payloads):
            raise ValueError("times and payloads must have equal length")
        if n == 0:
            return
        t_new = np.asarray(times, dtype=np.float64)
        if float(t_new.min()) < self._now:
            raise ValueError(
                f"cannot schedule in the past ({float(t_new.min())} < {self._now})"
            )
        # Contiguous sequence numbers in input order: ties at identical
        # timestamps resolve exactly as n individual schedule_at calls.
        s_new = np.fromiter(
            itertools.islice(self._sequence, n), dtype=np.int64, count=n
        )
        pos = self._bulk_pos
        old_n = len(self._bulk_times) - pos
        if old_n:
            t_all = np.concatenate([np.asarray(self._bulk_times[pos:]), t_new])
            s_all = np.concatenate(
                [np.asarray(self._bulk_seqs[pos:], dtype=np.int64), s_new]
            )
            cb_all = self._bulk_callbacks[pos:] + [callback] * n
            pl_all = self._bulk_payloads[pos:] + list(payloads)
        else:
            t_all, s_all = t_new, s_new
            cb_all = [callback] * n
            pl_all = list(payloads)
        order = np.lexsort((s_all, t_all))
        order_list = order.tolist()
        self._bulk_times = t_all[order].tolist()
        self._bulk_seqs = s_all[order].tolist()
        self._bulk_callbacks = [cb_all[i] for i in order_list]
        self._bulk_payloads = [pl_all[i] for i in order_list]
        self._bulk_pos = 0

    def pending(self) -> int:
        return super().pending() + (len(self._bulk_times) - self._bulk_pos)

    # -- draining ----------------------------------------------------------------

    def _compact_bulk(self) -> None:
        """Drop the consumed column prefix so long runs stay memory-bounded."""
        pos = self._bulk_pos
        if pos == 0:
            return
        del self._bulk_times[:pos]
        del self._bulk_seqs[:pos]
        del self._bulk_callbacks[:pos]
        del self._bulk_payloads[:pos]
        self._bulk_pos = 0

    def _drain(self, end_time: Optional[float]) -> None:
        """Merge-pop the heap and the timer column in (time, seq) order."""
        heap = self._heap
        pop = heapq.heappop
        while True:
            # Re-read the column each iteration: a callback may have called
            # schedule_bulk, which rebinds the column lists.
            bulk_times = self._bulk_times
            has_bulk = self._bulk_pos < len(bulk_times)
            take_bulk = False
            if has_bulk:
                bt = bulk_times[self._bulk_pos]
                if not heap:
                    take_bulk = True
                else:
                    head = heap[0]
                    ht = head[0]
                    if bt < ht or (bt == ht and self._bulk_seqs[self._bulk_pos] < head[1]):
                        take_bulk = True
            elif not heap:
                break

            if take_bulk:
                if end_time is not None and bt > end_time:
                    return
                i = self._bulk_pos
                self._bulk_pos = i + 1
                callback = self._bulk_callbacks[i]
                payload = self._bulk_payloads[i]
                # Release references immediately: a consumed column entry must
                # not pin peers/closures alive for the rest of the run.
                self._bulk_callbacks[i] = None
                self._bulk_payloads[i] = None
                if self._bulk_pos >= _COMPACT_THRESHOLD:
                    self._compact_bulk()
                self._now = bt
                self.events_processed += 1
                callback(payload)
                if self._progress_every and self.events_processed >= self._progress_next:
                    self._emit_progress()
                continue

            time = heap[0][0]
            if end_time is not None and time > end_time:
                return
            entry = pop(heap)
            if len(entry) == 4:
                # schedule_drop fast path: no Event, no cancellation check.
                _, _, callback, args = entry
                self._now = time
                self.events_processed += 1
                callback(*args)
                if self._progress_every and self.events_processed >= self._progress_next:
                    self._emit_progress()
                continue
            event = entry[2]
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            event._engine = None
            self._now = time
            self.events_processed += 1
            event.callback(*event.args)
            if self._progress_every and self.events_processed >= self._progress_next:
                self._emit_progress()
