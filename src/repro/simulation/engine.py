"""A minimal discrete-event simulation engine.

Single-threaded, deterministic, and intentionally boring: a binary heap of
timestamped callbacks.  Simulated time is measured in seconds; scenarios run
for one to fourteen simulated days, which corresponds to the paper's
measurement periods.

The heap holds plain ``(time, sequence, event)`` tuples — tuple comparison
never reaches the event because the sequence number is unique — and the
engine keeps a live count of cancelled-but-still-queued events so
:meth:`Engine.pending` is O(1) instead of scanning the heap.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Sequence, Tuple


class Event:
    """A scheduled callback; cancellation simply marks it dead."""

    __slots__ = ("time", "callback", "args", "cancelled", "_engine")

    def __init__(self, time: float, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine: Optional["Engine"] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            engine._cancelled_pending += 1
            self._engine = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.1f}, {name}, cancelled={self.cancelled})"


class Engine:
    """The event loop: schedule callbacks and advance simulated time.

    Subclasses (the vectorized engine) may store never-cancelled events in
    cheaper structures, but every engine honours the same observable contract:

    * events run in ascending ``(time, sequence)`` order, where the sequence
      number is consumed from one global counter at *schedule* time — two
      events at the same timestamp therefore fire in schedule order;
    * :meth:`run_until` processes events with ``time <= end_time`` and leaves
      ``now == end_time``.  An event sitting exactly at ``end_time`` fires in
      the **first** ``run_until`` call that reaches that boundary and never
      again in a later call (exactly-once boundary semantics — pinned by
      ``tests/test_simulation_engine.py``).
    """

    #: whether this engine batches homogeneous events (numpy timer columns)
    vectorized = False

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        #: cancelled events still sitting in the heap (popped lazily)
        self._cancelled_pending = 0
        self.events_processed = 0
        # Progress hook (repro.obs.trace): when set, the drain loop invokes the
        # callback every `_progress_every` processed events.  The unset cost is
        # one falsy check per event.
        self._progress_callback: Optional[Callable[[float, int, int], None]] = None
        self._progress_every = 0
        self._progress_next = 0

    def set_progress(
        self, callback: Optional[Callable[[float, int, int], None]], every: int = 20_000
    ) -> None:
        """Invoke ``callback(now, events_processed, pending)`` every ``every``
        drained events (run tracing); ``callback=None`` detaches the hook."""
        if callback is None:
            self._progress_callback = None
            self._progress_every = 0
            return
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._progress_callback = callback
        self._progress_every = every
        self._progress_next = self.events_processed + every

    def _emit_progress(self) -> None:
        self._progress_next = self.events_processed + self._progress_every
        self._progress_callback(self._now, self.events_processed, self.pending())

    @property
    def now(self) -> float:
        return self._now

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        event = Event(time, callback, args)
        event._engine = self
        heapq.heappush(self._heap, (time, next(self._sequence), event))
        return event

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_drop(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a fire-and-forget callback after ``delay`` seconds.

        Identical ordering semantics to :meth:`schedule` (one sequence number
        is consumed per call), but the caller receives no handle and the event
        can never be cancelled.  The vectorized engine uses this contract to
        skip the :class:`Event` allocation entirely; the legacy engine simply
        delegates.  Hot paths that never cancel (session churn, contacts,
        identify deliveries, behaviour ticks) should prefer it.
        """
        self.schedule(delay, callback, *args)

    def schedule_bulk(
        self,
        times: Sequence[float],
        callback: Callable[[Any], None],
        payloads: Sequence[Any],
    ) -> None:
        """Schedule ``callback(payloads[i])`` at absolute time ``times[i]`` for all i.

        Sequence numbers are consumed contiguously in input order, so ties at
        identical timestamps resolve exactly as ``len(times)`` individual
        :meth:`schedule_at` calls would.  Bulk events cannot be cancelled.
        The vectorized engine stores the batch as numpy-sorted timer columns
        instead of pushing ``len(times)`` heap entries.
        """
        if len(times) != len(payloads):
            raise ValueError("times and payloads must have equal length")
        for time, payload in zip(times, payloads):
            self.schedule_at(time, callback, payload)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled_pending

    def _drain(self, end_time: Optional[float]) -> None:
        """Process queued events, optionally only those with ``time <= end_time``."""
        heap = self._heap
        pop = heapq.heappop
        while heap and (end_time is None or heap[0][0] <= end_time):
            time, _, event = pop(heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            event._engine = None
            self._now = time
            self.events_processed += 1
            event.callback(*event.args)
            if self._progress_every and self.events_processed >= self._progress_next:
                self._emit_progress()

    def run_until(self, end_time: float) -> None:
        """Process events with ``time <= end_time``; leaves ``now == end_time``."""
        if end_time < self._now:
            raise ValueError("end_time precedes current simulated time")
        self._drain(end_time)
        self._now = end_time

    def run(self) -> None:
        """Drain every queued event (useful for small unit-test scenarios)."""
        self._drain(None)


class PeriodicTask:
    """Re-schedules a callback at a fixed interval (peerstore polling, trims).

    The hydra-booster changes in the paper are literally "two new
    PeriodicTasks"; this mirrors that abstraction.
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        callback: Callable[[float], None],
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.interval = interval
        self.callback = callback
        self._stopped = False
        self._event: Optional[Event] = None
        delay = interval if start_delay is None else start_delay
        self._event = engine.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback(self.engine.now)
        if not self._stopped:
            self._event = self.engine.schedule(self.interval, self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
