"""A minimal discrete-event simulation engine.

Single-threaded, deterministic, and intentionally boring: a binary heap of
timestamped callbacks.  Simulated time is measured in seconds; scenarios run
for one to fourteen simulated days, which corresponds to the paper's
measurement periods.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(order=True)
class _HeapEntry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback; cancellation simply marks it dead."""

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.1f}, {name}, cancelled={self.cancelled})"


class Engine:
    """The event loop: schedule callbacks and advance simulated time."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: List[_HeapEntry] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        event = Event(time, callback, args)
        heapq.heappush(self._heap, _HeapEntry(time, next(self._sequence), event))
        return event

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback, *args)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for entry in self._heap if not entry.event.cancelled)

    def run_until(self, end_time: float) -> None:
        """Process events with ``time <= end_time``; leaves ``now == end_time``."""
        if end_time < self._now:
            raise ValueError("end_time precedes current simulated time")
        while self._heap and self._heap[0].time <= end_time:
            entry = heapq.heappop(self._heap)
            event = entry.event
            if event.cancelled:
                continue
            self._now = entry.time
            self.events_processed += 1
            event.callback(*event.args)
        self._now = end_time

    def run(self) -> None:
        """Drain every queued event (useful for small unit-test scenarios)."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self._now = entry.time
            self.events_processed += 1
            entry.event.callback(*entry.event.args)


class PeriodicTask:
    """Re-schedules a callback at a fixed interval (peerstore polling, trims).

    The hydra-booster changes in the paper are literally "two new
    PeriodicTasks"; this mirrors that abstraction.
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        callback: Callable[[float], None],
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.interval = interval
        self.callback = callback
        self._stopped = False
        self._event: Optional[Event] = None
        delay = interval if start_delay is None else start_delay
        self._event = engine.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback(self.engine.now)
        if not self._stopped:
            self._event = self.engine.schedule(self.interval, self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
