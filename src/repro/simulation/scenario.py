"""Scenario wiring: population + measurement nodes + crawler → datasets.

A :class:`Scenario` corresponds to one of the paper's measurement periods: it
deploys the configured passive vantage points (a go-ipfs node and/or a hydra
with several heads), optionally runs the active crawler baseline on its 8 h
cadence, lets the simulated network run for the configured duration, and
returns the measurement datasets plus the ground truth for validation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (bandwidth -> fabric)
    from repro.bandwidth.runtime import BandwidthStats
    from repro.obs.hub import MetricsSummary
    from repro.obs.trace_export import TraceSummary

from repro.adversary.behaviors import AdversaryBehaviors, AttackStats
from repro.core.records import MeasurementDataset
from repro.crawler.crawler import Crawler
from repro.crawler.monitor import DEFAULT_CRAWL_INTERVAL, CrawlMonitor
from repro.faults.runtime import FaultStats
from repro.hydra.hydra import HydraNode
from repro.ipfs.config import IpfsConfig
from repro.ipfs.node import IpfsNode
from repro.netmodel.runtime import NetModelStats
from repro.simulation.behaviors import BehaviorConfig, ContentBehaviors, MetadataBehaviors
from repro.simulation.churn_models import DAY
from repro.simulation.content import ContentRoutingConfig, ContentRoutingStats
from repro.simulation.engine import Engine, PeriodicTask
from repro.simulation.network import (
    MeasurementIdentity,
    NetworkConfig,
    SimulatedNetwork,
)
from repro.simulation.population import Population, PopulationConfig, generate_population

#: recognised values of ``ScenarioConfig.engine``
ENGINE_KINDS = frozenset({"legacy", "vectorized", "sharded"})

#: dataset label of the go-ipfs vantage point
GO_IPFS_LABEL = "go-ipfs"
#: label prefix of hydra heads ("hydra-H0", "hydra-H1", ...)
HYDRA_LABEL_PREFIX = "hydra-H"
#: label of the union-of-heads dataset
HYDRA_UNION_LABEL = "hydra"


@dataclass
class ScenarioConfig:
    """Everything needed to run one measurement period."""

    duration: float = 1 * DAY
    population: PopulationConfig = field(default_factory=PopulationConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    behaviors: BehaviorConfig = field(default_factory=BehaviorConfig)
    #: go-ipfs measurement node configuration; ``None`` deploys no go-ipfs node
    go_ipfs: Optional[IpfsConfig] = field(default_factory=IpfsConfig.defaults)
    #: number of hydra heads; 0 deploys no hydra
    hydra_heads: int = 0
    hydra_low_water: Optional[int] = None
    hydra_high_water: Optional[int] = None
    #: whether to run the active crawler baseline
    run_crawler: bool = False
    crawl_interval: float = DEFAULT_CRAWL_INTERVAL
    #: content-routing workload; ``None`` (the default) schedules none, so
    #: scenarios without one are bit-identical to pre-content builds
    content: Optional[ContentRoutingConfig] = None
    seed: int = 7
    #: event-engine selection: "vectorized" (default — byte-identical to
    #: "legacy", proven by the cross-engine equivalence suite), "legacy"
    #: (the original object-per-event loop), or "sharded" (opt-in: partition
    #: the population over independently-seeded sub-simulations and merge
    #: deterministically; same-seed deterministic but *not* byte-identical
    #: to the single-fabric engines — see repro.simulation.sharded)
    engine: str = "vectorized"
    #: number of population shards when ``engine == "sharded"``
    engine_shards: int = 4

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_KINDS:
            raise ValueError(
                f"engine must be one of {sorted(ENGINE_KINDS)}, got {self.engine!r}"
            )
        if self.engine_shards < 1:
            raise ValueError(f"engine_shards must be >= 1, got {self.engine_shards}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.hydra_heads < 0:
            raise ValueError(f"hydra_heads must be >= 0, got {self.hydra_heads}")
        if self.go_ipfs is None and self.hydra_heads == 0:
            raise ValueError("a scenario needs at least one measurement vantage point")
        if self.hydra_heads > 0:
            low, high = self.hydra_low_water, self.hydra_high_water
            if low is not None and low <= 0:
                raise ValueError(f"hydra_low_water must be positive, got {low}")
            if high is not None and high <= 0:
                raise ValueError(f"hydra_high_water must be positive, got {high}")
            if low is not None and high is not None and high < low:
                raise ValueError(
                    f"hydra watermarks must satisfy low <= high, got {low}/{high}"
                )
        if self.run_crawler and self.crawl_interval <= 0:
            raise ValueError(f"crawl_interval must be positive, got {self.crawl_interval}")


@dataclass
class ScenarioResult:
    """Datasets and ground truth produced by one scenario run."""

    config: ScenarioConfig
    datasets: Dict[str, MeasurementDataset]
    crawls: CrawlMonitor
    population: Population
    events_processed: int
    version_changes: int = 0
    role_flips: int = 0
    autonat_flips: int = 0
    #: content-routing workload outcome (None when the scenario ran none)
    content: Optional[ContentRoutingStats] = None
    #: adversary ground truth (None when the scenario deployed no attackers)
    adversary: Optional[AttackStats] = None
    #: network-conditions ground truth (None on the idealised fabric)
    netmodel: Optional[NetModelStats] = None
    #: fault-injection ground truth (None on the fault-free fabric)
    faults: Optional[FaultStats] = None
    #: data-plane ground truth (None on the zero-size fabric)
    bandwidth: Optional[BandwidthStats] = None
    #: streaming-metrics digest: windowed counters/gauges/histograms plus the
    #: retained window payloads (None when the scenario ran without obs)
    metrics: Optional[MetricsSummary] = None
    #: causal span traces: per-operation trace trees plus per-kind counts
    #: (None when the scenario ran without tracing)
    spans: Optional[TraceSummary] = None
    #: base58 PID per measurement identity label (analysis needs the vantage
    #: point's keyspace position, e.g. for neighbourhood-density estimates)
    identity_keys: Dict[str, str] = field(default_factory=dict)

    def dataset(self, label: str) -> MeasurementDataset:
        return self.datasets[label]

    def go_ipfs(self) -> Optional[MeasurementDataset]:
        return self.datasets.get(GO_IPFS_LABEL)

    def hydra_heads(self) -> List[MeasurementDataset]:
        return [
            self.datasets[label]
            for label in sorted(self.datasets)
            if label.startswith(HYDRA_LABEL_PREFIX)
        ]

    def hydra_union(self) -> Optional[MeasurementDataset]:
        return self.datasets.get(HYDRA_UNION_LABEL)


class Scenario:
    """Builds and runs one simulated measurement period."""

    def __init__(self, config: ScenarioConfig) -> None:
        if config.engine == "sharded":
            raise ValueError(
                "sharded scenarios do not run on a single Scenario; use "
                "run_scenario() (or repro.simulation.sharded.run_sharded_scenario)"
            )
        self.config = config
        self.engine = make_engine(config.engine)
        # REPRO_PROGRESS=1 prints per-simulated-hour liveness lines to stderr
        # (wall-clock data never enters the deterministic artifacts).
        from repro.obs.trace import maybe_trace

        maybe_trace(
            self.engine,
            f"n={config.population.n_peers} seed={config.seed}",
        )
        self.rng = random.Random(config.seed)
        self.population = generate_population(config.population, random.Random(config.seed + 10))
        self.network = SimulatedNetwork(
            self.engine, self.population, random.Random(config.seed + 20), config.network
        )
        self.behaviors = MetadataBehaviors(
            self.engine, self.network, random.Random(config.seed + 30), config.behaviors
        )
        self.content: Optional[ContentBehaviors] = None
        if config.content is not None:
            self.content = ContentBehaviors(
                self.engine, self.network, random.Random(config.seed + 70), config.content
            )
        self.adversary: Optional[AdversaryBehaviors] = None
        if config.population.adversary is not None:
            self.adversary = AdversaryBehaviors(
                self.engine,
                self.network,
                random.Random(config.seed + 80),
                config.population.adversary,
                content=config.content,
            )
        self.identities: List[MeasurementIdentity] = []
        self.go_ipfs_node: Optional[IpfsNode] = None
        self.hydra: Optional[HydraNode] = None
        self.crawler: Optional[Crawler] = None
        self.crawls = CrawlMonitor()
        self._build_identities()

    # -- construction ----------------------------------------------------------------

    def _build_identities(self) -> None:
        config = self.config
        if config.go_ipfs is not None:
            self.go_ipfs_node = IpfsNode(config=config.go_ipfs, rng=random.Random(config.seed + 40))
            identity = MeasurementIdentity(
                GO_IPFS_LABEL,
                self.go_ipfs_node,
                poll_interval=config.go_ipfs.poll_interval,
                is_dht_server=self.go_ipfs_node.is_dht_server,
            )
            self.identities.append(identity)
            self.network.add_measurement_identity(identity)
        if config.hydra_heads > 0:
            self.hydra = HydraNode(
                config.hydra_heads,
                rng=random.Random(config.seed + 50),
                low_water=config.hydra_low_water,
                high_water=config.hydra_high_water,
            )
            for head in self.hydra.heads:
                identity = MeasurementIdentity(
                    f"{HYDRA_LABEL_PREFIX}{head.head_index}",
                    head,
                    poll_interval=60.0,
                    is_dht_server=True,
                )
                self.identities.append(identity)
                self.network.add_measurement_identity(identity)

    # -- execution --------------------------------------------------------------------

    def run(self) -> ScenarioResult:
        config = self.config
        # Attackers install before start(): routing tables and identity
        # neighbourhoods must be built over the mined attacker IDs.
        if self.adversary is not None:
            self.adversary.install(config.duration)
        self.network.start(config.duration)
        self.behaviors.schedule_all(config.duration)
        if self.content is not None:
            self.content.schedule_all(config.duration)
        if self.adversary is not None:
            self.adversary.schedule_all(config.duration)

        if config.run_crawler:
            self.crawler = Crawler(
                query=self.network.dht_query,
                bootstrap_peers=self.network.bootstrap_peers(),
                rng=random.Random(config.seed + 60),
            )
            PeriodicTask(
                self.engine,
                config.crawl_interval,
                self._run_crawl,
                start_delay=min(1800.0, config.crawl_interval),
            )

        self.engine.run_until(config.duration)

        datasets: Dict[str, MeasurementDataset] = {}
        for identity in self.identities:
            datasets[identity.label] = identity.measurement.finalize(config.duration)
        head_datasets = [
            datasets[label] for label in sorted(datasets) if label.startswith(HYDRA_LABEL_PREFIX)
        ]
        if head_datasets:
            datasets[HYDRA_UNION_LABEL] = MeasurementDataset.union(
                head_datasets, HYDRA_UNION_LABEL
            )

        content_stats = None
        if self.content is not None:
            content_stats = self.content.finalize(config.duration)
        attack_stats = None
        if self.adversary is not None:
            attack_stats = self.adversary.finalize(config.duration)

        return ScenarioResult(
            config=config,
            datasets=datasets,
            crawls=self.crawls,
            population=self.population,
            events_processed=self.engine.events_processed,
            version_changes=self.behaviors.version_changes_applied,
            role_flips=self.behaviors.role_flips_applied,
            autonat_flips=self.behaviors.autonat_flips_applied,
            content=content_stats,
            adversary=attack_stats,
            netmodel=(
                self.network.netmodel.stats if self.network.netmodel is not None else None
            ),
            faults=(
                self.network.faults.stats if self.network.faults is not None else None
            ),
            bandwidth=(
                self.network.bandwidth.finalize(config.duration)
                if self.network.bandwidth is not None
                else None
            ),
            metrics=(
                self.network.obs.finalize(config.duration)
                if self.network.obs is not None
                else None
            ),
            spans=(
                self.network.tracer.finalize(config.duration)
                if self.network.tracer is not None
                else None
            ),
            identity_keys={
                identity.label: str(identity.peer_id) for identity in self.identities
            },
        )

    def _run_crawl(self, now: float) -> None:
        assert self.crawler is not None
        tracer = self.network.tracer
        if tracer is None:
            self.crawls.add(self.crawler.crawl(now))
            return
        # A crawl is an instantaneous breadth-first walk over dht_query: its
        # RPC leaves cost zero simulated seconds, so the trace records reach
        # (discovered / reachable / queries) rather than latency.
        tracer.begin("crawler.walk", 0)
        snapshot = self.crawler.crawl(now)
        self.crawls.add(snapshot)
        tracer.finish_root(
            0.0,
            discovered=len(snapshot.discovered),
            reachable=len(snapshot.reachable),
            unreachable=len(snapshot.unreachable),
            queries=snapshot.queries_sent,
        )


def make_engine(kind: str) -> Engine:
    """Build the event engine selected by ``ScenarioConfig.engine``."""
    if kind == "legacy":
        return Engine()
    if kind == "vectorized":
        # Imported lazily: the legacy engine must not require numpy.
        from repro.simulation.vectorized import VectorizedEngine

        return VectorizedEngine()
    raise ValueError(f"no single-fabric engine of kind {kind!r}")


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build and run a scenario in one call, dispatching on ``config.engine``."""
    if config.engine == "sharded":
        from repro.simulation.sharded import run_sharded_scenario

        return run_sharded_scenario(config)
    return Scenario(config).run()
