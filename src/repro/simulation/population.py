"""Synthetic peer population.

The population generator produces a list of :class:`PeerProfile` objects whose
composition follows the shares the paper reports for its P4 data set
(Section IV.B, Section V, Table IV):

* behaviour classes heavy / normal / light / one-time in roughly 17/26/27/30 %
  proportions, with per-class DHT-Server shares,
* agent strings per Fig. 3 (go-ipfs releases, hydra, crawlers, storm, exotic
  agents, missing identify),
* multiaddress structure per Section V.A (NATed peers, shared IPs, hydra
  operators running ~100 heads per IP, one "PID farm" rotating thousands of
  PIDs behind a single IP),
* meta-data dynamics per Table III and Section IV.B (version up/downgrades,
  DHT-Server↔Client role flips, autonat flapping, PID rotation).

The profiles are *ground truth*; the measurement and analysis code never reads
them directly but must recover the aggregate picture from recorded
connections, which is exactly the paper's epistemic situation.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.kademlia.dht import DHTMode

if TYPE_CHECKING:  # pragma: no cover - type-only (profiles are built lazily)
    from repro.adversary.config import AdversaryConfig
    from repro.bandwidth.config import BandwidthConfig
    from repro.faults.config import FaultConfig
    from repro.netmodel.config import NetModelConfig
    from repro.obs.config import ObsConfig
    from repro.obs.spans import TraceConfig
from repro.libp2p.multiaddr import random_public_ipv4
from repro.libp2p.protocols import (
    crawler_protocols,
    goipfs_protocols,
    hydra_protocols,
    storm_protocols,
)
from repro.simulation.agents import AgentCatalog
from repro.simulation.churn_models import (
    HOUR,
    MINUTE,
    ChurnModel,
    SessionModel,
    always_on_session,
    light_session,
    normal_session,
    one_time_session,
)

#: builds the churn model for one general-population peer; receives the
#: peer's ground-truth class and the population RNG
ChurnModelFactory = Callable[["PeerClass", random.Random], ChurnModel]


class PeerClass(enum.Enum):
    """Ground-truth behaviour class (the paper's Table IV categories)."""

    HEAVY = "heavy"
    NORMAL = "normal"
    LIGHT = "light"
    ONE_TIME = "one-time"


#: compact integer code per behaviour class (struct-of-arrays peer state keeps
#: class columns as int8 arrays; codes follow Table IV's ordering)
CLASS_CODES = {
    PeerClass.HEAVY: 0,
    PeerClass.NORMAL: 1,
    PeerClass.LIGHT: 2,
    PeerClass.ONE_TIME: 3,
}


class VersionBehavior(enum.Enum):
    """Whether and how a go-ipfs peer changes its agent version mid-measurement."""

    STABLE = "stable"
    UPGRADE = "upgrade"
    DOWNGRADE = "downgrade"
    CHANGE = "change"          # same release, different commit


@dataclass
class PeerProfile:
    """Ground-truth description of one simulated remote peer."""

    peer_index: int
    peer_class: PeerClass
    role: DHTMode
    agent: Optional[str]
    protocols: Set[str]
    public_ip: str
    behind_nat: bool
    session_model: ChurnModel
    # identity management
    rotates_pid: bool = False              # fresh PID every session
    # meta-data dynamics
    version_behavior: VersionBehavior = VersionBehavior.STABLE
    flips_role: bool = False               # announces/retracts /ipfs/kad/1.0.0
    flips_autonat: bool = False            # announces/retracts autonat
    # special populations
    is_crawler: bool = False
    is_storm: bool = False
    is_hydra_head: bool = False
    hydra_operator: Optional[int] = None
    is_pid_farm: bool = False              # member of the single PID-rotating farm
    # connection behaviour knobs (used by the network model)
    keep_probability: float = 0.15         # remote "values" a connection to us
    reconnect_mean: float = 20 * MINUTE    # delay before re-dialling after a close
    discovery_mean: float = 4 * HOUR       # time to discover a measurement identity
    #: ground-truth attacker membership (one of repro.adversary.config's kind
    #: labels); ``None`` marks an honest peer.  The measurement/analysis side
    #: never reads this — only the attack report, which has ground truth.
    adversary_kind: Optional[str] = None

    @property
    def is_dht_server(self) -> bool:
        return self.role is DHTMode.SERVER

    @property
    def is_adversary(self) -> bool:
        return self.adversary_kind is not None


@dataclass
class PopulationConfig:
    """Knobs of the synthetic population.

    Defaults are calibrated to the paper's P4 data set; ``n_peers`` scales the
    whole population up or down (the paper saw ~62k connected PIDs, benchmarks
    default to a few thousand peers).
    """

    n_peers: int = 2000
    seed: int = 7

    # Behaviour-class shares (Table IV, normalised over 62'204 connected PIDs).
    class_shares: Dict[PeerClass, float] = field(
        default_factory=lambda: {
            PeerClass.HEAVY: 0.17,
            PeerClass.NORMAL: 0.255,
            PeerClass.LIGHT: 0.27,
            PeerClass.ONE_TIME: 0.305,
        }
    )
    # DHT-Server share within each class (Table IV).
    server_share_per_class: Dict[PeerClass, float] = field(
        default_factory=lambda: {
            PeerClass.HEAVY: 0.137,
            PeerClass.NORMAL: 0.089,
            PeerClass.LIGHT: 0.578,
            PeerClass.ONE_TIME: 0.323,
        }
    )

    # Agent composition (Section IV.B).
    goipfs_share: float = 0.763
    other_agent_share: float = 0.166
    missing_agent_share: float = 0.046
    storm_share_of_goipfs: float = 0.149   # 7'498 / 50'254
    crawler_share: float = 0.009           # 586 / 65'853

    # Multiaddress structure (Section V.A).
    nat_share: float = 0.45
    shared_ip_share: float = 0.10          # peers that share an IP with others
    peers_per_shared_ip: int = 4
    pid_farm_peers: int = 0                # peers in the single PID-farm IP (0 = scale-derived)
    hydra_operator_head_counts: Sequence[int] = (100, 98, 28)
    hydra_heads_scale: float = 1.0         # scales the operator head counts

    # Identity dynamics.
    pid_rotation_share: Dict[PeerClass, float] = field(
        default_factory=lambda: {
            PeerClass.HEAVY: 0.02,
            PeerClass.NORMAL: 0.10,
            PeerClass.LIGHT: 0.35,
            PeerClass.ONE_TIME: 0.15,
        }
    )

    # Meta-data dynamics (Table III / Section IV.B rates, expressed as the share
    # of go-ipfs peers exhibiting each behaviour over a ~3 day window).
    upgrade_share: float = 0.0045          # 218 / ~48k go-ipfs-ish peers
    downgrade_share: float = 0.0022
    commit_change_share: float = 0.0042
    role_flip_share: float = 0.04          # 2'481 / 62'204
    autonat_flip_share: float = 0.058      # 3'603 / 62'204

    # Connection-behaviour knobs.
    server_keep_probability: float = 0.35  # how often a remote keeps a conn to a DHT-Server
    client_keep_probability: float = 0.05  # ... to a DHT-Client measurement node

    #: overrides the per-class session models of the general population (the
    #: stress scenarios plug diurnal/flash-crowd/outage/trace models in here);
    #: ``None`` keeps the paper-calibrated class defaults
    churn_model_factory: Optional[ChurnModelFactory] = None
    #: multiplies every general-population peer's mean time-to-discover a
    #: measurement identity (< 1: peers find the vantage point faster, the
    #: flash-crowd regime; > 1: a poorly connected vantage point)
    discovery_scale: float = 1.0
    #: adversarial participants, added *on top of* the honest ``n_peers``
    #: (``None``, the default, adds none and draws nothing from any RNG, so
    #: every pre-existing fixed-seed golden stays byte-identical)
    adversary: Optional["AdversaryConfig"] = None
    #: network-conditions model (region latency, NAT/reachability, dial and
    #: lookup timeouts) the fabric runs under; ``None``, the default, keeps
    #: the idealised zero-latency fully-dialable fabric and draws nothing
    #: from any RNG, so every pre-existing fixed-seed golden stays
    #: byte-identical
    netmodel: Optional["NetModelConfig"] = None
    #: fault-injection model (message loss/duplication, crash/restart,
    #: partitions, slow nodes) plus its retry resilience; ``None``, the
    #: default, injects nothing and draws nothing from any RNG, so every
    #: pre-existing fixed-seed golden stays byte-identical
    faults: Optional["FaultConfig"] = None
    #: data-plane bandwidth model (per-peer link classes, block sizes,
    #: transmit queues); ``None``, the default, keeps the zero-size fabric
    #: and draws nothing from any RNG, so every pre-existing fixed-seed
    #: golden stays byte-identical
    bandwidth: Optional["BandwidthConfig"] = None
    #: streaming observability (windowed counters/gauges/histograms emitted
    #: during the run, JSONL export, ring buffer); ``None``, the default,
    #: observes nothing, schedules nothing, and draws nothing from any RNG,
    #: so every pre-existing fixed-seed golden stays byte-identical
    obs: Optional["ObsConfig"] = None
    #: causal span tracing (per-operation trace trees, deterministic
    #: sampling, ``traces.jsonl`` export); ``None``, the default, records
    #: nothing, schedules nothing, and draws nothing from any RNG, so every
    #: pre-existing fixed-seed golden stays byte-identical
    trace: Optional["TraceConfig"] = None

    def __post_init__(self) -> None:
        if self.n_peers <= 0:
            raise ValueError("n_peers must be positive")
        share_sum = sum(self.class_shares.values())
        if abs(share_sum - 1.0) > 1e-6:
            raise ValueError(f"class shares must sum to 1, got {share_sum}")
        if self.discovery_scale <= 0:
            raise ValueError(f"discovery_scale must be positive, got {self.discovery_scale}")

    @classmethod
    def scaled_to_paper(cls, n_peers: int, seed: int = 7) -> "PopulationConfig":
        """A config whose special populations scale with ``n_peers``.

        The paper's absolute P4 population is ~62k connected PIDs; hydra heads
        (1'026 on 11 IPs) and the PID farm (2'156 PIDs on one IP) are scaled by
        ``n_peers / 62'204`` so their *relative* footprint is preserved.
        """
        scale = n_peers / 62_204.0
        head_counts = tuple(
            max(2, int(round(c * scale))) for c in (100,) * 9 + (98, 28)
        )
        return cls(
            n_peers=n_peers,
            seed=seed,
            hydra_operator_head_counts=head_counts,
            pid_farm_peers=max(3, int(round(2_156 * scale))),
        )


@dataclass
class Population:
    """The generated population plus convenience accessors."""

    config: PopulationConfig
    profiles: List[PeerProfile]

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):
        return iter(self.profiles)

    def servers(self) -> List[PeerProfile]:
        return [p for p in self.profiles if p.is_dht_server]

    def clients(self) -> List[PeerProfile]:
        return [p for p in self.profiles if not p.is_dht_server]

    def by_class(self, peer_class: PeerClass) -> List[PeerProfile]:
        return [p for p in self.profiles if p.peer_class == peer_class]

    def class_counts(self) -> Dict[PeerClass, int]:
        counts = {cls: 0 for cls in PeerClass}
        for profile in self.profiles:
            counts[profile.peer_class] += 1
        return counts

    def crawlers(self) -> List[PeerProfile]:
        return [p for p in self.profiles if p.is_crawler]

    def hydra_heads(self) -> List[PeerProfile]:
        return [p for p in self.profiles if p.is_hydra_head]

    def honest(self) -> List[PeerProfile]:
        return [p for p in self.profiles if not p.is_adversary]

    def adversaries(self) -> List[PeerProfile]:
        return [p for p in self.profiles if p.is_adversary]

    def ip_groups(self) -> Dict[str, List[PeerProfile]]:
        groups: Dict[str, List[PeerProfile]] = {}
        for profile in self.profiles:
            groups.setdefault(profile.public_ip, []).append(profile)
        return groups


# ---------------------------------------------------------------------------------


def default_session_model(peer_class: PeerClass, rng: random.Random) -> SessionModel:
    """The paper-calibrated stationary session model for one behaviour class."""
    if peer_class is PeerClass.HEAVY:
        return always_on_session()
    if peer_class is PeerClass.NORMAL:
        return normal_session()
    if peer_class is PeerClass.LIGHT:
        return light_session()
    return one_time_session(rng_sessions=1 if rng.random() < 0.7 else 2)


def _sample_class(config: PopulationConfig, rng: random.Random) -> PeerClass:
    roll = rng.random()
    cumulative = 0.0
    for peer_class, share in config.class_shares.items():
        cumulative += share
        if roll <= cumulative:
            return peer_class
    return PeerClass.ONE_TIME


def _connection_knobs(
    peer_class: PeerClass, config: PopulationConfig, rng: random.Random
) -> Tuple[float, float, float]:
    """Return (keep_probability, reconnect_mean, discovery_mean) per class."""
    if peer_class is PeerClass.HEAVY:
        return (
            min(1.0, config.server_keep_probability * 2.0),
            rng.uniform(5 * MINUTE, 30 * MINUTE),
            rng.uniform(30 * MINUTE, 4 * HOUR),
        )
    if peer_class is PeerClass.NORMAL:
        return (
            config.server_keep_probability,
            rng.uniform(10 * MINUTE, 60 * MINUTE),
            rng.uniform(1 * HOUR, 8 * HOUR),
        )
    if peer_class is PeerClass.LIGHT:
        return (
            config.server_keep_probability * 0.4,
            rng.uniform(2 * MINUTE, 20 * MINUTE),
            rng.uniform(10 * MINUTE, 2 * HOUR),
        )
    return (
        config.server_keep_probability * 0.2,
        rng.uniform(30 * MINUTE, 2 * HOUR),
        rng.uniform(10 * MINUTE, 4 * HOUR),
    )


def generate_population(
    config: PopulationConfig, rng: Optional[random.Random] = None
) -> Population:
    """Generate the synthetic population described by ``config``."""
    rng = rng or random.Random(config.seed)
    catalog = AgentCatalog(rng)
    profiles: List[PeerProfile] = []
    index = 0

    # -- hydra operators: blocks of heads sharing one IP each ----------------------
    # The special populations are capped relative to n_peers so that a small
    # test population is never swallowed whole by hydra heads (the paper's
    # live network has ~1.6 % hydra heads).
    head_counts = [
        max(1, int(round(c * config.hydra_heads_scale)))
        for c in config.hydra_operator_head_counts
    ]
    max_heads_total = max(2, int(round(config.n_peers * 0.018)))
    heads_added = 0
    for operator, head_count in enumerate(head_counts):
        operator_ip = random_public_ipv4(rng)
        for _ in range(head_count):
            if index >= config.n_peers or heads_added >= max_heads_total:
                break
            profiles.append(
                PeerProfile(
                    peer_index=index,
                    peer_class=PeerClass.HEAVY,
                    role=DHTMode.SERVER,
                    agent=catalog.hydra_agent(),
                    protocols=set(hydra_protocols()),
                    public_ip=operator_ip,
                    behind_nat=False,
                    session_model=always_on_session(),
                    keep_probability=0.8,
                    reconnect_mean=10 * MINUTE,
                    discovery_mean=1 * HOUR,
                    is_hydra_head=True,
                    hydra_operator=operator,
                )
            )
            index += 1
            heads_added += 1

    # -- the PID-rotating farm ------------------------------------------------------
    farm_size = config.pid_farm_peers
    if farm_size <= 0:
        farm_size = max(3, int(round(config.n_peers * 0.035)))
    farm_size = min(farm_size, max(3, int(round(config.n_peers * 0.05))))
    farm_ip = random_public_ipv4(rng)
    farm_agent = catalog.make_goipfs_agent(release="0.10.0")
    for _ in range(farm_size):
        if index >= config.n_peers:
            break
        profiles.append(
            PeerProfile(
                peer_index=index,
                peer_class=PeerClass.LIGHT,
                role=DHTMode.CLIENT,
                agent=farm_agent,
                protocols=goipfs_protocols(dht_server=False),
                public_ip=farm_ip,
                behind_nat=False,
                session_model=light_session(),
                rotates_pid=True,
                keep_probability=0.05,
                reconnect_mean=10 * MINUTE,
                discovery_mean=30 * MINUTE,
                is_pid_farm=True,
            )
        )
        index += 1

    # -- crawler agents ---------------------------------------------------------------
    crawler_count = max(1, int(round(config.n_peers * config.crawler_share)))
    for _ in range(crawler_count):
        if index >= config.n_peers:
            break
        profiles.append(
            PeerProfile(
                peer_index=index,
                peer_class=PeerClass.LIGHT,
                role=DHTMode.CLIENT,
                agent=catalog.sample_crawler_agent(),
                protocols=set(crawler_protocols()),
                public_ip=random_public_ipv4(rng),
                behind_nat=False,
                session_model=always_on_session(),
                keep_probability=0.0,
                reconnect_mean=2 * HOUR,
                discovery_mean=2 * HOUR,
                is_crawler=True,
            )
        )
        index += 1

    # -- shared-IP pools (small cloud providers, CGNAT) -------------------------------
    shared_ip_pool: List[str] = []
    n_shared_ips = max(
        1, int(round(config.n_peers * config.shared_ip_share / max(1, config.peers_per_shared_ip)))
    )
    for _ in range(n_shared_ips):
        shared_ip_pool.append(random_public_ipv4(rng))

    # -- the general population ---------------------------------------------------------
    churn_factory = config.churn_model_factory or default_session_model
    while index < config.n_peers:
        peer_class = _sample_class(config, rng)
        server_share = config.server_share_per_class[peer_class]
        is_server = rng.random() < server_share
        role = DHTMode.SERVER if is_server else DHTMode.CLIENT
        sample = catalog.sample(
            goipfs_share=config.goipfs_share,
            other_share=config.other_agent_share,
            missing_share=config.missing_agent_share,
            storm_share=config.storm_share_of_goipfs,
        )
        if sample.is_storm:
            protocols = storm_protocols()
            if not is_server:
                protocols.discard("/ipfs/kad/1.0.0")
        elif sample.is_goipfs:
            protocols = goipfs_protocols(dht_server=is_server)
        elif sample.agent is None:
            # Identify never completed: protocols unknown as well.
            protocols = set()
        else:
            protocols = goipfs_protocols(
                dht_server=is_server, bitswap=rng.random() < 0.5, modern=False
            )

        behind_nat = (not is_server) and rng.random() < config.nat_share
        if rng.random() < config.shared_ip_share and shared_ip_pool:
            public_ip = rng.choice(shared_ip_pool)
        else:
            public_ip = random_public_ipv4(rng)

        keep, reconnect_mean, discovery_mean = _connection_knobs(peer_class, config, rng)
        # Applied outside the rng draws so the default of 1.0 leaves the
        # draw sequence — and therefore every fixed-seed golden — unchanged.
        discovery_mean *= config.discovery_scale

        version_behavior = VersionBehavior.STABLE
        if sample.is_goipfs:
            roll = rng.random()
            if roll < config.upgrade_share:
                version_behavior = VersionBehavior.UPGRADE
            elif roll < config.upgrade_share + config.downgrade_share:
                version_behavior = VersionBehavior.DOWNGRADE
            elif roll < config.upgrade_share + config.downgrade_share + config.commit_change_share:
                version_behavior = VersionBehavior.CHANGE

        profiles.append(
            PeerProfile(
                peer_index=index,
                peer_class=peer_class,
                role=role,
                agent=sample.agent,
                protocols=protocols,
                public_ip=public_ip,
                behind_nat=behind_nat,
                session_model=churn_factory(peer_class, rng),
                rotates_pid=rng.random() < config.pid_rotation_share[peer_class],
                version_behavior=version_behavior,
                flips_role=is_server and rng.random() < config.role_flip_share,
                flips_autonat=rng.random() < config.autonat_flip_share,
                is_storm=sample.is_storm,
                keep_probability=keep,
                reconnect_mean=reconnect_mean,
                discovery_mean=discovery_mean,
            )
        )
        index += 1

    # -- adversarial participants (on top of the honest population) ------------------
    if config.adversary is not None:
        # Imported lazily: the adversary package is only loaded when a
        # scenario actually deploys attackers.
        from repro.adversary.profiles import build_adversary_profiles

        profiles.extend(
            build_adversary_profiles(config.adversary, start_index=index, seed=config.seed)
        )

    return Population(config=config, profiles=profiles)
