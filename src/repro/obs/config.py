"""Configuration of the streaming observability subsystem."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ObsConfig:
    """Tunables of the streaming metrics pipeline (:mod:`repro.obs`).

    Attached at ``PopulationConfig.obs``; ``None`` (the default) runs without
    metrics, draws nothing from any RNG, and schedules nothing, so every
    pre-existing fixed-seed golden stays byte-identical.
    """

    #: window width in simulated seconds (one metrics.jsonl line per window)
    window: float = 300.0
    #: closed windows kept in the in-memory ring buffer (older ones are
    #: dropped from memory once flushed — bounded memory at any horizon)
    ring_capacity: int = 288
    #: stream every closed window to this JSONL file (None: in-memory only)
    jsonl_path: Optional[str] = None
    #: keep *every* closed window in memory regardless of ``ring_capacity``
    #: (sharded mode sets this on the per-shard configs so the merge sees
    #: complete per-shard series; unbounded — leave off for long runs)
    retain_windows: bool = False

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.ring_capacity < 1:
            raise ValueError(
                f"ring_capacity must be >= 1, got {self.ring_capacity}"
            )
