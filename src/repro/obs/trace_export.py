"""Deterministic trace export: the single render path behind ``traces.jsonl``.

Mirrors the discipline of :mod:`repro.obs.hub`'s metrics export: every trace
payload is rendered exactly once, by exactly one function
(:func:`build_trace`), with sorted keys, compact separators, and floats
rounded to six decimals — so a fixed-seed run produces a byte-identical
``traces.jsonl`` every time, a sharded run merges to the same bytes
regardless of worker count, and CI can diff the file directly.

Rendering is *lazy*: the tracer's hot path only appends primitive event
tuples (see :mod:`repro.obs.spans`), and :class:`TraceSummary` replays them
into payload dicts on first access of :attr:`TraceSummary.traces` — after
the simulation's timed region, which is what keeps the
``benchmarks/bench_trace.py`` overhead gate honest.

:class:`TraceSummary` is the picklable carrier riding
``ScenarioResult.spans`` across shard process boundaries;
:func:`merge_trace_summaries` concatenates shard traces in shard order and
re-applies the retention cap, keeping the merged artifact independent of
how many workers produced it.  :func:`leaf_attribution` is the shared
critical-path decomposition used by both the sweep-cell report
(:mod:`repro.analysis.trace_report`) and the ``repro.obs.critical_path``
CLI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

#: schema tag stamped on every trace line; bump on layout changes
TRACE_SCHEMA = "repro-traces/1"

#: attribution bucket for time an internal span holds beyond its children
#: (scheduling slack, capped leaves, the operation's own bookkeeping)
RESIDUAL_CATEGORY = "other"


def _round6(value: float) -> float:
    """One rounding rule for every exported duration (same as metrics)."""
    return round(float(value), 6)


def _render_attr(value):
    return _round6(value) if isinstance(value, float) else value


def _render_attrs(attrs: Dict) -> Dict:
    return {key: _render_attr(value) for key, value in sorted(attrs.items())}


#: one raw finished operation as recorded by the tracer's hot path:
#: (key, kind, start, outcome, timed_out, seconds, root_attrs, events) where
#: key is the (kind, index, seq) tuple (rendered to "kind:index:seq" here)
#: and events is the flat tuple stream ("p", name, cat) /
#: ("o", seconds, attrs) / ("l", name, cat, seconds, attrs) /
#: ("r", name, seconds, outcome, rtt, hop, attempt) /
#: ("t", rtt, queueing, serialization, seconds, size)
TraceRecord = Tuple[tuple, str, float, str, bool, float, Optional[Dict], List[tuple]]


def build_trace(record: TraceRecord, max_children: int) -> Dict:
    """Replay one recorded event stream into its exported trace payload.

    Empty attrs/children are omitted so the common leaf renders as three
    keys — the export stays compact at full sampling.  Leaves beyond
    ``max_children`` per span are dropped and counted on the parent
    (structural child spans always attach: there are only ever a handful).
    """
    key, kind, start, outcome, timed_out, seconds, root_attrs, events = record
    root: Dict = {"name": kind, "cat": "op", "seconds": _round6(seconds)}
    if root_attrs:
        root["attrs"] = _render_attrs(root_attrs)
    stack = [root]
    for event in events:
        tag = event[0]
        node = stack[-1]
        if tag == "l" or tag == "r":
            if tag == "l":
                _, name, category, leaf_seconds, attrs = event
            else:
                # The RPC fast path records a bare tuple; categorise here.
                _, name, leaf_seconds, rpc_outcome, rtt, hop, attempt = event
                attrs = {}
                if hop:
                    attrs["hop"] = hop
                if attempt:
                    attrs["attempt"] = attempt
                if rpc_outcome == "ok":
                    category = "walk"
                    if rtt:
                        attrs["rtt"] = rtt
                else:
                    category = "dial" if rpc_outcome == "dial_fail" else "walk"
                    attrs["outcome"] = rpc_outcome
            children = node.get("children")
            if children is None:
                children = node["children"] = []
            if len(children) >= max_children:
                node["children_dropped"] = node.get("children_dropped", 0) + 1
                continue
            leaf: Dict = {
                "name": name, "cat": category, "seconds": _round6(leaf_seconds)
            }
            if attrs:
                leaf["attrs"] = _render_attrs(attrs)
            children.append(leaf)
        elif tag == "t":
            # Composite planned-transfer event: one hot-path append expands
            # into the transfer span and its three component leaves here.
            _, rtt, queueing, serialization, transfer_seconds, size = event
            children = node.get("children")
            if children is None:
                children = node["children"] = []
            children.append({
                "name": "transfer", "cat": "transfer",
                "seconds": _round6(transfer_seconds),
                "attrs": {"size": size},
                "children": [
                    {"name": "rtt", "cat": "transfer",
                     "seconds": _round6(rtt)},
                    {"name": "queue_wait", "cat": "queue",
                     "seconds": _round6(queueing)},
                    {"name": "serialization", "cat": "serialization",
                     "seconds": _round6(serialization)},
                ],
            })
        elif tag == "p":
            _, name, category = event
            child = {"name": name, "cat": category, "seconds": 0.0}
            children = node.get("children")
            if children is None:
                children = node["children"] = []
            children.append(child)
            stack.append(child)
        else:  # "o": close the open structural span
            _, pop_seconds, attrs = event
            node["seconds"] = _round6(pop_seconds)
            if attrs:
                node["attrs"] = _render_attrs(attrs)
            stack.pop()
    payload = {
        "schema": TRACE_SCHEMA,
        "key": f"{key[0]}:{key[1]}:{key[2]}",
        "op": kind,
        "start": _round6(start),
        "outcome": outcome,
        "seconds": _round6(seconds),
        "root": root,
    }
    if timed_out:
        payload["timed_out"] = True
    return payload


def render_trace_line(payload: Dict) -> str:
    """Canonical JSONL form: sorted keys, no whitespace — the byte-identity
    contract lives here, nowhere else."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_traces(traces: Sequence[Dict], path: str) -> None:
    """Write kept traces, one canonical line each, in completion order."""
    with open(path, "w") as handle:
        for payload in traces:
            handle.write(render_trace_line(payload))
            handle.write("\n")


def read_traces(path: str) -> List[Dict]:
    """Load a ``traces.jsonl`` back into payloads (report/CLI input)."""
    traces: List[Dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                traces.append(json.loads(line))
    return traces


class TraceSummary:
    """Picklable end-of-run tracing summary (``ScenarioResult.spans``).

    Holds either already-rendered trace payloads (``traces=...``, e.g. after
    a shard merge) or the tracer's raw records (``pending=...``), which are
    replayed through :func:`build_trace` on first access of :attr:`traces` —
    lazily, so the simulation's timed region never pays the render cost.
    """

    def __init__(
        self,
        sample: float,
        max_traces: int,
        ops: Optional[Dict[str, int]] = None,
        sampled: Optional[Dict[str, int]] = None,
        traces: Optional[List[Dict]] = None,
        traces_dropped: int = 0,
        pending: Optional[List[TraceRecord]] = None,
        max_children: int = 64,
    ) -> None:
        #: configured sample rate (must match across merged shards)
        self.sample = sample
        #: retention cap the traces list was built under
        self.max_traces = max_traces
        #: operations begun per kind (counted whether or not sampled)
        self.ops = ops if ops is not None else {}
        #: traces kept per kind (sampled or force-kept on failure/timeout)
        self.sampled = sampled if sampled is not None else {}
        #: kept-but-not-retained traces beyond the cap
        self.traces_dropped = traces_dropped
        #: per-span leaf cap applied when pending records render
        self.max_children = max_children
        self._traces = traces
        self._pending = pending if pending is not None else []

    @property
    def traces(self) -> List[Dict]:
        """Rendered trace payloads in completion order, capped at max_traces."""
        if self._traces is None:
            self._traces = [
                build_trace(record, self.max_children) for record in self._pending
            ]
            self._pending = []
        return self._traces

    def as_jsonl(self) -> str:
        """The exact ``traces.jsonl`` content for the retained traces."""
        return "".join(render_trace_line(payload) + "\n" for payload in self.traces)


def merge_trace_summaries(summaries: Sequence[TraceSummary]) -> TraceSummary:
    """Merge per-shard summaries into the single-run equivalent.

    Traces concatenate in shard order (each shard's list is already in its
    own completion order), then the retention cap is re-applied — so the
    merged artifact depends only on the shard partition, never on how many
    workers ran the shards or in what order they finished.
    """
    if not summaries:
        raise ValueError("cannot merge zero trace summaries")
    first = summaries[0]
    for summary in summaries[1:]:
        if summary.sample != first.sample:
            raise ValueError(
                "cannot merge trace summaries with different sample rates: "
                f"{first.sample} vs {summary.sample}"
            )
    ops: Dict[str, int] = {}
    sampled: Dict[str, int] = {}
    traces: List[Dict] = []
    dropped = 0
    for summary in summaries:
        for kind, count in summary.ops.items():
            ops[kind] = ops.get(kind, 0) + count
        for kind, count in summary.sampled.items():
            sampled[kind] = sampled.get(kind, 0) + count
        traces.extend(summary.traces)
        dropped += summary.traces_dropped
    if len(traces) > first.max_traces:
        dropped += len(traces) - first.max_traces
        traces = traces[: first.max_traces]
    return TraceSummary(
        sample=first.sample,
        max_traces=first.max_traces,
        ops=dict(sorted(ops.items())),
        sampled=dict(sorted(sampled.items())),
        traces=traces,
        traces_dropped=dropped,
        max_children=first.max_children,
    )


def leaf_attribution(root_payload: Dict) -> Dict[str, float]:
    """Critical-path decomposition of one rendered trace root.

    Leaves charge their full duration to their category; an internal span
    charges only its *residual* (its duration minus its direct children's)
    to its own category — the root's residual lands in
    ``RESIDUAL_CATEGORY``.  The buckets therefore always sum to the root's
    measured duration within float rounding, even when a per-span child cap
    dropped some leaves.
    """
    buckets: Dict[str, float] = {}

    def visit(payload: Dict) -> None:
        children = payload.get("children")
        if not children:
            category = payload["cat"]
            if category == "op":
                category = RESIDUAL_CATEGORY
            buckets[category] = buckets.get(category, 0.0) + payload["seconds"]
            return
        child_sum = 0.0
        for child in children:
            child_sum += child["seconds"]
            visit(child)
        residual = payload["seconds"] - child_sum
        if residual:
            category = payload["cat"]
            if category == "op":
                category = RESIDUAL_CATEGORY
            buckets[category] = buckets.get(category, 0.0) + residual

    visit(root_payload)
    return buckets
