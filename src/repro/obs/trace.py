"""Run-progress tracing: wall-clock liveness lines for long simulations.

Everything in :mod:`repro.obs.hub` is deterministic simulated-time data;
wall-clock throughput is the one signal that must *never* enter the metrics
artifacts (it would break byte-identity).  This tracer keeps it on stderr:
enabled via the ``REPRO_PROGRESS`` environment variable (inherited by
fork-based sweep/shard worker processes), it rides the engines' progress
hooks and prints one line roughly per simulated hour::

    [n=1500 seed=7] t=4.0h  1.21M events  heap=20.3k  54.1k ev/s

The hook itself is a cheap integer comparison per drained event (see
``Engine.set_progress``), so leaving the env var unset costs nothing
measurable — the metrics-overhead benchmark (``benchmarks/bench_obs.py``)
gates the whole subsystem.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Optional, TextIO

from repro.simulation.churn_models import HOUR
from repro.simulation.engine import Engine

#: set to 1/true/yes/on to print per-simulated-hour progress lines to stderr
PROGRESS_ENV = "REPRO_PROGRESS"


def progress_enabled() -> bool:
    """Whether ``REPRO_PROGRESS`` asks for run tracing."""
    return os.environ.get(PROGRESS_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def _format_count(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


class EngineTracer:
    """Prints a progress line each time simulated time crosses an interval."""

    def __init__(
        self,
        label: str,
        stream: Optional[TextIO] = None,
        sim_interval: float = HOUR,
        check_every: int = 20_000,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.sim_interval = sim_interval
        self.check_every = check_every
        self._next_sim = sim_interval
        self._last_wall = time.perf_counter()
        self._last_events = 0

    def install(self, engine: Engine) -> None:
        engine.set_progress(self._on_progress, every=self.check_every)

    def _on_progress(self, now: float, events: int, pending: int) -> None:
        if now < self._next_sim:
            return
        wall = time.perf_counter()
        elapsed = wall - self._last_wall
        rate = (events - self._last_events) / elapsed if elapsed > 0 else 0.0
        print(
            f"[{self.label}] t={now / HOUR:.1f}h  "
            f"{_format_count(events)} events  heap={_format_count(pending)}  "
            f"{_format_count(rate)} ev/s",
            file=self.stream,
        )
        self.stream.flush()
        self._last_wall = wall
        self._last_events = events
        while self._next_sim <= now:
            self._next_sim += self.sim_interval


def maybe_trace(engine: Engine, label: str) -> Optional[EngineTracer]:
    """Attach an :class:`EngineTracer` when ``REPRO_PROGRESS`` is set."""
    if not progress_enabled():
        return None
    tracer = EngineTracer(label)
    tracer.install(engine)
    return tracer
