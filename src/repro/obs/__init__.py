"""Streaming observability: live counters/gauges/histograms over the fabric.

The source paper is a measurement study — this package is the reproduction
measuring *itself* while it runs, instead of post-hoc over a finished
in-memory result:

* :mod:`repro.obs.hub` — :class:`MetricsHub`: named instruments, a
  deterministic windowing clock, canonical JSONL export, a bounded in-memory
  ring buffer, and live window subscribers.
* :mod:`repro.obs.runtime` — :class:`MetricsRuntime`: attaches the hub to the
  fabric through the :class:`~repro.simulation.fabric.FabricRuntime` protocol
  (dials, RPCs, contacts, identify exchanges) plus windowed deltas of the
  sibling runtimes' totals.
* :mod:`repro.obs.spans` — :class:`SpanTracer`: causal span trees for every
  traced operation (retrievals, provides, identify exchanges, crawler
  walks), deterministically sampled per operation key and riding the
  simulated clocks only.
* :mod:`repro.obs.trace_export` — the single render path behind the
  byte-identical ``traces.jsonl``, the picklable :class:`TraceSummary`, the
  shard merge, and the shared critical-path decomposition.
* :mod:`repro.obs.critical_path` — ``python -m repro.obs.critical_path``:
  top-k slowest traces printed as indented trees with attribution.
* :mod:`repro.obs.trace` — wall-clock run tracing on the engines' progress
  hooks (stderr only; never part of the deterministic artifacts).

Enable by setting ``PopulationConfig.obs`` to an :class:`ObsConfig` and/or
``PopulationConfig.trace`` to a :class:`TraceConfig`; the default ``None``
keeps every pre-existing fixed-seed golden byte-identical.
"""

from repro.obs.config import ObsConfig
from repro.obs.hub import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    MetricsHub,
    MetricsSummary,
    merge_summaries,
    render_line,
    write_jsonl,
)
from repro.obs.spans import SpanTracer, TraceConfig
from repro.obs.trace_export import (
    TRACE_SCHEMA,
    TraceSummary,
    leaf_attribution,
    merge_trace_summaries,
    read_traces,
    render_trace_line,
    write_traces,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "METRICS_SCHEMA",
    "MetricsHub",
    "MetricsSummary",
    "ObsConfig",
    "SpanTracer",
    "TRACE_SCHEMA",
    "TraceConfig",
    "TraceSummary",
    "leaf_attribution",
    "merge_summaries",
    "merge_trace_summaries",
    "read_traces",
    "render_line",
    "render_trace_line",
    "write_jsonl",
    "write_traces",
]
