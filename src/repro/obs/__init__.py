"""Streaming observability: live counters/gauges/histograms over the fabric.

The source paper is a measurement study — this package is the reproduction
measuring *itself* while it runs, instead of post-hoc over a finished
in-memory result:

* :mod:`repro.obs.hub` — :class:`MetricsHub`: named instruments, a
  deterministic windowing clock, canonical JSONL export, a bounded in-memory
  ring buffer, and live window subscribers.
* :mod:`repro.obs.runtime` — :class:`MetricsRuntime`: attaches the hub to the
  fabric through the :class:`~repro.simulation.fabric.FabricRuntime` protocol
  (dials, RPCs, contacts, identify exchanges) plus windowed deltas of the
  sibling runtimes' totals.
* :mod:`repro.obs.trace` — wall-clock run tracing on the engines' progress
  hooks (stderr only; never part of the deterministic artifacts).

Enable by setting ``PopulationConfig.obs`` to an :class:`ObsConfig`; the
default ``None`` keeps every pre-existing fixed-seed golden byte-identical.
"""

from repro.obs.config import ObsConfig
from repro.obs.hub import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    MetricsHub,
    MetricsSummary,
    merge_summaries,
    render_line,
    write_jsonl,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "METRICS_SCHEMA",
    "MetricsHub",
    "MetricsSummary",
    "ObsConfig",
    "merge_summaries",
    "render_line",
    "write_jsonl",
]
