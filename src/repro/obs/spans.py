"""Causal span tracing: per-operation trace trees over the simulated fabric.

The metrics hub (:mod:`repro.obs.hub`) answers "how much / how often"; this
module answers "why was *this* operation slow".  Every traced operation — a
content retrieval or provide, an identify exchange, a crawler walk — opens a
root span; the DHT walk underneath it becomes a child span whose per-hop RPC
leaves carry RTT, dial outcome, and retry attempt; retry backoff charged
through :class:`~repro.faults.retry.RetryState` and the bandwidth runtime's
queue-wait / serialization / RTT transfer components become leaves of their
own.  Span durations ride the *existing* deterministic clocks — the
:class:`~repro.netmodel.runtime.WalkClock` for timed walks, engine simulated
time for everything else — never wall time, so a trace renders byte-identical
on every run.

Determinism contract (pinned by ``tests/test_spans.py``):

* **No RNG draws, ever.**  Sampling is a pure hash of the operation key
  (``kind:peer_index:sequence``): the first 8 bytes of its SHA-256 digest
  against ``sample * 2**64``.  Attaching the tracer cannot shift any sibling
  runtime's stream, and ``trace=None`` (the default) records nothing, so all
  pre-existing fixed-seed goldens stay byte-identical.
* **Failures are always kept.**  The keep/drop decision is deferred to the
  root span's close: operations that failed or timed out are retained
  regardless of the sample rate, so the interesting tail never vanishes at
  low sampling rates.
* **Attribution telescopes.**  Timed-walk RPC leaves record the walk clock's
  *delta* around the RPC dispatch, so the leaf durations sum exactly to the
  walk's accrued latency; the critical-path report
  (:mod:`repro.analysis.trace_report`) charges each internal span's residual
  to its own category, so per-trace attribution sums to the measured
  operation latency within float rounding even when a child cap dropped
  leaves.

The tracer attaches through the same
:class:`~repro.simulation.fabric.FabricRuntime` protocol as the other
subsystems (``network.tracer``, peer slot ``trc``); the hot hooks stay the
behaviour-neutral defaults and all recording happens at the explicitly
instrumented call sites.  ``benchmarks/bench_trace.py`` gates the enabled
cost at a few percent.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.trace_export import TraceRecord, TraceSummary, write_traces
from repro.simulation.fabric import FabricRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.engine import Engine
    from repro.simulation.population import PeerProfile


@dataclass(frozen=True)
class TraceConfig:
    """Tunables of the causal span tracer (:mod:`repro.obs.spans`).

    Attached at ``PopulationConfig.trace``; ``None`` (the default) traces
    nothing, draws nothing from any RNG, and schedules nothing, so every
    pre-existing fixed-seed golden stays byte-identical.
    """

    #: deterministic per-operation sample rate in (0, 1]; failed and
    #: timed-out operations are always kept regardless
    sample: float = 1.0
    #: rendered traces retained per run (completion order; the rest only count)
    max_traces: int = 10_000
    #: direct children kept per span (crawler walks would otherwise collect
    #: thousands of RPC leaves); drops are counted on the parent
    max_children: int = 64
    #: stream every kept trace to this JSONL file at finalize (None: in-memory)
    jsonl_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.sample <= 1.0:
            raise ValueError(f"sample must be within (0, 1], got {self.sample}")
        if self.max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {self.max_traces}")
        if self.max_children < 1:
            raise ValueError(f"max_children must be >= 1, got {self.max_children}")


#: identify-delay contributions per runtime name -> latency category
_IDENTIFY_CATEGORIES = {"netmodel": "walk", "bandwidth": "serialization"}


class SpanTracer(FabricRuntime):
    """Per-run span recorder, attached to the fabric as ``network.tracer``.

    The simulation is single-threaded and every traced operation runs
    synchronously inside one engine event (iterative walks spin on a
    :class:`WalkClock`, not on the event heap), so one open operation at a
    time suffices: :meth:`begin` opens the root, :meth:`push`/:meth:`pop`
    nest structural spans, :meth:`leaf` attaches measured components, and
    :meth:`finish_root` samples the finished operation.  The hot path only
    appends primitive event tuples — tree building, rounding, and JSON
    rendering are deferred to :class:`TraceSummary`'s lazy replay, outside
    the simulation's timed region.
    """

    slot = "trc"
    name = "tracer"

    def __init__(self, config: TraceConfig, engine: "Engine") -> None:
        self.config = config
        self.engine = engine
        #: hash threshold: keep when the key digest falls below it
        self._threshold = int(config.sample * 2.0**64)
        #: at full sampling every digest clears the threshold — skip hashing
        self._keep_all = config.sample >= 1.0
        #: whether an operation is currently being recorded (attribute, not a
        #: method: the per-RPC fast paths read it directly)
        self.recording = False
        #: flat event stream of the open operation; None between operations
        self._events: Optional[List[tuple]] = None
        self._kind = ""
        #: open operation's key as a (kind, index, seq) tuple; the canonical
        #: "kind:index:seq" string is only materialised when it is hashed or
        #: rendered — never on the keep-everything hot path
        self._key = ("", 0, 0)
        self._start = 0.0
        #: walk-hop / retry-attempt state the next RPC leaf annotates
        self._hop = 0
        self._attempt = 0
        #: operations begun / traces kept, per kind
        self.ops: Dict[str, int] = {}
        self.sampled: Dict[str, int] = {}
        #: raw kept records in completion order (capped at max_traces)
        self.records: List[TraceRecord] = []
        self.traces_dropped = 0

    # -- fabric protocol -------------------------------------------------------------

    def assign_peer(self, profile: Optional["PeerProfile"] = None, **kwargs):
        """No per-peer state and no RNG draws: tracing must never shift a
        sibling runtime's stream or the honest draws."""
        return None

    # -- sampling --------------------------------------------------------------------

    def _op_key(self, kind: str, index: int) -> tuple:
        """Next operation key for ``kind`` — the per-kind sequence number *is*
        the ops counter, so one dict update serves both."""
        seq = self.ops.get(kind, 0)
        self.ops[kind] = seq + 1
        return (kind, index, seq)

    def _keep(self, key: tuple) -> bool:
        if self._keep_all:
            return True
        canonical = f"{key[0]}:{key[1]}:{key[2]}"
        digest = hashlib.sha256(canonical.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") < self._threshold

    # -- span stack ------------------------------------------------------------------

    def active(self) -> bool:
        """Whether an operation is currently being recorded (method form of
        :attr:`recording` for callers off the hot path)."""
        return self.recording

    def begin(self, kind: str, index: int) -> None:
        """Open an operation's root span (``index`` keys the sampling hash,
        typically the acting peer's index).  The keep/drop decision happens at
        :meth:`finish_root`, so failures can always be kept."""
        self.recording = True
        self._events = []
        self._kind = kind
        self._key = self._op_key(kind, index)
        self._start = self.engine.now
        self._hop = 0
        self._attempt = 0

    def begin_identify(self, label: str, index: int) -> bool:
        """Open an identify-exchange root, pre-gated by the sample hash.

        Identify exchanges cannot fail after being scheduled, so the
        always-keep-failures rule never applies and unsampled ones can skip
        recording entirely (they are by far the most frequent operation)."""
        kind = "identify"
        key = self._op_key(kind, index)
        if not self._keep(key):
            return False
        self.recording = True
        self._events = []
        self._kind = kind
        self._key = key
        self._start = self.engine.now
        return True

    def push(self, name: str, category: str) -> None:
        """Open a structural child span (walk, transfer) under the current one."""
        self._events.append(("p", name, category))

    def pop(self, seconds: float, **attrs) -> None:
        """Close the current span with its measured duration."""
        self._events.append(("o", seconds, attrs or None))

    def leaf(self, name: str, category: str, seconds: float, **attrs) -> None:
        """Attach one measured component to the current span (leaves beyond
        the per-span cap are dropped and counted at render time)."""
        self._events.append(("l", name, category, seconds, attrs or None))

    def finish_root(self, seconds: float, failed: bool = False,
                    timed_out: bool = False, **attrs) -> None:
        """Close the operation and decide keep/drop (render happens lazily)."""
        kind = self._kind
        if failed or timed_out or self._keep(self._key):
            self.sampled[kind] = self.sampled.get(kind, 0) + 1
            if len(self.records) < self.config.max_traces:
                self.records.append((
                    self._key, kind, self._start,
                    "fail" if failed else "ok", timed_out,
                    seconds, attrs or None, self._events,
                ))
            else:
                self.traces_dropped += 1
        self.recording = False
        self._events = None
        self._hop = 0
        self._attempt = 0

    # -- instrumentation state (set by dht.py / RetryState) --------------------------

    def hop(self, n: int) -> None:
        """Walk-hop annotation for subsequent RPC leaves (0: outside a batch,
        e.g. the provide walk's store phase)."""
        self._hop = n

    def set_attempt(self, n: int) -> None:
        """Retry-attempt annotation for the next re-issued RPC leaf (0: the
        initial attempt; reset by :class:`RetryState` when the call returns)."""
        self._attempt = n

    def backoff(self, seconds: float, attempt: int) -> None:
        """One retry backoff charged to a walk clock (only charged backoff is
        recorded — unclocked retries wait outside the measured latency)."""
        if self._events is not None:
            self._events.append(
                ("l", "backoff", "backoff", seconds, {"attempt": attempt})
            )

    def rpc(self, name: str, seconds: float, outcome: str,
            rtt: Optional[float] = None) -> None:
        """One RPC leaf under the current span (timed walks pass the clock
        delta around the dispatch; untimed RPCs cost zero seconds).

        The hot path appends one bare tuple; categorisation (a netmodel veto
        burned the dial timeout — ``dial`` — every other veto died on the
        wire after dialling — ``walk``) and attr assembly happen at render
        time in :func:`~repro.obs.trace_export.build_trace`."""
        self._events.append(("r", name, seconds, outcome, rtt, self._hop, self._attempt))

    def transfer(self, rtt: float, queueing: float, serialization: float,
                 seconds: float, size: int) -> None:
        """One planned Bitswap transfer decomposed into its bandwidth-runtime
        FIFO components — a single composite event on the hot path, expanded
        into the transfer span (rtt / queue_wait / serialization leaves) at
        render time."""
        self._events.append(("t", rtt, queueing, serialization, seconds, size))

    # -- identify exchanges ----------------------------------------------------------

    @staticmethod
    def identify_category(runtime_name: str) -> str:
        """Latency category of one runtime's identify-delay contribution."""
        return _IDENTIFY_CATEGORIES.get(runtime_name, "other")

    def finish_identify(self, delay: float, base: float, parts, label: str) -> None:
        """Record a whole identify exchange in one call (the most frequent
        traced operation): one leaf per nonzero runtime contribution in
        ``parts`` (``(runtime_name, seconds)`` pairs), the base processing
        leaf, and the root close.  The sampling gate already ran in
        :meth:`begin_identify`, so the exchange is kept unconditionally."""
        events = self._events
        for name, extra in parts:
            events.append(
                ("l", name, _IDENTIFY_CATEGORIES.get(name, "other"), extra, None)
            )
        events.append(("l", "process", "other", base, None))
        kind = self._kind
        self.sampled[kind] = self.sampled.get(kind, 0) + 1
        if len(self.records) < self.config.max_traces:
            self.records.append((
                self._key, kind, self._start, "ok", False,
                delay, {"label": label}, events,
            ))
        else:
            self.traces_dropped += 1
        self.recording = False
        self._events = None

    # -- finalize --------------------------------------------------------------------

    def finalize(self, duration: float) -> TraceSummary:
        """Close the books: export the kept traces and return the picklable
        summary (``ScenarioResult.spans``).  The raw records are handed to
        the summary unrendered; export (when configured) is the first — and
        only — render."""
        summary = TraceSummary(
            sample=self.config.sample,
            max_traces=self.config.max_traces,
            ops=dict(sorted(self.ops.items())),
            sampled=dict(sorted(self.sampled.items())),
            traces_dropped=self.traces_dropped,
            pending=list(self.records),
            max_children=self.config.max_children,
        )
        if self.config.jsonl_path is not None:
            write_traces(summary.traces, self.config.jsonl_path)
        return summary
