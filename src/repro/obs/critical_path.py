"""``python -m repro.obs.critical_path`` — top-k slowest traces as trees.

Reads a ``traces.jsonl`` written by the span tracer (directly, or merged by
a sharded run) and prints the slowest traces as indented span trees with a
per-trace critical-path attribution line.  Pure post-processing: nothing
here touches a simulation, and the output is deterministic for a given
input file.

Usage::

    python -m repro.obs.critical_path traces.jsonl [--top K] [--op KIND]
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.obs.trace_export import leaf_attribution, read_traces


def format_span(payload: Dict, depth: int = 0) -> List[str]:
    """One indented line per span: duration, category, name, annotations."""
    attrs = payload.get("attrs") or {}
    notes = " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    dropped = payload.get("children_dropped", 0)
    if dropped:
        notes = f"{notes} +{dropped} dropped".strip()
    line = (
        f"{'  ' * depth}{payload['seconds']:>10.6f}s  "
        f"[{payload['cat']}] {payload['name']}"
    )
    if notes:
        line += f"  ({notes})"
    lines = [line]
    for child in payload.get("children") or []:
        lines.extend(format_span(child, depth + 1))
    return lines


def format_trace(payload: Dict, rank: int) -> str:
    """The printable block for one trace: header, tree, attribution."""
    header = (
        f"#{rank} {payload['op']} key={payload['key']} "
        f"{payload['seconds']:.6f}s outcome={payload['outcome']}"
    )
    if payload.get("timed_out"):
        header += " timed_out"
    attribution = leaf_attribution(payload["root"])
    shares = " ".join(
        f"{category}={seconds:.6f}s"
        for category, seconds in sorted(attribution.items())
        if round(seconds, 6)
    )
    lines = [header]
    lines.extend(format_span(payload["root"], depth=1))
    lines.append(f"  critical path: {shares or 'none'}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.critical_path",
        description="Print the top-k slowest traces of a traces.jsonl as "
        "indented span trees with critical-path attribution.",
    )
    parser.add_argument("path", help="traces.jsonl written by a traced run")
    parser.add_argument(
        "--top", type=int, default=5, help="traces to print (default 5)"
    )
    parser.add_argument(
        "--op", default=None, help="only consider this operation kind "
        "(e.g. content.retrieve)"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.top < 1:
        parser.error(f"--top must be positive, got {args.top}")
    try:
        traces = read_traces(args.path)
    except OSError as exc:
        parser.error(f"cannot read {args.path}: {exc}")
    if args.op is not None:
        traces = [payload for payload in traces if payload["op"] == args.op]
    # Slowest first; ties break on the (unique) operation key so the
    # printout is deterministic.
    traces.sort(key=lambda payload: (-payload["seconds"], payload["key"]))
    selected = traces[: args.top]
    if not selected:
        print("no matching traces")
        return 0
    blocks = [format_trace(payload, rank) for rank, payload in enumerate(selected, 1)]
    print("\n\n".join(blocks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
