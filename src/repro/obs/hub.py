"""The streaming metrics hub: counters, gauges, and fixed-bucket histograms.

Every report under :mod:`repro.analysis` walks a finished in-memory
:class:`~repro.simulation.scenario.ScenarioResult`; at million-peer scale and
multi-week horizons that post-hoc model is the memory wall.  The hub is the
other half: named instruments observed *during* the run, aggregated into
fixed-width windows of simulated time, each window flushed the moment it
closes — to a JSONL export, to an in-memory ring buffer with a bounded cap,
and to any subscribed live consumers.

Determinism contract (pinned by ``tests/test_obs.py``):

* **Windowing** is a pure function of simulated time: an observation at time
  ``t`` lands in window ``int(t // window)``, clamped to the final window of
  the configured horizon (so an event exactly at the end boundary never opens
  a window the run will not close).
* **Order-independence inside a window**: counters take integer increments
  (exact commutative addition), gauge and histogram float sums use
  :func:`math.fsum` (exactly-rounded, so any interleaving of the same
  observations renders the same bytes), and min/max/bucket counts are
  order-free by construction.  The hypothesis property in the test suite
  feeds shuffled interleavings and asserts byte-identical JSONL.
* **Serialization** is canonical: ``json.dumps(sort_keys=True)`` with compact
  separators and floats rounded to 6 decimals, one line per closed window.

Sharded runs give every shard its own hub (windows retained in memory); the
merge in :func:`merge_summaries` combines same-index windows field-wise in
shard order, so the merged series is byte-identical for every worker count.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TextIO, Tuple

#: schema tag carried by every metrics.jsonl line
METRICS_SCHEMA = "repro-metrics/1"

#: default histogram bounds for durations in simulated seconds (upper edges;
#: one extra overflow bucket is appended past the last bound)
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _round6(value: float) -> float:
    return round(float(value), 6)


class _Window:
    """Raw observations of one open window (aggregated only at close)."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, List[float]] = {}
        self.histograms: Dict[str, List[float]] = {}


def render_window(
    index: int,
    window_seconds: float,
    counters: Dict[str, int],
    gauges: Dict[str, Dict[str, float]],
    histograms: Dict[str, Dict[str, object]],
) -> Dict:
    """The canonical payload of one closed window (shared by close and merge,
    so merged shard windows render byte-identically to single-hub ones)."""
    return {
        "schema": METRICS_SCHEMA,
        "index": index,
        "start": _round6(index * window_seconds),
        "end": _round6((index + 1) * window_seconds),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def render_line(payload: Dict) -> str:
    """One metrics.jsonl line (canonical key order, compact separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_jsonl(windows: Sequence[Dict], path: str) -> None:
    """Write a full window series as a metrics.jsonl file."""
    with open(path, "w") as handle:
        for payload in windows:
            handle.write(render_line(payload))
            handle.write("\n")


@dataclass
class MetricsSummary:
    """Picklable digest of a finished hub (rides ``ScenarioResult.metrics``)."""

    #: window width in simulated seconds
    window_seconds: float
    #: closed windows over the whole run
    windows_closed: int
    #: instrument observations recorded (inc/gauge/observe calls)
    observations: int
    #: run-total counter values (summed over every closed window)
    counters: Dict[str, int] = field(default_factory=dict)
    #: upper bucket edges per histogram instrument
    histogram_bounds: Dict[str, List[float]] = field(default_factory=dict)
    #: retained window payloads — the complete series when ``retained``,
    #: otherwise the ring-buffer tail
    windows: List[Dict] = field(default_factory=list)
    #: closed windows no longer in memory (flushed to JSONL, then evicted)
    windows_dropped: int = 0
    #: whether ``windows`` holds the complete series
    retained: bool = False

    def as_jsonl(self) -> str:
        """The retained windows rendered as metrics.jsonl content."""
        return "".join(render_line(payload) + "\n" for payload in self.windows)


class MetricsHub:
    """Owns the named instruments and the deterministic windowing clock."""

    def __init__(
        self,
        window: float,
        ring_capacity: int = 288,
        jsonl_path: Optional[str] = None,
        retain_windows: bool = False,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if ring_capacity < 1:
            raise ValueError(f"ring_capacity must be >= 1, got {ring_capacity}")
        self.window = float(window)
        self.jsonl_path = jsonl_path
        self.recent: deque = deque(maxlen=ring_capacity)
        self._retained: Optional[List[Dict]] = [] if retain_windows else None
        self._open: Dict[int, _Window] = {}
        self._next_to_close = 0
        self._n_windows: Optional[int] = None
        self._bounds: Dict[str, Tuple[float, ...]] = {}
        self._subscribers: List[Callable[[Dict], None]] = []
        self._handle: Optional[TextIO] = None
        self._finalized = False
        self.windows_closed = 0
        self.observations = 0
        self.counter_totals: Dict[str, int] = {}

    # -- configuration ---------------------------------------------------------------

    def set_horizon(self, duration: float) -> None:
        """Fix the run length: observations past the end fold into the final
        window, and :meth:`finalize` closes exactly ``ceil(duration/window)``
        windows (empty ones included, so the series has no gaps)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self._n_windows = max(1, int(math.ceil(duration / self.window - 1e-9)))

    def register_histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> None:
        """Declare a histogram's upper bucket edges (strictly ascending)."""
        edges = tuple(float(b) for b in bounds)
        if not edges or any(later <= earlier for later, earlier in zip(edges[1:], edges)):
            raise ValueError(f"histogram bounds must be strictly ascending: {bounds}")
        existing = self._bounds.get(name)
        if existing is not None and existing != edges:
            raise ValueError(f"histogram {name!r} already registered with other bounds")
        self._bounds[name] = edges

    def subscribe(self, callback: Callable[[Dict], None]) -> None:
        """Call ``callback(payload)`` the moment each window closes."""
        self._subscribers.append(callback)

    # -- observations ----------------------------------------------------------------

    def _index(self, now: float) -> int:
        index = int(now // self.window)
        if self._n_windows is not None and index >= self._n_windows:
            index = self._n_windows - 1
        if index < self._next_to_close:
            # Never re-open a closed window: a late observation (possible only
            # through a mis-ordered external caller) folds into the frontier.
            index = self._next_to_close
        return index

    def _at(self, index: int) -> _Window:
        window = self._open.get(index)
        if window is None:
            window = self._open[index] = _Window()
        return window

    def inc(self, name: str, now: float, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` in the window containing ``now``."""
        self.inc_at(self._index(now), name, value)

    def inc_at(self, index: int, name: str, value: int = 1) -> None:
        """Counter increment into an explicit window index (tick-time deltas)."""
        if not isinstance(value, int):
            raise TypeError(f"counter increments must be ints, got {value!r}")
        self.observations += 1
        counters = self._at(index).counters
        counters[name] = counters.get(name, 0) + value

    def gauge(self, name: str, now: float, value: float) -> None:
        """Record one sample of gauge ``name`` (windows keep count/min/max/sum)."""
        self.observations += 1
        self._at(self._index(now)).gauges.setdefault(name, []).append(float(value))

    def observe(self, name: str, now: float, value: float) -> None:
        """Record ``value`` into histogram ``name`` (default time buckets when
        the instrument was not explicitly registered)."""
        if name not in self._bounds:
            self._bounds[name] = DEFAULT_TIME_BUCKETS
        self.observations += 1
        self._at(self._index(now)).histograms.setdefault(name, []).append(float(value))

    # -- windowing -------------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Close every window that ends at or before ``now`` (except the final
        horizon window, which only :meth:`finalize` closes)."""
        target = int(now // self.window)
        if self._n_windows is not None:
            target = min(target, self._n_windows - 1)
        while self._next_to_close < target:
            self._close_next()

    def _close_next(self) -> None:
        index = self._next_to_close
        self._next_to_close = index + 1
        window = self._open.pop(index, None) or _Window()
        counters = {name: window.counters[name] for name in sorted(window.counters)}
        gauges: Dict[str, Dict[str, float]] = {}
        for name in sorted(window.gauges):
            samples = window.gauges[name]
            gauges[name] = {
                "count": len(samples),
                "min": _round6(min(samples)),
                "max": _round6(max(samples)),
                "sum": _round6(math.fsum(samples)),
            }
        histograms: Dict[str, Dict[str, object]] = {}
        for name in sorted(window.histograms):
            samples = window.histograms[name]
            bounds = self._bounds[name]
            buckets = [0] * (len(bounds) + 1)
            for value in samples:
                position = len(bounds)
                for i, bound in enumerate(bounds):
                    if value <= bound:
                        position = i
                        break
                buckets[position] += 1
            histograms[name] = {
                "count": len(samples),
                "sum": _round6(math.fsum(samples)),
                "buckets": buckets,
            }
        payload = render_window(index, self.window, counters, gauges, histograms)
        self.windows_closed += 1
        for name, value in counters.items():
            self.counter_totals[name] = self.counter_totals.get(name, 0) + value
        self.recent.append(payload)
        if self._retained is not None:
            self._retained.append(payload)
        if self.jsonl_path is not None:
            if self._handle is None:
                self._handle = open(self.jsonl_path, "w")
            self._handle.write(render_line(payload))
            self._handle.write("\n")
        for callback in self._subscribers:
            callback(payload)

    def finalize(self) -> MetricsSummary:
        """Close the remaining windows (through the horizon when one is set),
        flush the JSONL export, and return the picklable summary."""
        if self._finalized:
            raise RuntimeError("MetricsHub.finalize() called twice")
        self._finalized = True
        if self._n_windows is not None:
            target = self._n_windows
        else:
            target = max(self._open, default=self._next_to_close - 1) + 1
        while self._next_to_close < target:
            self._close_next()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        windows = list(self._retained) if self._retained is not None else list(self.recent)
        return MetricsSummary(
            window_seconds=self.window,
            windows_closed=self.windows_closed,
            observations=self.observations,
            counters=dict(sorted(self.counter_totals.items())),
            histogram_bounds={
                name: list(bounds) for name, bounds in sorted(self._bounds.items())
            },
            windows=windows,
            windows_dropped=self.windows_closed - len(windows),
            retained=self._retained is not None,
        )


# -- sharded merge -------------------------------------------------------------------


def merge_summaries(summaries: Sequence[MetricsSummary]) -> MetricsSummary:
    """Merge complete per-shard window series into one federation-wide series.

    Same-index windows combine field-wise: counters and bucket counts sum
    exactly (ints), gauge sums via :func:`math.fsum` over the shard sums with
    min-of-mins / max-of-maxes, and every merged window re-renders through
    :func:`render_window` — so the merged series is byte-identical for every
    worker count and shard completion order (shards are walked in index
    order, which the sharded runner fixes).
    """
    if not summaries:
        raise ValueError("cannot merge zero metrics summaries")
    window_seconds = summaries[0].window_seconds
    for summary in summaries:
        if summary.window_seconds != window_seconds:
            raise ValueError("cannot merge summaries with different window widths")
        if not summary.retained:
            raise ValueError(
                "sharded metrics merge needs complete per-shard series "
                "(ObsConfig.retain_windows on the shard configs)"
            )
    bounds: Dict[str, List[float]] = {}
    for summary in summaries:
        for name, edges in summary.histogram_bounds.items():
            if bounds.setdefault(name, edges) != edges:
                raise ValueError(f"histogram {name!r} has mismatched shard bounds")
    n_windows = max(s.windows_closed for s in summaries)
    by_index: List[List[Dict]] = [[] for _ in range(n_windows)]
    for summary in summaries:
        for payload in summary.windows:
            by_index[payload["index"]].append(payload)
    merged_windows: List[Dict] = []
    counter_totals: Dict[str, int] = {}
    for index in range(n_windows):
        counters: Dict[str, int] = {}
        gauge_parts: Dict[str, List[Dict]] = {}
        hist_parts: Dict[str, List[Dict]] = {}
        for payload in by_index[index]:
            for name, value in payload["counters"].items():
                counters[name] = counters.get(name, 0) + value
            for name, stats in payload["gauges"].items():
                gauge_parts.setdefault(name, []).append(stats)
            for name, stats in payload["histograms"].items():
                hist_parts.setdefault(name, []).append(stats)
        gauges = {
            name: {
                "count": sum(p["count"] for p in parts),
                "min": _round6(min(p["min"] for p in parts)),
                "max": _round6(max(p["max"] for p in parts)),
                "sum": _round6(math.fsum(p["sum"] for p in parts)),
            }
            for name, parts in sorted(gauge_parts.items())
        }
        histograms = {
            name: {
                "count": sum(p["count"] for p in parts),
                "sum": _round6(math.fsum(p["sum"] for p in parts)),
                "buckets": [
                    sum(p["buckets"][i] for p in parts)
                    for i in range(len(parts[0]["buckets"]))
                ],
            }
            for name, parts in sorted(hist_parts.items())
        }
        counters = {name: counters[name] for name in sorted(counters)}
        for name, value in counters.items():
            counter_totals[name] = counter_totals.get(name, 0) + value
        merged_windows.append(
            render_window(index, window_seconds, counters, gauges, histograms)
        )
    return MetricsSummary(
        window_seconds=window_seconds,
        windows_closed=n_windows,
        observations=sum(s.observations for s in summaries),
        counters=dict(sorted(counter_totals.items())),
        histogram_bounds={name: list(edges) for name, edges in sorted(bounds.items())},
        windows=merged_windows,
        windows_dropped=0,
        retained=True,
    )


def ring_tail(summary: MetricsSummary, ring_capacity: int) -> MetricsSummary:
    """Bound a retained summary back to its ring-buffer view (the sharded
    runner retains every shard window for the merge, then re-applies the
    requested cap so the merged result matches single-fabric memory bounds)."""
    windows = summary.windows[-ring_capacity:]
    return MetricsSummary(
        window_seconds=summary.window_seconds,
        windows_closed=summary.windows_closed,
        observations=summary.observations,
        counters=summary.counters,
        histogram_bounds=summary.histogram_bounds,
        windows=windows,
        windows_dropped=summary.windows_closed - len(windows),
        retained=False,
    )
