"""The observability fabric runtime: hook-driven instruments + window clock.

:class:`MetricsRuntime` attaches through the same
:class:`~repro.simulation.fabric.FabricRuntime` protocol as netmodel, faults,
and bandwidth — the dispatch code in ``network.py`` is untouched.  It sits
*first* in ``network.runtimes`` so the veto ladders (NAT dial failures, lost
RPCs, partitions) cannot hide attempts from the observer: every hook here
counts and then returns the behaviour-neutral default, and
:meth:`assign_peer` draws nothing from any RNG — so with metrics enabled the
datasets stay deterministic, and the *attempt* counts include the vetoed
ones.

The windowing clock is a single :class:`~repro.simulation.engine.PeriodicTask`
at the window width (first fire at t=0).  Each tick runs three steps in a
fixed order:

1. flush the accumulated per-event fabric counters and sample sibling-runtime
   cumulative stats (faults retries, bandwidth transfers, netmodel dial
   failures) as *deltas* into the window that just ended — windowed series
   for subsystems that only keep run totals;
2. advance the hub, closing (and flushing) every window strictly before the
   tick time;
3. sample the gauges (online peers, engine events/heap depth) into the window
   that just opened.

The hot fabric hooks (``on_rpc``, ``on_dial``, ...) fire once per simulated
network event, so they do the cheapest thing Python allows — a plain integer
attribute increment — and defer the hub bookkeeping to the once-per-window
flush.  The overhead gate (``benchmarks/bench_obs.py``) pins this: metrics
enabled must stay within a few percent of disabled.

Instrument catalog (the README's "Streaming observability" section mirrors
this):

==============================  ======================================================
``fabric.contact``              inbound contact attempts of vantage points
``fabric.connect``              connections established (inbound + outbound)
``fabric.dial``                 vantage points' outbound dial attempts
``fabric.rpc``                  DHT RPC attempts (FIND_NODE/ADD/GET_PROVIDERS)
``fabric.identify``             identify records delivered (initial + pushes)
``meta.role_flip`` etc.         metadata behaviours (behaviors.py)
``content.retrieve_ok/fail``    retrieval outcomes, with latency histograms
``content.provide``             provide walks, with latency histograms
``faults.retries`` etc.         windowed deltas of the fault runtime's totals
``netmodel.dial_failures`` ...  windowed deltas of the netmodel's totals
``bandwidth.transfers`` ...     windowed deltas of the bandwidth totals, plus
                                a per-transfer seconds histogram
``engine.events_processed``     gauge at window open (cumulative)
``engine.heap_depth``           gauge at window open (live pending events)
``fabric.online_peers/servers`` gauges at window open
==============================  ======================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs.config import ObsConfig
from repro.obs.hub import MetricsHub, MetricsSummary
from repro.simulation.engine import Engine, PeriodicTask
from repro.simulation.fabric import FabricRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netmodel.runtime import WalkClock
    from repro.simulation.network import SimPeer, SimulatedNetwork


class MetricsRuntime(FabricRuntime):
    """Streaming metrics attached to the fabric's hook points."""

    slot = "obs"
    name = "obs"

    def __init__(self, config: ObsConfig, engine: Engine) -> None:
        self.config = config
        self.engine = engine
        self.hub = MetricsHub(
            config.window,
            ring_capacity=config.ring_capacity,
            jsonl_path=config.jsonl_path,
            retain_windows=config.retain_windows,
        )
        # Latency histograms share the default simulated-seconds buckets.
        self.hub.register_histogram("content.retrieve_seconds")
        self.hub.register_histogram("content.provide_seconds")
        self.hub.register_histogram("bandwidth.transfer_seconds")
        self.network: Optional["SimulatedNetwork"] = None
        #: last sampled value per sibling cumulative stat (delta cursors)
        self._cursors: Dict[str, int] = {}
        self._task: Optional[PeriodicTask] = None
        # Per-event tallies, flushed into the just-ended window each tick.
        self._n_contact = 0
        self._n_connect = 0
        self._n_dial = 0
        self._n_rpc = 0
        self._n_identify = 0

    # -- fabric protocol -------------------------------------------------------------

    def assign_peer(self, profile=None, **kwargs):
        """No per-peer state and no RNG draws: metrics must never shift a
        sibling runtime's stream or the honest draws."""
        return None

    def install(self, network: "SimulatedNetwork", duration: float) -> None:
        self.network = network
        self.hub.set_horizon(duration)
        self._task = PeriodicTask(
            self.engine, self.hub.window, self._tick, start_delay=0.0
        )

    def on_contact(self, peer: "SimPeer") -> Optional[float]:
        self._n_contact += 1
        return None

    def note_contact_made(self, peer: "SimPeer") -> None:
        self._n_connect += 1

    def on_dial(self, peer: "SimPeer") -> bool:
        self._n_dial += 1
        return True

    def on_rpc(self, src: Optional["SimPeer"], dst: "SimPeer") -> bool:
        self._n_rpc += 1
        return True

    def on_timed_rpc(
        self, clock: "WalkClock", src: Optional["SimPeer"], dst: "SimPeer"
    ) -> bool:
        self._n_rpc += 1
        return True

    def on_identify_delivered(self, label: str, peer: "SimPeer") -> None:
        self._n_identify += 1

    # -- window clock ----------------------------------------------------------------

    def _sibling_totals(self) -> List[Tuple[str, int]]:
        """Cumulative counters of the sibling runtimes worth windowing."""
        network = self.network
        pairs: List[Tuple[str, int]] = []
        if network.netmodel is not None:
            stats = network.netmodel.stats
            pairs.append(("netmodel.dial_failures", stats.dial_failures))
            pairs.append(("netmodel.lookup_timeouts", stats.lookup_timeouts))
        if network.faults is not None:
            stats = network.faults.stats
            pairs.append(("faults.rpc_lost", stats.rpc_lost))
            pairs.append(("faults.crashes", stats.crashes))
            pairs.append(("faults.restarts", stats.restarts))
            pairs.append(("faults.retries", stats.retry_extra))
            pairs.append(("faults.retry_recoveries", stats.retry_recoveries))
        if network.bandwidth is not None:
            stats = network.bandwidth.stats
            pairs.append(("bandwidth.transfers", stats.transfers))
            pairs.append(("bandwidth.bytes", stats.bytes_transferred))
            pairs.append(("bandwidth.transfer_timeouts", stats.transfers_timed_out))
        return pairs

    def _sample_deltas(self, index: int) -> None:
        """Window everything accumulated since the previous tick into window
        ``index`` (the one that just ended): the per-event fabric tallies and
        the deltas of the sibling runtimes' cumulative totals."""
        hub = self.hub
        for name, count in (
            ("fabric.contact", self._n_contact),
            ("fabric.connect", self._n_connect),
            ("fabric.dial", self._n_dial),
            ("fabric.rpc", self._n_rpc),
            ("fabric.identify", self._n_identify),
        ):
            if count:
                hub.inc_at(index, name, count)
        self._n_contact = self._n_connect = self._n_dial = 0
        self._n_rpc = self._n_identify = 0
        for name, total in self._sibling_totals():
            delta = total - self._cursors.get(name, 0)
            if delta:
                hub.inc_at(index, name, delta)
            self._cursors[name] = total

    def _tick(self, now: float) -> None:
        hub = self.hub
        previous = int(now // hub.window) - 1
        if previous >= 0:
            self._sample_deltas(min(previous, hub._n_windows - 1))
        hub.advance(now)
        engine = self.engine
        network = self.network
        hub.gauge("engine.events_processed", now, float(engine.events_processed))
        hub.gauge("engine.heap_depth", now, float(engine.pending()))
        hub.gauge("fabric.online_peers", now, float(network.online_count()))
        hub.gauge("fabric.online_servers", now, float(network.online_server_count()))

    def finalize(self, duration: float) -> MetricsSummary:
        """Close the books at the end of the run: the final sibling deltas go
        into the last window, then the hub closes out the horizon."""
        if self._task is not None:
            self._task.stop()
        last = (self.hub._n_windows or 1) - 1
        self._sample_deltas(last)
        return self.hub.finalize()
