"""Provider-record storage: who provides which content key.

Content routing is the DHT traffic class the paper's passive vantage points
actually see most of: peers publish *provider records* (PROVIDE) for the CIDs
they hold and resolve them (FIND_PROVIDERS) before fetching blocks over
Bitswap.  A provider record is soft state — go-ipfs expires records 24 h after
they were stored and republishes its own records every 12 h — so record
liveness under churn is a property of the publish/republish/expiry race, which
is exactly what the content-routing scenarios measure.

The store keeps, per content key, an insertion-ordered mapping
``provider -> ProviderRecord``.  Re-adding a provider refreshes its expiry
without changing its position and reads filter expired records lazily.

:meth:`ProviderStore.expire` sweeps expired records *incrementally*: every
write also pushes ``(expires_at, key, provider)`` onto a min-heap, and a sweep
only pops the heap prefix that is actually due — O(dropped log n) instead of
a full scan of every stored record.  Refreshes and removals leave stale heap
entries behind; they are recognised (the live record's expiry no longer
matches) and discarded lazily when popped, the standard lazy-deletion
pattern.  At simulation scale most sweeps drop nothing, which the heap makes
an O(1) peek instead of an all-keys walk.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.libp2p.peer_id import PeerId

#: go-ipfs provider-record lifetime (24 h).
DEFAULT_PROVIDER_TTL = 24 * 3_600.0
#: go-ipfs reprovide interval (12 h) — half the TTL, so a live provider's
#: records never expire.
DEFAULT_REPUBLISH_INTERVAL = 12 * 3_600.0


@dataclass(frozen=True)
class ProviderRecord:
    """One stored (content key, provider) assertion with its expiry."""

    key: int
    provider: PeerId
    added_at: float
    expires_at: float

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at


class ProviderStore:
    """TTL-expiring provider records of one DHT server."""

    __slots__ = ("ttl", "_records", "records_added", "_expiry_heap")

    def __init__(self, ttl: float = DEFAULT_PROVIDER_TTL) -> None:
        if ttl <= 0:
            raise ValueError(f"provider TTL must be positive, got {ttl}")
        self.ttl = ttl
        self._records: Dict[int, Dict[PeerId, ProviderRecord]] = {}
        #: total ADD_PROVIDER messages accepted (including refreshes)
        self.records_added = 0
        #: (expires_at, key, provider) min-heap driving incremental sweeps;
        #: may hold stale entries for refreshed/removed records (lazy deletion)
        self._expiry_heap: List[Tuple[float, int, PeerId]] = []

    # -- writes -----------------------------------------------------------------

    def add(
        self,
        key: int,
        provider: PeerId,
        now: float,
        ttl: Optional[float] = None,
    ) -> ProviderRecord:
        """Store (or refresh) a provider record; returns the stored record."""
        record = ProviderRecord(
            key=key,
            provider=provider,
            added_at=now,
            expires_at=now + (self.ttl if ttl is None else ttl),
        )
        self._records.setdefault(key, {})[provider] = record
        self.records_added += 1
        heapq.heappush(self._expiry_heap, (record.expires_at, key, provider))
        return record

    def remove(self, key: int, provider: PeerId) -> bool:
        """Drop one provider record; returns True if it existed."""
        per_key = self._records.get(key)
        if per_key is None or provider not in per_key:
            return False
        del per_key[provider]
        if not per_key:
            del self._records[key]
        return True

    def expire(self, now: float) -> int:
        """Sweep out every expired record; returns how many were dropped.

        Pops only the due prefix of the expiry heap.  A popped entry whose
        live record carries a different expiry is stale (the record was
        refreshed — its newer heap entry is still queued — or removed) and is
        discarded without touching the store.
        """
        heap = self._expiry_heap
        dropped = 0
        while heap and heap[0][0] <= now:
            expires_at, key, provider = heapq.heappop(heap)
            per_key = self._records.get(key)
            if per_key is None:
                continue
            record = per_key.get(provider)
            if record is None or record.expires_at != expires_at:
                continue  # stale heap entry
            del per_key[provider]
            dropped += 1
            if not per_key:
                del self._records[key]
        return dropped

    # -- reads ------------------------------------------------------------------

    def providers(self, key: int, now: float, limit: Optional[int] = None) -> List[PeerId]:
        """Live providers of ``key`` in insertion order (expired filtered)."""
        per_key = self._records.get(key)
        if not per_key:
            return []
        live = [r.provider for r in per_key.values() if not r.is_expired(now)]
        return live if limit is None else live[:limit]

    def records_for(self, key: int, now: float) -> List[ProviderRecord]:
        """Live records of ``key`` in insertion order."""
        per_key = self._records.get(key)
        if not per_key:
            return []
        return [r for r in per_key.values() if not r.is_expired(now)]

    def has_providers(self, key: int, now: float) -> bool:
        return bool(self.providers(key, now, limit=1))

    def keys(self) -> Iterable[int]:
        """Every key with at least one stored (possibly expired) record."""
        return self._records.keys()

    def key_count(self) -> int:
        return len(self._records)

    def __len__(self) -> int:
        """Stored records, including expired ones not yet swept."""
        return sum(len(per_key) for per_key in self._records.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ProviderStore(keys={self.key_count()}, records={len(self)})"
