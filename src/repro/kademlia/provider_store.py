"""Provider-record storage: who provides which content key.

Content routing is the DHT traffic class the paper's passive vantage points
actually see most of: peers publish *provider records* (PROVIDE) for the CIDs
they hold and resolve them (FIND_PROVIDERS) before fetching blocks over
Bitswap.  A provider record is soft state — go-ipfs expires records 24 h after
they were stored and republishes its own records every 12 h — so record
liveness under churn is a property of the publish/republish/expiry race, which
is exactly what the content-routing scenarios measure.

The store is deliberately simple: per content key an insertion-ordered mapping
``provider -> ProviderRecord``.  Re-adding a provider refreshes its expiry
without changing its position, reads filter expired records lazily, and
:meth:`ProviderStore.expire` sweeps them out (the simulation calls it
periodically so memory stays bounded at scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.libp2p.peer_id import PeerId

#: go-ipfs provider-record lifetime (24 h).
DEFAULT_PROVIDER_TTL = 24 * 3_600.0
#: go-ipfs reprovide interval (12 h) — half the TTL, so a live provider's
#: records never expire.
DEFAULT_REPUBLISH_INTERVAL = 12 * 3_600.0


@dataclass(frozen=True)
class ProviderRecord:
    """One stored (content key, provider) assertion with its expiry."""

    key: int
    provider: PeerId
    added_at: float
    expires_at: float

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at


class ProviderStore:
    """TTL-expiring provider records of one DHT server."""

    __slots__ = ("ttl", "_records", "records_added")

    def __init__(self, ttl: float = DEFAULT_PROVIDER_TTL) -> None:
        if ttl <= 0:
            raise ValueError(f"provider TTL must be positive, got {ttl}")
        self.ttl = ttl
        self._records: Dict[int, Dict[PeerId, ProviderRecord]] = {}
        #: total ADD_PROVIDER messages accepted (including refreshes)
        self.records_added = 0

    # -- writes -----------------------------------------------------------------

    def add(
        self,
        key: int,
        provider: PeerId,
        now: float,
        ttl: Optional[float] = None,
    ) -> ProviderRecord:
        """Store (or refresh) a provider record; returns the stored record."""
        record = ProviderRecord(
            key=key,
            provider=provider,
            added_at=now,
            expires_at=now + (self.ttl if ttl is None else ttl),
        )
        self._records.setdefault(key, {})[provider] = record
        self.records_added += 1
        return record

    def remove(self, key: int, provider: PeerId) -> bool:
        """Drop one provider record; returns True if it existed."""
        per_key = self._records.get(key)
        if per_key is None or provider not in per_key:
            return False
        del per_key[provider]
        if not per_key:
            del self._records[key]
        return True

    def expire(self, now: float) -> int:
        """Sweep out every expired record; returns how many were dropped."""
        dropped = 0
        for key in list(self._records):
            per_key = self._records[key]
            for provider in [p for p, r in per_key.items() if r.is_expired(now)]:
                del per_key[provider]
                dropped += 1
            if not per_key:
                del self._records[key]
        return dropped

    # -- reads ------------------------------------------------------------------

    def providers(self, key: int, now: float, limit: Optional[int] = None) -> List[PeerId]:
        """Live providers of ``key`` in insertion order (expired filtered)."""
        per_key = self._records.get(key)
        if not per_key:
            return []
        live = [r.provider for r in per_key.values() if not r.is_expired(now)]
        return live if limit is None else live[:limit]

    def records_for(self, key: int, now: float) -> List[ProviderRecord]:
        """Live records of ``key`` in insertion order."""
        per_key = self._records.get(key)
        if not per_key:
            return []
        return [r for r in per_key.values() if not r.is_expired(now)]

    def has_providers(self, key: int, now: float) -> bool:
        return bool(self.providers(key, now, limit=1))

    def keys(self) -> Iterable[int]:
        """Every key with at least one stored (possibly expired) record."""
        return self._records.keys()

    def key_count(self) -> int:
        return len(self._records)

    def __len__(self) -> int:
        """Stored records, including expired ones not yet swept."""
        return sum(len(per_key) for per_key in self._records.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ProviderStore(keys={self.key_count()}, records={len(self)})"
