"""k-bucket routing tables.

Each Kademlia node keeps up to ``k`` peers per distance bucket.  IPFS uses
``k = 20``.  The routing table only ever contains DHT-Servers (peers announcing
``/ipfs/kad/1.0.0``); this is the structural reason why crawlers — which walk
routing tables — can never observe DHT-Clients, a distinction the paper's
horizon comparison (Fig. 2) relies on.

Lookup performance matters here: every FIND_NODE a simulated DHT-Server
answers goes through :meth:`RoutingTable.closest_peers`.  Buckets therefore
store precomputed ``(key, pid)`` pairs in an insertion-ordered mapping (O(1)
``touch``/``remove``), and ``closest_peers`` walks buckets in ascending
distance order instead of sorting the whole table:  for a fixed target, the
XOR distances of any two non-empty buckets occupy *disjoint* ranges, so
traversal can stop as soon as enough candidates have been collected and only
those candidates go through ``heapq.nsmallest``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.kademlia.keys import KEY_BITS, bucket_index, key_for_peer
from repro.libp2p.peer_id import PeerId

#: IPFS bucket size.
DEFAULT_BUCKET_SIZE = 20


class KBucket:
    """A single k-bucket with least-recently-seen eviction order.

    Entries are kept in an insertion-ordered mapping ``pid -> kad key`` —
    oldest (least recently seen) first, like the original Kademlia paper —
    which makes membership, ``touch`` and ``remove`` O(1) instead of the
    list-scan the naive representation needs.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = DEFAULT_BUCKET_SIZE) -> None:
        self.capacity = capacity
        self._entries: Dict[PeerId, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, peer: PeerId) -> bool:
        return peer in self._entries

    @property
    def peers(self) -> List[PeerId]:
        """Peers in LRU order (oldest first)."""
        return list(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def entries(self) -> Iterator[Tuple[int, PeerId]]:
        """Iterate ``(kad key, pid)`` pairs in LRU order."""
        for pid, key in self._entries.items():
            yield key, pid

    def touch(self, peer: PeerId, key: Optional[int] = None) -> bool:
        """Record activity from ``peer``.

        Returns True if the peer is now in the bucket.  A known peer moves to
        the tail (most recently seen); a new peer is appended if there is room.
        Kademlia's ping-the-oldest eviction is simplified to "drop the new peer
        when full", which is also what go-libp2p effectively does for unreplaced
        entries.
        """
        entries = self._entries
        known = entries.pop(peer, None)
        if known is not None:
            entries[peer] = known
            return True
        if len(entries) < self.capacity:
            entries[peer] = key if key is not None else key_for_peer(peer)
            return True
        return False

    def remove(self, peer: PeerId) -> bool:
        return self._entries.pop(peer, None) is not None

    def oldest(self) -> Optional[PeerId]:
        return next(iter(self._entries), None)


def _bucket_min_distance(diff: int, index: int) -> int:
    """Smallest possible XOR distance to the target of any key in bucket ``index``.

    ``diff`` is ``local_key ^ target``.  Keys in bucket ``index`` agree with the
    local key above bit ``index`` and differ at bit ``index``, so their distance
    to the target has ``diff``'s bits above ``index``, the flipped ``diff`` bit
    at ``index``, and anything below — the per-bucket distance ranges are
    disjoint, which is what makes ordered early-exit traversal exact.
    """
    high = diff >> (index + 1) << (index + 1)
    flipped = ((diff >> index) & 1) ^ 1
    return high | (flipped << index)


class RoutingTable:
    """A full Kademlia routing table for one local peer."""

    def __init__(self, local_peer: PeerId, bucket_size: int = DEFAULT_BUCKET_SIZE) -> None:
        self.local_peer = local_peer
        self.local_key = key_for_peer(local_peer)
        self.bucket_size = bucket_size
        self._buckets: Dict[int, KBucket] = {}

    # -- updates ---------------------------------------------------------------

    def add_peer(self, peer: PeerId) -> bool:
        """Try to insert/refresh ``peer``; returns True if it is (now) present."""
        if peer == self.local_peer:
            return False
        key = key_for_peer(peer)
        index = (key ^ self.local_key).bit_length() - 1
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = KBucket(capacity=self.bucket_size)
        return bucket.touch(peer, key)

    def add_peers(self, peers: Iterable[PeerId]) -> int:
        """Insert many peers; returns how many ended up in the table."""
        added = 0
        for peer in peers:
            if self.add_peer(peer):
                added += 1
        return added

    def remove_peer(self, peer: PeerId) -> bool:
        if peer == self.local_peer:
            return False
        index = bucket_index(self.local_key, key_for_peer(peer))
        bucket = self._buckets.get(index)
        if bucket is None:
            return False
        removed = bucket.remove(peer)
        if removed and not len(bucket):
            del self._buckets[index]
        return removed

    # -- queries ---------------------------------------------------------------

    def __contains__(self, peer: PeerId) -> bool:
        if peer == self.local_peer:
            return False
        index = bucket_index(self.local_key, key_for_peer(peer))
        bucket = self._buckets.get(index)
        return bucket is not None and peer in bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def all_peers(self) -> List[PeerId]:
        peers: List[PeerId] = []
        for index in sorted(self._buckets):
            peers.extend(self._buckets[index].peers)
        return peers

    def bucket_for(self, peer: PeerId) -> Optional[KBucket]:
        if peer == self.local_peer:
            return None
        index = bucket_index(self.local_key, key_for_peer(peer))
        return self._buckets.get(index)

    def nonempty_bucket_indices(self) -> List[int]:
        return sorted(self._buckets)

    def closest_peers(self, target: int, count: int) -> List[PeerId]:
        """Return up to ``count`` known peers closest (XOR) to ``target``.

        Buckets are visited in ascending order of their minimum distance to the
        target; because per-bucket distance ranges are disjoint, traversal
        stops once ``count`` candidates have been collected and only those are
        ranked, instead of sorting the entire table per query.
        """
        if count <= 0:
            return []
        buckets = self._buckets
        diff = self.local_key ^ target
        order = sorted(buckets, key=lambda i: _bucket_min_distance(diff, i))
        candidates: List[Tuple[int, PeerId]] = []
        for index in order:
            candidates.extend(buckets[index].entries())
            if len(candidates) >= count:
                break
        if len(candidates) <= count:
            candidates.sort(key=lambda kp: kp[0] ^ target)
            return [pid for _, pid in candidates]
        best = heapq.nsmallest(count, candidates, key=lambda kp: kp[0] ^ target)
        return [pid for _, pid in best]

    def neighborhood(self, count: int) -> List[PeerId]:
        """Peers closest to the local key (the node's DHT neighbourhood)."""
        return self.closest_peers(self.local_key, count)

    def depth(self) -> int:
        """Highest populated common-prefix length (how 'deep' the table goes)."""
        if not self._buckets:
            return 0
        # Smaller bucket index == closer peers == deeper common prefix.
        return KEY_BITS - 1 - min(self._buckets)
