"""k-bucket routing tables.

Each Kademlia node keeps up to ``k`` peers per distance bucket.  IPFS uses
``k = 20``.  The routing table only ever contains DHT-Servers (peers announcing
``/ipfs/kad/1.0.0``); this is the structural reason why crawlers — which walk
routing tables — can never observe DHT-Clients, a distinction the paper's
horizon comparison (Fig. 2) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.kademlia.keys import KEY_BITS, bucket_index, key_for_peer, xor_distance
from repro.libp2p.peer_id import PeerId

#: IPFS bucket size.
DEFAULT_BUCKET_SIZE = 20


@dataclass
class KBucket:
    """A single k-bucket with least-recently-seen eviction order."""

    capacity: int = DEFAULT_BUCKET_SIZE
    # Oldest (least recently seen) first, like the original Kademlia paper.
    peers: List[PeerId] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.peers)

    def __contains__(self, peer: PeerId) -> bool:
        return peer in self.peers

    @property
    def is_full(self) -> bool:
        return len(self.peers) >= self.capacity

    def touch(self, peer: PeerId) -> bool:
        """Record activity from ``peer``.

        Returns True if the peer is now in the bucket.  A known peer moves to
        the tail (most recently seen); a new peer is appended if there is room.
        Kademlia's ping-the-oldest eviction is simplified to "drop the new peer
        when full", which is also what go-libp2p effectively does for unreplaced
        entries.
        """
        if peer in self.peers:
            self.peers.remove(peer)
            self.peers.append(peer)
            return True
        if not self.is_full:
            self.peers.append(peer)
            return True
        return False

    def remove(self, peer: PeerId) -> bool:
        if peer in self.peers:
            self.peers.remove(peer)
            return True
        return False

    def oldest(self) -> Optional[PeerId]:
        return self.peers[0] if self.peers else None


class RoutingTable:
    """A full Kademlia routing table for one local peer."""

    def __init__(self, local_peer: PeerId, bucket_size: int = DEFAULT_BUCKET_SIZE) -> None:
        self.local_peer = local_peer
        self.local_key = key_for_peer(local_peer)
        self.bucket_size = bucket_size
        self._buckets: Dict[int, KBucket] = {}

    # -- updates ---------------------------------------------------------------

    def add_peer(self, peer: PeerId) -> bool:
        """Try to insert/refresh ``peer``; returns True if it is (now) present."""
        if peer == self.local_peer:
            return False
        index = bucket_index(self.local_key, key_for_peer(peer))
        bucket = self._buckets.setdefault(index, KBucket(capacity=self.bucket_size))
        return bucket.touch(peer)

    def add_peers(self, peers: Iterable[PeerId]) -> int:
        """Insert many peers; returns how many ended up in the table."""
        added = 0
        for peer in peers:
            if self.add_peer(peer):
                added += 1
        return added

    def remove_peer(self, peer: PeerId) -> bool:
        if peer == self.local_peer:
            return False
        index = bucket_index(self.local_key, key_for_peer(peer))
        bucket = self._buckets.get(index)
        if bucket is None:
            return False
        removed = bucket.remove(peer)
        if removed and not bucket.peers:
            del self._buckets[index]
        return removed

    # -- queries ---------------------------------------------------------------

    def __contains__(self, peer: PeerId) -> bool:
        if peer == self.local_peer:
            return False
        index = bucket_index(self.local_key, key_for_peer(peer))
        bucket = self._buckets.get(index)
        return bucket is not None and peer in bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def all_peers(self) -> List[PeerId]:
        peers: List[PeerId] = []
        for index in sorted(self._buckets):
            peers.extend(self._buckets[index].peers)
        return peers

    def bucket_for(self, peer: PeerId) -> Optional[KBucket]:
        if peer == self.local_peer:
            return None
        index = bucket_index(self.local_key, key_for_peer(peer))
        return self._buckets.get(index)

    def nonempty_bucket_indices(self) -> List[int]:
        return sorted(self._buckets)

    def closest_peers(self, target: int, count: int) -> List[PeerId]:
        """Return up to ``count`` known peers closest (XOR) to ``target``."""
        peers = self.all_peers()
        peers.sort(key=lambda p: xor_distance(key_for_peer(p), target))
        return peers[:count]

    def neighborhood(self, count: int) -> List[PeerId]:
        """Peers closest to the local key (the node's DHT neighbourhood)."""
        return self.closest_peers(self.local_key, count)

    def depth(self) -> int:
        """Highest populated common-prefix length (how 'deep' the table goes)."""
        if not self._buckets:
            return 0
        # Smaller bucket index == closer peers == deeper common prefix.
        return KEY_BITS - 1 - min(self._buckets)
