"""Kademlia keyspace arithmetic.

Keys are 256-bit integers (the SHA-256 digest behind a PeerId).  Distance is
XOR; the bucket index of a remote key relative to a local key is the position
of the highest differing bit (equivalently ``KEY_BITS - 1 - cpl`` where ``cpl``
is the common prefix length).
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

from repro.libp2p.peer_id import PeerId

#: Width of the Kademlia keyspace (SHA-256).
KEY_BITS = 256

_KEY_MASK = (1 << KEY_BITS) - 1


def key_for_peer(peer: PeerId) -> int:
    """Map a PeerId to its integer Kademlia key."""
    return peer.kad_key()


def key_for_content(data: bytes) -> int:
    """Map arbitrary content (e.g. a provider record key) into the keyspace."""
    return int.from_bytes(hashlib.sha256(data).digest(), "big")


def xor_distance(a: int, b: int) -> int:
    """XOR distance between two keys."""
    return (a ^ b) & _KEY_MASK


def common_prefix_length(a: int, b: int) -> int:
    """Number of leading bits shared by ``a`` and ``b`` (0..KEY_BITS)."""
    dist = xor_distance(a, b)
    if dist == 0:
        return KEY_BITS
    return KEY_BITS - dist.bit_length()


def bucket_index(local: int, remote: int) -> int:
    """Bucket index of ``remote`` in ``local``'s routing table (0..KEY_BITS-1).

    Bucket ``i`` holds peers whose distance has its highest set bit at position
    ``i``; larger indices mean farther peers.  Raises for ``local == remote``
    because a node never stores itself.
    """
    dist = xor_distance(local, remote)
    if dist == 0:
        raise ValueError("a key has no bucket relative to itself")
    return dist.bit_length() - 1


def random_key_in_bucket(local: int, index: int, rng: Optional[random.Random] = None) -> int:
    """Generate a key that falls into bucket ``index`` of ``local``.

    Crawlers use this to craft FIND_NODE targets that enumerate every bucket of
    a remote peer.
    """
    if not 0 <= index < KEY_BITS:
        raise ValueError(f"bucket index out of range: {index}")
    rng = rng or random
    # Flip bit ``index`` and randomise all lower bits.
    prefix = local >> (index + 1) << (index + 1)
    top_bit = ((local >> index) & 1) ^ 1
    lower = rng.getrandbits(index) if index > 0 else 0
    return prefix | (top_bit << index) | lower


def random_key(rng: Optional[random.Random] = None) -> int:
    """Uniformly random key, e.g. for routing-table refresh lookups."""
    rng = rng or random
    return rng.getrandbits(KEY_BITS)
