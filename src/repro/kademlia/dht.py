"""Kademlia node logic: server/client modes and iterative lookups.

The transport is abstracted as *query functions*: ``query(remote, target,
count)`` asks ``remote`` for its ``count`` closest known peers to ``target``
and returns ``None`` when the remote is unreachable (offline, NATed, or not a
DHT-Server).  The simulation network, the hydra heads, and the crawler all
provide such a function, so the same lookup code is reused everywhere.

Content routing reuses the same convergence machinery with two more RPCs:
``add_provider(remote, key, provider)`` stores a provider record on a remote
server and ``get_providers(remote, key)`` returns ``(providers, closer_peers)``
— the combined reply real GET_PROVIDERS messages carry.  The module-level
:func:`iterative_lookup` / :func:`iterative_find_providers` functions run the
walks for callers that are not full :class:`KademliaNode` instances (simulated
remote peers publish and resolve content without owning a node object).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Set, Tuple

from repro.kademlia.keys import key_for_peer, random_key, xor_distance
from repro.kademlia.provider_store import ProviderStore
from repro.kademlia.routing_table import DEFAULT_BUCKET_SIZE, RoutingTable
from repro.libp2p.peer_id import PeerId

#: go-libp2p-kad-dht concurrency parameter (alpha).
DEFAULT_ALPHA = 3
#: Number of closest peers a FIND_NODE reply carries.
DEFAULT_CLOSER_PEERS = 20


class DHTMode(enum.Enum):
    """Participation mode in the DHT.

    Servers answer routing queries and appear in other peers' routing tables;
    clients only issue queries.  go-ipfs auto-detects the mode from NAT status,
    and the paper observes peers flapping between the two (Section IV.B).
    """

    SERVER = "server"
    CLIENT = "client"


QueryFn = Callable[[PeerId, int, int], Optional[List[PeerId]]]
#: add_provider(remote, key, provider) -> stored? (None: remote unreachable)
AddProviderFn = Callable[[PeerId, int, PeerId], Optional[bool]]
#: get_providers(remote, key) -> (providers, closer peers) or None (unreachable)
GetProvidersFn = Callable[[PeerId, int], Optional[Tuple[List[PeerId], List[PeerId]]]]


@dataclass
class LookupResult:
    """Outcome of an iterative lookup."""

    target: int
    closest: List[PeerId]
    queried: Set[PeerId] = field(default_factory=set)
    discovered: Set[PeerId] = field(default_factory=set)
    hops: int = 0

    def succeeded(self) -> bool:
        return bool(self.closest)


@dataclass
class ProvideResult:
    """Outcome of publishing one provider record (a PROVIDE operation)."""

    key: int
    #: servers that accepted the record, in distance order
    stored_on: List[PeerId]
    lookup: LookupResult

    def succeeded(self) -> bool:
        return bool(self.stored_on)

    @property
    def hops(self) -> int:
        return self.lookup.hops


@dataclass
class FindProvidersResult:
    """Outcome of resolving one content key (a FIND_PROVIDERS operation)."""

    key: int
    #: distinct providers in discovery order
    providers: List[PeerId]
    queried: Set[PeerId] = field(default_factory=set)
    hops: int = 0
    #: True when the walk stopped early because enough providers were found
    satisfied: bool = False

    def succeeded(self) -> bool:
        return bool(self.providers)


def iterative_lookup(
    target: int,
    query: QueryFn,
    seeds: Iterable[PeerId],
    self_id: Optional[PeerId] = None,
    alpha: int = DEFAULT_ALPHA,
    count: int = DEFAULT_CLOSER_PEERS,
    max_queries: int = 64,
    on_found: Optional[Callable[[PeerId], None]] = None,
    stop: Optional[Callable[[], bool]] = None,
    give_up: Optional[Callable[[], bool]] = None,
    retry=None,
    trace=None,
) -> LookupResult:
    """Iteratively converge on the ``count`` peers closest to ``target``.

    Standard Kademlia: repeatedly query the ``alpha`` closest not-yet queried
    candidates, merge the replies, stop when no candidate closer than the
    current best remains or ``max_queries`` is exhausted.  ``on_found`` is
    invoked for every peer a reply carries (nodes use it to refresh their
    routing tables; table-less callers pass nothing).  ``stop`` is re-checked
    after every reply; content-routing walks use it to end the walk early the
    moment their side-goal (enough provider records) is met.  ``give_up`` is
    the failure-side twin: re-checked after every query, it abandons the walk
    when its budget (e.g. a netmodel's simulated-time lookup timeout) is
    exhausted — the result keeps whatever was found, but does not count as a
    satisfied early stop.  ``retry`` is an optional duck-typed executor with
    a ``call(fn, *args)`` method (:class:`repro.faults.retry.RetryState`)
    that re-issues ``None``-answered queries with backoff; ``None`` keeps the
    single-shot behaviour.  ``trace`` is an optional duck-typed span tracer
    (:class:`repro.obs.spans.SpanTracer`) whose ``hop(n)`` is told the
    current batch number so the fabric's RPC leaves carry it; the walk never
    reads anything back from it.
    """
    candidates: Set[PeerId] = set(seeds)
    if self_id is not None:
        candidates.discard(self_id)
    queried: Set[PeerId] = set()
    discovered: Set[PeerId] = set(candidates)
    hops = 0
    stopped = False
    expired = False

    def dist(peer: PeerId) -> int:
        return xor_distance(key_for_peer(peer), target)

    while len(queried) < max_queries and not stopped and not expired:
        if give_up is not None and give_up():
            break
        remaining = sorted(candidates - queried, key=dist)
        if not remaining:
            break
        best_known = sorted(candidates, key=dist)[:count]
        budget = max_queries - len(queried)
        batch = remaining[: min(alpha, budget)]
        progressed = False
        hops += 1
        if trace is not None:
            trace.hop(hops)
        for peer in batch:
            queried.add(peer)
            if retry is None:
                reply = query(peer, target, count)
            else:
                reply = retry.call(query, peer, target, count)
            if give_up is not None and give_up():
                expired = True
            if reply is None:
                if expired:
                    break
                continue
            for found in reply:
                if found == self_id:
                    continue
                discovered.add(found)
                if found not in candidates:
                    candidates.add(found)
                    progressed = True
                if on_found is not None:
                    on_found(found)
            if stop is not None and stop():
                stopped = True
            if stopped or expired:
                break
        if stopped or expired:
            break
        new_best = sorted(candidates, key=dist)[:count]
        if not progressed and new_best == best_known:
            break

    closest = sorted(candidates, key=dist)[:count]
    return LookupResult(
        target=target,
        closest=closest,
        queried=queried,
        discovered=discovered,
        hops=hops,
    )


def iterative_provide(
    key: int,
    query: QueryFn,
    add_provider: AddProviderFn,
    provider: PeerId,
    seeds: Iterable[PeerId],
    replication: int = DEFAULT_CLOSER_PEERS,
    alpha: int = DEFAULT_ALPHA,
    max_queries: int = 64,
    on_found: Optional[Callable[[PeerId], None]] = None,
    give_up: Optional[Callable[[], bool]] = None,
    retry=None,
    trace=None,
) -> ProvideResult:
    """Publish a provider record: converge on ``key`` and store the record on
    the ``replication`` closest servers that accept it.  A walk abandoned by
    ``give_up`` still stores on the closest servers found so far.  ``retry``
    (duck-typed, see :func:`iterative_lookup`) re-issues lost queries and
    lost store RPCs with backoff; ``trace`` annotates the walk's RPC leaves
    with their hop number (0 marks the store phase)."""
    lookup = iterative_lookup(
        key,
        query,
        seeds,
        self_id=provider,
        alpha=alpha,
        count=max(replication, DEFAULT_CLOSER_PEERS),
        max_queries=max_queries,
        on_found=on_found,
        give_up=give_up,
        retry=retry,
        trace=trace,
    )
    stored_on: List[PeerId] = []
    if trace is not None:
        trace.hop(0)
    for peer in lookup.closest:
        if len(stored_on) >= replication:
            break
        if retry is None:
            stored = add_provider(peer, key, provider)
        else:
            stored = retry.call(add_provider, peer, key, provider)
        if stored:
            stored_on.append(peer)
    return ProvideResult(key=key, stored_on=stored_on, lookup=lookup)


def iterative_find_providers(
    key: int,
    query_providers: GetProvidersFn,
    seeds: Iterable[PeerId],
    self_id: Optional[PeerId] = None,
    alpha: int = DEFAULT_ALPHA,
    count: int = DEFAULT_CLOSER_PEERS,
    max_queries: int = 64,
    max_providers: int = DEFAULT_CLOSER_PEERS,
    on_found: Optional[Callable[[PeerId], None]] = None,
    give_up: Optional[Callable[[], bool]] = None,
    retry=None,
    trace=None,
) -> FindProvidersResult:
    """Resolve the providers of ``key``.

    The walk *is* :func:`iterative_lookup` — GET_PROVIDERS replies are
    adapted into FIND_NODE-shaped ones (their provider payload accumulates on
    the side) and the shared walk stops early once ``max_providers`` distinct
    providers are known.  ``retry`` (duck-typed, see
    :func:`iterative_lookup`) re-issues lost GET_PROVIDERS with backoff; the
    adapter is idempotent, so a retried reply never double-counts providers.
    """
    providers: List[PeerId] = []
    provider_set: Set[PeerId] = set()

    def query_adapter(peer: PeerId, target: int, reply_count: int) -> Optional[List[PeerId]]:
        reply = query_providers(peer, key)
        if reply is None:
            return None
        found_providers, closer = reply
        for candidate in found_providers:
            if candidate not in provider_set:
                provider_set.add(candidate)
                providers.append(candidate)
        return closer

    lookup = iterative_lookup(
        key,
        query_adapter,
        seeds,
        self_id=self_id,
        alpha=alpha,
        count=count,
        max_queries=max_queries,
        on_found=on_found,
        stop=lambda: len(providers) >= max_providers,
        give_up=give_up,
        retry=retry,
        trace=trace,
    )
    return FindProvidersResult(
        key=key,
        providers=providers,
        queried=lookup.queried,
        hops=lookup.hops,
        satisfied=len(providers) >= max_providers,
    )


class KademliaNode:
    """The DHT state machine of a single peer."""

    def __init__(
        self,
        peer_id: PeerId,
        mode: DHTMode = DHTMode.SERVER,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        alpha: int = DEFAULT_ALPHA,
        rng: Optional[random.Random] = None,
        provider_store: Optional[ProviderStore] = None,
    ) -> None:
        self.peer_id = peer_id
        self.mode = mode
        self.alpha = alpha
        self.rng = rng or random.Random()
        self.routing_table = RoutingTable(peer_id, bucket_size=bucket_size)
        self.provider_store = provider_store or ProviderStore()
        self.lookups_performed = 0
        self.provides_performed = 0
        self.provider_lookups_performed = 0

    # -- mode handling ----------------------------------------------------------

    def set_mode(self, mode: DHTMode) -> None:
        self.mode = mode

    @property
    def is_server(self) -> bool:
        return self.mode is DHTMode.SERVER

    # -- local RPC handlers ------------------------------------------------------

    def handle_find_node(
        self, target: int, count: int = DEFAULT_CLOSER_PEERS
    ) -> Optional[List[PeerId]]:
        """Answer a FIND_NODE request; clients do not answer."""
        if not self.is_server:
            return None
        return self.routing_table.closest_peers(target, count)

    def handle_add_provider(self, key: int, provider: PeerId, now: float) -> Optional[bool]:
        """Store a provider record; clients do not accept them."""
        if not self.is_server:
            return None
        self.provider_store.add(key, provider, now)
        return True

    def handle_get_providers(
        self, key: int, now: float, count: int = DEFAULT_CLOSER_PEERS
    ) -> Optional[Tuple[List[PeerId], List[PeerId]]]:
        """Answer a GET_PROVIDERS request: (known providers, closer peers)."""
        if not self.is_server:
            return None
        providers = self.provider_store.providers(key, now, limit=count)
        closer = self.routing_table.closest_peers(key, count)
        return providers, closer

    def observe_peer(self, peer: PeerId, is_server: bool = True) -> None:
        """Record that we heard from ``peer`` (only servers enter the table)."""
        if is_server:
            self.routing_table.add_peer(peer)
        else:
            self.routing_table.remove_peer(peer)

    def forget_peer(self, peer: PeerId) -> None:
        self.routing_table.remove_peer(peer)

    # -- iterative lookup ---------------------------------------------------------

    def iterative_find_node(
        self,
        target: int,
        query: QueryFn,
        count: int = DEFAULT_CLOSER_PEERS,
        max_queries: int = 64,
        seeds: Optional[Iterable[PeerId]] = None,
    ) -> LookupResult:
        """Iteratively converge on the ``count`` peers closest to ``target``.

        Standard Kademlia: repeatedly query the ``alpha`` closest not-yet
        queried candidates, merge the replies, stop when no candidate closer
        than the current best remains or ``max_queries`` is exhausted.
        """
        self.lookups_performed += 1
        candidates: Set[PeerId] = set(seeds or [])
        candidates.update(self.routing_table.closest_peers(target, count))
        return iterative_lookup(
            target,
            query,
            candidates,
            self_id=self.peer_id,
            alpha=self.alpha,
            count=count,
            max_queries=max_queries,
            on_found=self.routing_table.add_peer,
        )

    # -- content routing ----------------------------------------------------------

    def provide(
        self,
        key: int,
        query: QueryFn,
        add_provider: AddProviderFn,
        now: float,
        replication: int = DEFAULT_CLOSER_PEERS,
        max_queries: int = 64,
        seeds: Optional[Iterable[PeerId]] = None,
    ) -> ProvideResult:
        """Publish a provider record for ``key`` under our own PeerId.

        Converges on the key, asks the ``replication`` closest servers to
        store the record, and keeps a local copy (go-ipfs also serves its own
        records while online).
        """
        self.provides_performed += 1
        candidates: Set[PeerId] = set(seeds or [])
        candidates.update(self.routing_table.closest_peers(key, replication))
        result = iterative_provide(
            key,
            query,
            add_provider,
            self.peer_id,
            candidates,
            replication=replication,
            alpha=self.alpha,
            max_queries=max_queries,
            on_found=self.routing_table.add_peer,
        )
        self.provider_store.add(key, self.peer_id, now)
        return result

    def find_providers(
        self,
        key: int,
        query_providers: GetProvidersFn,
        now: float,
        count: int = DEFAULT_CLOSER_PEERS,
        max_queries: int = 64,
        max_providers: int = DEFAULT_CLOSER_PEERS,
        seeds: Optional[Iterable[PeerId]] = None,
    ) -> FindProvidersResult:
        """Resolve the providers of ``key``, checking the local store first."""
        self.provider_lookups_performed += 1
        local = self.provider_store.providers(key, now, limit=max_providers)
        if len(local) >= max_providers:
            return FindProvidersResult(
                key=key, providers=local, queried=set(), hops=0, satisfied=True
            )
        candidates: Set[PeerId] = set(seeds or [])
        candidates.update(self.routing_table.closest_peers(key, count))
        result = iterative_find_providers(
            key,
            query_providers,
            candidates,
            self_id=self.peer_id,
            alpha=self.alpha,
            count=count,
            max_queries=max_queries,
            max_providers=max_providers,
            on_found=self.routing_table.add_peer,
        )
        if local:
            merged = list(local)
            seen = set(local)
            for provider in result.providers:
                if provider not in seen:
                    seen.add(provider)
                    merged.append(provider)
            result = FindProvidersResult(
                key=key,
                providers=merged[:max_providers],
                queried=result.queried,
                hops=result.hops,
                satisfied=result.satisfied or len(merged) >= max_providers,
            )
        return result

    def bootstrap(
        self,
        bootstrap_peers: Iterable[PeerId],
        query: QueryFn,
        refresh_lookups: int = 3,
    ) -> LookupResult:
        """Join the DHT: seed the table with bootstrap peers and self-lookup.

        Afterwards a few random-key refresh lookups spread the table across the
        keyspace, like go-libp2p's routing table refresh.
        """
        seeds = list(bootstrap_peers)
        for peer in seeds:
            self.routing_table.add_peer(peer)
        result = self.iterative_find_node(key_for_peer(self.peer_id), query, seeds=seeds)
        for _ in range(refresh_lookups):
            self.iterative_find_node(random_key(self.rng), query)
        return result

    def refresh(self, query: QueryFn, lookups: int = 1) -> None:
        """Periodic routing-table refresh (random-target lookups)."""
        for _ in range(lookups):
            self.iterative_find_node(random_key(self.rng), query)

    # -- introspection -----------------------------------------------------------

    def table_size(self) -> int:
        return len(self.routing_table)

    def neighborhood(self, count: int = DEFAULT_CLOSER_PEERS) -> List[PeerId]:
        return self.routing_table.neighborhood(count)
