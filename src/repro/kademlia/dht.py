"""Kademlia node logic: server/client modes and iterative lookups.

The transport is abstracted as a *query function*: ``query(remote, target,
count)`` asks ``remote`` for its ``count`` closest known peers to ``target``
and returns ``None`` when the remote is unreachable (offline, NATed, or not a
DHT-Server).  The simulation network, the hydra heads, and the crawler all
provide such a function, so the same lookup code is reused everywhere.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.kademlia.keys import key_for_peer, random_key, xor_distance
from repro.kademlia.routing_table import DEFAULT_BUCKET_SIZE, RoutingTable
from repro.libp2p.peer_id import PeerId

#: go-libp2p-kad-dht concurrency parameter (alpha).
DEFAULT_ALPHA = 3
#: Number of closest peers a FIND_NODE reply carries.
DEFAULT_CLOSER_PEERS = 20


class DHTMode(enum.Enum):
    """Participation mode in the DHT.

    Servers answer routing queries and appear in other peers' routing tables;
    clients only issue queries.  go-ipfs auto-detects the mode from NAT status,
    and the paper observes peers flapping between the two (Section IV.B).
    """

    SERVER = "server"
    CLIENT = "client"


QueryFn = Callable[[PeerId, int, int], Optional[List[PeerId]]]


@dataclass
class LookupResult:
    """Outcome of an iterative lookup."""

    target: int
    closest: List[PeerId]
    queried: Set[PeerId] = field(default_factory=set)
    discovered: Set[PeerId] = field(default_factory=set)
    hops: int = 0

    def succeeded(self) -> bool:
        return bool(self.closest)


class KademliaNode:
    """The DHT state machine of a single peer."""

    def __init__(
        self,
        peer_id: PeerId,
        mode: DHTMode = DHTMode.SERVER,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        alpha: int = DEFAULT_ALPHA,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.peer_id = peer_id
        self.mode = mode
        self.alpha = alpha
        self.rng = rng or random.Random()
        self.routing_table = RoutingTable(peer_id, bucket_size=bucket_size)
        self.lookups_performed = 0

    # -- mode handling ----------------------------------------------------------

    def set_mode(self, mode: DHTMode) -> None:
        self.mode = mode

    @property
    def is_server(self) -> bool:
        return self.mode is DHTMode.SERVER

    # -- local RPC handlers ------------------------------------------------------

    def handle_find_node(self, target: int, count: int = DEFAULT_CLOSER_PEERS) -> Optional[List[PeerId]]:
        """Answer a FIND_NODE request; clients do not answer."""
        if not self.is_server:
            return None
        return self.routing_table.closest_peers(target, count)

    def observe_peer(self, peer: PeerId, is_server: bool = True) -> None:
        """Record that we heard from ``peer`` (only servers enter the table)."""
        if is_server:
            self.routing_table.add_peer(peer)
        else:
            self.routing_table.remove_peer(peer)

    def forget_peer(self, peer: PeerId) -> None:
        self.routing_table.remove_peer(peer)

    # -- iterative lookup ---------------------------------------------------------

    def iterative_find_node(
        self,
        target: int,
        query: QueryFn,
        count: int = DEFAULT_CLOSER_PEERS,
        max_queries: int = 64,
        seeds: Optional[Iterable[PeerId]] = None,
    ) -> LookupResult:
        """Iteratively converge on the ``count`` peers closest to ``target``.

        Standard Kademlia: repeatedly query the ``alpha`` closest not-yet
        queried candidates, merge the replies, stop when no candidate closer
        than the current best remains or ``max_queries`` is exhausted.
        """
        self.lookups_performed += 1
        candidates: Set[PeerId] = set(seeds or [])
        candidates.update(self.routing_table.closest_peers(target, count))
        candidates.discard(self.peer_id)
        queried: Set[PeerId] = set()
        discovered: Set[PeerId] = set(candidates)
        hops = 0

        def dist(peer: PeerId) -> int:
            return xor_distance(key_for_peer(peer), target)

        while len(queried) < max_queries:
            remaining = sorted(candidates - queried, key=dist)
            if not remaining:
                break
            best_known = sorted(candidates, key=dist)[:count]
            budget = max_queries - len(queried)
            batch = remaining[: min(self.alpha, budget)]
            progressed = False
            hops += 1
            for peer in batch:
                queried.add(peer)
                reply = query(peer, target, count)
                if reply is None:
                    continue
                for found in reply:
                    if found == self.peer_id:
                        continue
                    discovered.add(found)
                    if found not in candidates:
                        candidates.add(found)
                        progressed = True
                    self.routing_table.add_peer(found)
            new_best = sorted(candidates, key=dist)[:count]
            if not progressed and new_best == best_known:
                break

        closest = sorted(candidates, key=dist)[:count]
        return LookupResult(
            target=target,
            closest=closest,
            queried=queried,
            discovered=discovered,
            hops=hops,
        )

    def bootstrap(
        self,
        bootstrap_peers: Iterable[PeerId],
        query: QueryFn,
        refresh_lookups: int = 3,
    ) -> LookupResult:
        """Join the DHT: seed the table with bootstrap peers and self-lookup.

        Afterwards a few random-key refresh lookups spread the table across the
        keyspace, like go-libp2p's routing table refresh.
        """
        seeds = list(bootstrap_peers)
        for peer in seeds:
            self.routing_table.add_peer(peer)
        result = self.iterative_find_node(key_for_peer(self.peer_id), query, seeds=seeds)
        for _ in range(refresh_lookups):
            self.iterative_find_node(random_key(self.rng), query)
        return result

    def refresh(self, query: QueryFn, lookups: int = 1) -> None:
        """Periodic routing-table refresh (random-target lookups)."""
        for _ in range(lookups):
            self.iterative_find_node(random_key(self.rng), query)

    # -- introspection -----------------------------------------------------------

    def table_size(self) -> int:
        return len(self.routing_table)

    def neighborhood(self, count: int = DEFAULT_CLOSER_PEERS) -> List[PeerId]:
        return self.routing_table.neighborhood(count)
