"""A Kademlia DHT model (the routing substrate of IPFS).

IPFS peers participate in a Kademlia-based DHT (``/ipfs/kad/1.0.0``).  Two
properties matter for the paper:

* **DHT-Server vs DHT-Client.**  Only servers announce the kad protocol and are
  entered into other peers' routing tables; crawlers can therefore only ever
  see servers, while a passive node also observes clients (Fig. 1, Fig. 2).
* **Routing-table maintenance drives inbound connections.**  Servers actively
  look up and connect to peers close to themselves in XOR space, which is why a
  freshly bootstrapped measurement node quickly accumulates thousands of
  inbound connections.

The implementation provides the XOR metric, k-bucket routing tables, and
iterative lookups over an abstract query transport so the same code serves the
simulated nodes, the hydra heads, and the active crawler baseline.
"""

from repro.kademlia.keys import (
    KEY_BITS,
    bucket_index,
    common_prefix_length,
    key_for_peer,
    random_key_in_bucket,
    xor_distance,
)
from repro.kademlia.routing_table import KBucket, RoutingTable
from repro.kademlia.dht import (
    DHTMode,
    FindProvidersResult,
    KademliaNode,
    LookupResult,
    ProvideResult,
    iterative_find_providers,
    iterative_lookup,
    iterative_provide,
)
from repro.kademlia.provider_store import ProviderRecord, ProviderStore

__all__ = [
    "KEY_BITS",
    "xor_distance",
    "common_prefix_length",
    "bucket_index",
    "key_for_peer",
    "random_key_in_bucket",
    "KBucket",
    "RoutingTable",
    "DHTMode",
    "KademliaNode",
    "LookupResult",
    "ProvideResult",
    "FindProvidersResult",
    "ProviderRecord",
    "ProviderStore",
    "iterative_lookup",
    "iterative_provide",
    "iterative_find_providers",
]
