"""Experiment definitions: the paper's measurement periods and reference values.

``periods`` maps the paper's Table I onto runnable scenario configurations
(with population-scaled connection-manager watermarks), ``paper_values`` holds
every number the paper reports that the benchmarks compare against, and
``runner`` executes periods with in-session caching so multiple benchmarks can
share one simulation run.
"""

from repro.experiments.paper_values import PAPER, PaperReference
from repro.experiments.periods import PERIODS, PeriodSpec, period, scale_watermarks
from repro.experiments.runner import (
    bench_workers,
    measure_periods,
    run_cells,
    run_period,
    run_period_cached,
    run_periods,
)

__all__ = [
    "PAPER",
    "PaperReference",
    "PERIODS",
    "PeriodSpec",
    "bench_workers",
    "measure_periods",
    "period",
    "run_cells",
    "run_period",
    "run_period_cached",
    "run_periods",
    "scale_watermarks",
]
