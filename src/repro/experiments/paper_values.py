"""Reference values reported in the paper.

Every benchmark prints the paper's reported numbers next to the values measured
on the simulated network, and EXPERIMENTS.md records both.  Keeping all of them
in one module avoids magic numbers scattered through benchmarks and makes the
calibration targets of the population generator auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class TableIIRow:
    """One row of Table II (connection statistics)."""

    period: str
    client: str
    kind: str            # "all" | "peer"
    count: int
    average: float
    median: float


@dataclass(frozen=True)
class TableIVRow:
    """One row of Table IV (peer classification)."""

    peer_class: str
    peers: int
    dht_servers: int


@dataclass(frozen=True)
class PaperReference:
    """All quantitative claims of the paper used by the reproduction."""

    # Section IV.B / Fig. 3 composition of the P4 data set
    total_pids: int = 65_853
    goipfs_pids: int = 50_254
    hydra_pids: int = 1_028
    crawler_pids: int = 586
    other_agent_pids: int = 10_926
    missing_agent_pids: int = 3_059
    distinct_agent_strings: int = 323
    distinct_goipfs_versions: int = 263
    distinct_other_agents: int = 61
    distinct_protocols: int = 101

    # Protocol support (Fig. 4 discussion)
    bitswap_support: int = 44_463
    goipfs_claiming: int = 50_163
    kad_support: int = 18_845
    goipfs_080_without_bitswap: int = 7_498

    # Table III: version changes
    version_upgrades: int = 218
    version_downgrades: int = 107
    version_changes: int = 205
    main_to_main: int = 291
    dirty_to_main: int = 9
    main_to_dirty: int = 5
    dirty_to_dirty: int = 225

    # Role / autonat flapping
    kad_flap_peers: int = 2_481
    kad_flap_changes: int = 68_396
    autonat_flap_peers: int = 3_603
    autonat_flap_changes: int = 86_651

    # Section V.A: multiaddress grouping of P4
    connected_pids: int = 62_204
    distinct_ips: int = 56_536
    ip_groups: int = 47_516
    singleton_groups: int = 44_301
    unique_ip_pids: int = 40_193
    largest_group_pids: int = 2_156
    hydra_heads_on_few_ips: int = 1_026
    hydra_ip_count: int = 11

    # Section V headline estimates
    estimated_network_size: int = 48_000
    core_network_size: int = 10_000
    max_simultaneous_connections: int = 16_000

    # Fig. 7 anchors
    fraction_connected_less_1h: float = 0.53
    fraction_connected_more_24h: float = 0.16
    fraction_single_connection: float = 0.50
    fraction_more_than_15_connections: float = 0.10

    # Fig. 6: the ~14 d measurement
    fig6_total_pids: float = 150_000
    fig6_duration_days: float = 14.0

    # Table II (connection statistics), keyed by (period, client, kind)
    table2: Tuple[TableIIRow, ...] = (
        TableIIRow("P0", "go-ipfs", "all", 1_285_513, 196.556, 73.732),
        TableIIRow("P0", "go-ipfs", "peer", 55_258, 695.946, 83.008),
        TableIIRow("P1", "go-ipfs", "all", 355_965, 802.617, 130.464),
        TableIIRow("P1", "go-ipfs", "peer", 41_880, 2_428.966, 580.312),
        TableIIRow("P2", "go-ipfs", "all", 285_357, 3_883.828, 85.404),
        TableIIRow("P2", "go-ipfs", "peer", 42_038, 19_676.930, 3_017.252),
        TableIIRow("P3", "go-ipfs", "all", 47_571, 120.613, 75.192),
        TableIIRow("P3", "go-ipfs", "peer", 10_004, 182.043, 72.964),
        TableIIRow("P0", "hydra-H0", "all", 1_733_511, 302.257, 78.833),
        TableIIRow("P0", "hydra-H0", "peer", 56_465, 2_445.300, 124.226),
        TableIIRow("P1", "hydra-H0", "all", 422_164, 660.900, 76.530),
        TableIIRow("P1", "hydra-H0", "peer", 43_550, 2_512.923, 541.492),
        TableIIRow("P2", "hydra-H0", "all", 416_711, 2_941.519, 65.181),
        TableIIRow("P2", "hydra-H0", "peer", 52_134, 16_553.299, 1_923.119),
        TableIIRow("P0", "hydra-H1", "all", 1_851_308, 285.506, 78.204),
        TableIIRow("P0", "hydra-H1", "peer", 64_147, 2_122.097, 117.375),
        TableIIRow("P1", "hydra-H1", "all", 538_366, 524.595, 77.110),
        TableIIRow("P1", "hydra-H1", "peer", 43_810, 2_099.077, 439.847),
        TableIIRow("P2", "hydra-H1", "all", 408_621, 3_003.313, 65.339),
        TableIIRow("P2", "hydra-H1", "peer", 48_889, 18_049.269, 2_365.113),
        TableIIRow("P0", "hydra-H2", "all", 1_890_556, 280.438, 79.585),
        TableIIRow("P0", "hydra-H2", "peer", 63_981, 1_883.970, 113.643),
    )

    # Table IV: classification of the P4 data set
    table4: Tuple[TableIVRow, ...] = (
        TableIVRow("heavy", 10_540, 1_449),
        TableIVRow("normal", 15_895, 1_420),
        TableIVRow("light", 16_880, 9_755),
        TableIVRow("one-time", 18_889, 6_108),
    )

    # Fig. 2: per-period PID counts of the passive vantage points (approximate
    # readings off the log-scale figure; "40k–65k different peer IDs").
    passive_pid_range: Tuple[int, int] = (40_000, 65_000)

    def table2_row(self, period: str, client: str, kind: str) -> TableIIRow:
        for row in self.table2:
            if row.period == period and row.client == client and row.kind == kind:
                return row
        raise KeyError((period, client, kind))

    def table4_row(self, peer_class: str) -> TableIVRow:
        for row in self.table4:
            if row.peer_class == peer_class:
                return row
        raise KeyError(peer_class)

    def table4_class_shares(self) -> Dict[str, float]:
        total = sum(row.peers for row in self.table4)
        return {row.peer_class: row.peers / total for row in self.table4}


#: the singleton reference object used throughout benchmarks and EXPERIMENTS.md
PAPER = PaperReference()
