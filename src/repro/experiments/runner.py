"""Running measurement periods, with in-session caching.

Several benchmarks analyse the same period (P4 feeds Fig. 3, Fig. 4, Fig. 7,
Table III, Table IV, and both Section V estimators), so the runner memoises
scenario results by their exact parameters.  A simulation run is deterministic
for a given (period, n_peers, duration, seed), so caching does not change any
result — it only avoids re-simulating.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.periods import PeriodSpec, period
from repro.simulation.scenario import Scenario, ScenarioResult

_CacheKey = Tuple[str, int, float, int, bool]
_CACHE: Dict[_CacheKey, ScenarioResult] = {}


def run_period(
    period_id: str,
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: int = 7,
    run_crawler: Optional[bool] = None,
) -> ScenarioResult:
    """Run one measurement period without caching."""
    spec = period(period_id)
    config = spec.scenario_config(
        n_peers=n_peers, seed=seed, duration_days=duration_days, run_crawler=run_crawler
    )
    return Scenario(config).run()


def run_period_cached(
    period_id: str,
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: int = 7,
    run_crawler: Optional[bool] = None,
) -> ScenarioResult:
    """Run one measurement period, memoising the result for this process."""
    spec = period(period_id)
    peers = n_peers if n_peers is not None else spec.bench_peers
    days = duration_days
    if days is None:
        days = spec.bench_duration_days if spec.bench_duration_days is not None else spec.duration_days
    crawler = spec.run_crawler if run_crawler is None else run_crawler
    key: _CacheKey = (period_id, peers, days, seed, crawler)
    if key not in _CACHE:
        _CACHE[key] = run_period(
            period_id, n_peers=peers, duration_days=days, seed=seed, run_crawler=crawler
        )
    return _CACHE[key]


def clear_cache() -> None:
    """Drop every cached scenario result (used by tests)."""
    _CACHE.clear()
