"""Running measurement periods, with in-session caching and parallelism.

Several benchmarks analyse the same period (P4 feeds Fig. 3, Fig. 4, Fig. 7,
Table III, Table IV, and both Section V estimators), so the runner memoises
scenario results by their exact parameters.  A simulation run is deterministic
for a given (period, n_peers, duration, seed), so caching does not change any
result — it only avoids re-simulating.

Independent periods can also run in separate worker processes: set
``REPRO_BENCH_WORKERS`` (or pass ``workers=``) and :func:`run_periods` /
:func:`measure_periods` will fan the six benchmark periods (P0–P14) out over a
process pool.  Each period is still simulated single-threaded and seeded, so
parallelism changes wall time only — never results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.periods import period
from repro.perf import PeriodPerf, measure_period
from repro.simulation.scenario import ScenarioResult, run_scenario

#: environment knob: number of worker processes for multi-period runs
BENCH_WORKERS_ENV = "REPRO_BENCH_WORKERS"

_CacheKey = Tuple[str, int, float, int, bool]
_CACHE: Dict[_CacheKey, ScenarioResult] = {}


def run_period(
    period_id: str,
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: int = 7,
    run_crawler: Optional[bool] = None,
) -> ScenarioResult:
    """Run one measurement period without caching."""
    spec = period(period_id)
    config = spec.scenario_config(
        n_peers=n_peers, seed=seed, duration_days=duration_days, run_crawler=run_crawler
    )
    return run_scenario(config)


def run_period_cached(
    period_id: str,
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: int = 7,
    run_crawler: Optional[bool] = None,
) -> ScenarioResult:
    """Run one measurement period, memoising the result for this process."""
    spec = period(period_id)
    peers = n_peers if n_peers is not None else spec.bench_peers
    days = duration_days
    if days is None:
        days = (
            spec.bench_duration_days
            if spec.bench_duration_days is not None
            else spec.duration_days
        )
    crawler = spec.run_crawler if run_crawler is None else run_crawler
    key: _CacheKey = (period_id, peers, days, seed, crawler)
    if key not in _CACHE:
        _CACHE[key] = run_period(
            period_id, n_peers=peers, duration_days=days, seed=seed, run_crawler=crawler
        )
    return _CACHE[key]


def clear_cache() -> None:
    """Drop every cached scenario result (used by tests)."""
    _CACHE.clear()


# -- multi-period / parallel execution ------------------------------------------


def bench_workers(default: int = 1) -> int:
    """Worker-process count from ``REPRO_BENCH_WORKERS`` (opt-in, default 1)."""
    raw = os.environ.get(BENCH_WORKERS_ENV, "")
    try:
        workers = int(raw)
    except ValueError:
        return default
    return max(1, workers) if raw else default


def run_cells(
    fn, cells: Iterable[Sequence], workers: Optional[int] = None, on_result=None
) -> List:
    """Apply ``fn(*cell)`` to every cell, optionally in a process pool.

    The generic fan-out behind both the multi-period benchmark runner and the
    scenario sweep CLI: results come back in input order, and because every
    cell is independently seeded the pool changes wall time only — never
    results.  ``fn`` must be a module-level callable (workers import it by
    name) and each cell a tuple of its positional arguments.

    ``on_result(index, result)`` is invoked in input order as each result
    becomes available — the sweep's checkpoint hook: a killed run has every
    completed prefix cell already written to disk.  (On the pool path a slow
    early cell delays the callbacks of later ones; the prefix on disk is
    still contiguous, which is all resume needs.)
    """
    cells = [tuple(cell) for cell in cells]
    workers = bench_workers() if workers is None else max(1, workers)
    results: List = []
    if workers <= 1 or len(cells) <= 1:
        for cell in cells:
            result = fn(*cell)
            if on_result is not None:
                on_result(len(results), result)
            results.append(result)
        return results
    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        futures = [pool.submit(fn, *cell) for cell in cells]
        for future in futures:
            result = future.result()
            if on_result is not None:
                on_result(len(results), result)
            results.append(result)
        return results


def _fan_out(fn, period_ids: Iterable[str], workers: Optional[int], **kwargs) -> List:
    """Apply ``fn(period_id, **kwargs)`` to every period, optionally in a pool."""
    return run_cells(partial(fn, **kwargs), [(pid,) for pid in period_ids], workers)


def run_periods(
    period_ids: Iterable[str],
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: int = 7,
    run_crawler: Optional[bool] = None,
    workers: Optional[int] = None,
) -> Dict[str, ScenarioResult]:
    """Run several measurement periods, optionally in parallel processes.

    Returns ``{period_id: ScenarioResult}`` in the order given.  With
    ``workers > 1`` each period runs in its own process; results are identical
    to the sequential path because every period is independently seeded.
    """
    ids = list(period_ids)
    results = _fan_out(
        run_period, ids, workers,
        n_peers=n_peers, duration_days=duration_days, seed=seed, run_crawler=run_crawler,
    )
    return dict(zip(ids, results))


def measure_periods(
    period_ids: Iterable[str],
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: int = 7,
    run_crawler: Optional[bool] = None,
    workers: Optional[int] = None,
) -> List[PeriodPerf]:
    """Time several periods (see :func:`repro.perf.measure_period`).

    The parallel path ships only the compact :class:`PeriodPerf` summaries
    back from the workers, not whole scenario results, which keeps the
    benchmark harness cheap even for large populations.  Wall times measured
    with ``workers > 1`` reflect a loaded machine; use ``workers=1`` when the
    per-period numbers themselves are the benchmark.
    """
    return _fan_out(
        measure_period, period_ids, workers,
        n_peers=n_peers, duration_days=duration_days, seed=seed, run_crawler=run_crawler,
    )
