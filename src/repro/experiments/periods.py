"""The paper's measurement periods (Table I) as runnable scenario configs.

Table I of the paper:

======  =======================  ========  =====  =====  =======  =====
Period  Dates                    Duration  Low    High   go-ipfs  Hydra
======  =======================  ========  =====  =====  =======  =====
P0      2021-12-03 – 2021-12-06  ~3 d      600    900    Server   3*
P1      2021-12-09 – 2021-12-10  ~1 d      2k     4k     Server   2
P2      2021-12-13 – 2021-12-14  ~1 d      18k    20k    Server   2
P3      2022-02-16 – 2022-02-17  ~1 d      18k    20k    Client   –
P4      2021-12-10 – 2021-12-13  ~3 d      18k    20k    Server   –
P14     2022-03-29 – 2022-04-12  ~14 d     18k    20k    Server   –
======  =======================  ========  =====  =====  =======  =====

(*) The paper lists P0 as two deployments (P01: go-ipfs with defaults 600/900,
P02: a hydra with 3 heads and 1.2k/1.8k); we model them as one scenario with
both vantage points.  "P14" is the additional ~14 day measurement behind Fig. 6.

Because the simulated population is much smaller than the live network, the
connection-manager watermarks are scaled by ``n_peers / 62'204`` (the paper's
connected-PID count) so the *mechanism* — does the vantage point trim its own
connections, and how aggressively — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ipfs.config import IpfsConfig
from repro.kademlia.dht import DHTMode
from repro.simulation.churn_models import DAY
from repro.simulation.population import PopulationConfig
from repro.simulation.scenario import ScenarioConfig

#: the paper's connected-PID count used as the watermark scaling denominator
PAPER_SCALE_PIDS = 62_204

#: Compensation factor applied on top of the population ratio when scaling the
#: connection-manager watermarks.  The compressed simulated population contacts
#: the vantage point at a higher per-peer rate than the live network (shorter
#: periods, faster reconnects), so a purely proportional LowWater would be
#: smaller than the arrivals within one grace period and the trim loop would
#: churn even its best-scored connections — a regime the live network never
#: enters.  The headroom keeps the ratio of LowWater to arrivals-per-trim-cycle
#: in the same regime as the paper's deployment while preserving the ordering
#: of the per-period configurations.
WATERMARK_HEADROOM = 4.0
#: lower bound for any scaled LowWater (keeps tiny test populations sane)
MIN_SCALED_LOW_WATER = 20


def scale_watermarks(
    low_water: int,
    high_water: int,
    n_peers: int,
    *,
    headroom: float = WATERMARK_HEADROOM,
    min_low_water: int = MIN_SCALED_LOW_WATER,
    paper_pids: int = PAPER_SCALE_PIDS,
) -> Tuple[int, int]:
    """Scale live-network connection-manager watermarks to a simulated population.

    Shared by the period specs and the scenario registry so every scenario
    derives its watermarks the same way: proportional to
    ``n_peers / paper_pids`` with :data:`WATERMARK_HEADROOM` applied, LowWater
    floored at ``min_low_water``, and HighWater kept strictly above LowWater.
    """
    if n_peers <= 0:
        raise ValueError(f"n_peers must be positive, got {n_peers}")
    if low_water <= 0 or high_water < low_water:
        raise ValueError(
            f"require 0 < low_water <= high_water, got {low_water}/{high_water}"
        )
    scale = n_peers / paper_pids * headroom
    scaled_low = max(min_low_water, int(round(low_water * scale)))
    scaled_high = max(scaled_low + 2, int(round(high_water * scale)))
    return scaled_low, scaled_high


@dataclass(frozen=True)
class PeriodSpec:
    """One measurement period of Table I (plus the 14 d run of Fig. 6)."""

    period_id: str
    start_date: str
    end_date: str
    duration_days: float
    low_water: int
    high_water: int
    go_ipfs_mode: Optional[DHTMode]      # None: no go-ipfs vantage point
    hydra_heads: int
    hydra_low_water: Optional[int] = None
    hydra_high_water: Optional[int] = None
    run_crawler: bool = True
    #: compressed duration used by the benchmark harness (simulated days);
    #: ``None`` means "use the paper's duration"
    bench_duration_days: Optional[float] = None
    #: default population size used by the benchmark harness
    bench_peers: int = 1500

    @property
    def duration_seconds(self) -> float:
        return self.duration_days * DAY

    def scaled_watermarks(self, n_peers: int) -> Tuple[int, int]:
        """Scale the Table I watermarks to the simulated population size."""
        return scale_watermarks(self.low_water, self.high_water, n_peers)

    def scaled_hydra_watermarks(self, n_peers: int) -> Tuple[int, int]:
        low = self.hydra_low_water if self.hydra_low_water is not None else 15_000
        high = self.hydra_high_water if self.hydra_high_water is not None else 20_000
        return scale_watermarks(low, high, n_peers)

    def scenario_config(
        self,
        n_peers: Optional[int] = None,
        seed: int = 7,
        duration_days: Optional[float] = None,
        run_crawler: Optional[bool] = None,
    ) -> ScenarioConfig:
        """Build a :class:`ScenarioConfig` for this period.

        ``duration_days`` overrides the period duration (benchmarks compress the
        multi-day periods; tests shrink them much further).
        """
        peers = n_peers if n_peers is not None else self.bench_peers
        days = duration_days
        if days is None:
            days = (
                self.bench_duration_days
                if self.bench_duration_days is not None
                else self.duration_days
            )
        low, high = self.scaled_watermarks(peers)
        go_ipfs_config: Optional[IpfsConfig] = None
        if self.go_ipfs_mode is not None:
            go_ipfs_config = IpfsConfig(
                low_water=low,
                high_water=high,
                dht_mode=self.go_ipfs_mode,
            )
        hydra_low, hydra_high = self.scaled_hydra_watermarks(peers)
        return ScenarioConfig(
            duration=days * DAY,
            population=PopulationConfig.scaled_to_paper(peers, seed=seed),
            go_ipfs=go_ipfs_config,
            hydra_heads=self.hydra_heads,
            hydra_low_water=hydra_low if self.hydra_heads else None,
            hydra_high_water=hydra_high if self.hydra_heads else None,
            run_crawler=self.run_crawler if run_crawler is None else run_crawler,
            seed=seed,
        )


PERIODS: Dict[str, PeriodSpec] = {
    "P0": PeriodSpec(
        period_id="P0",
        start_date="2021-12-03",
        end_date="2021-12-06",
        duration_days=3.0,
        low_water=600,
        high_water=900,
        go_ipfs_mode=DHTMode.SERVER,
        hydra_heads=3,
        hydra_low_water=1_200,
        hydra_high_water=1_800,
        bench_duration_days=1.5,
        bench_peers=1200,
    ),
    "P1": PeriodSpec(
        period_id="P1",
        start_date="2021-12-09",
        end_date="2021-12-10",
        duration_days=1.0,
        low_water=2_000,
        high_water=4_000,
        go_ipfs_mode=DHTMode.SERVER,
        hydra_heads=2,
        bench_peers=1500,
    ),
    "P2": PeriodSpec(
        period_id="P2",
        start_date="2021-12-13",
        end_date="2021-12-14",
        duration_days=1.0,
        low_water=18_000,
        high_water=20_000,
        go_ipfs_mode=DHTMode.SERVER,
        hydra_heads=2,
        bench_peers=1500,
    ),
    "P3": PeriodSpec(
        period_id="P3",
        start_date="2022-02-16",
        end_date="2022-02-17",
        duration_days=1.0,
        low_water=18_000,
        high_water=20_000,
        go_ipfs_mode=DHTMode.CLIENT,
        hydra_heads=0,
        bench_peers=1500,
    ),
    "P4": PeriodSpec(
        period_id="P4",
        start_date="2021-12-10",
        end_date="2021-12-13",
        duration_days=3.0,
        low_water=18_000,
        high_water=20_000,
        go_ipfs_mode=DHTMode.SERVER,
        hydra_heads=0,
        bench_duration_days=2.0,
        bench_peers=1800,
    ),
    "P14": PeriodSpec(
        period_id="P14",
        start_date="2022-03-29",
        end_date="2022-04-12",
        duration_days=14.0,
        low_water=18_000,
        high_water=20_000,
        go_ipfs_mode=DHTMode.SERVER,
        hydra_heads=0,
        run_crawler=False,
        bench_duration_days=7.0,
        bench_peers=800,
    ),
}


def period(period_id: str) -> PeriodSpec:
    """Look up a period spec by its paper name (``"P0"`` ... ``"P4"``, ``"P14"``)."""
    try:
        return PERIODS[period_id]
    except KeyError:
        raise KeyError(f"unknown measurement period: {period_id!r}") from None
