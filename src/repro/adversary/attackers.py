"""Concrete attacker behaviours and keyspace grinding helpers.

An :class:`AttackerBehavior` is attached to a simulated peer
(:attr:`SimPeer.attacker <repro.simulation.network.SimPeer>`); the network
fabric consults it on the three DHT response paths — FIND_NODE,
GET_PROVIDERS, ADD_PROVIDER — before falling back to the honest
implementation.  Behaviours therefore never touch the event engine: all
*scheduling* lives in :class:`~repro.adversary.behaviors.AdversaryBehaviors`,
all *response distortion* lives here.

PID grinding is modelled by :func:`mine_pid_near`: a real attacker brute
forces key pairs until the SHA-256 of the public key shares a prefix with the
target key (each matched bit doubles the expected work, so 12–24 bits are
cheap); the simulation constructs the digest directly, which preserves the
distances without burning CPU on key generation.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.adversary.config import DROPPER, ECLIPSE, POISONER
from repro.kademlia.keys import KEY_BITS
from repro.libp2p.peer_id import PeerId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fabric imports us not)
    from repro.adversary.behaviors import AttackStats
    from repro.simulation.network import SimPeer, SimulatedNetwork


def mine_pid_near(target: int, bits: int, rng: random.Random) -> PeerId:
    """Grind a PeerId whose Kademlia key shares ``bits`` leading bits with
    ``target`` (the remaining bits are random, so mined PIDs stay distinct)."""
    if bits <= 0:
        return PeerId(digest=rng.getrandbits(KEY_BITS).to_bytes(32, "big"))
    shift = KEY_BITS - bits
    prefix = (target >> shift) << shift
    key = prefix | rng.getrandbits(shift)
    return PeerId(digest=key.to_bytes(32, "big"))


class AttackerBehavior:
    """Base class: honest on every path, carries kind/label/stats plumbing."""

    kind: str = "honest"

    def __init__(self, label: str, stats: "AttackStats", rng: random.Random) -> None:
        self.label = label
        self.stats = stats
        self.rng = rng

    # Each hook mirrors one fabric RPC; ``peer`` is the attacker's own SimPeer.

    def on_find_node(
        self, network: "SimulatedNetwork", peer: "SimPeer", target: int, count: int
    ) -> Optional[List[PeerId]]:
        return network.honest_find_node(peer, target, count)

    def on_get_providers(
        self, network: "SimulatedNetwork", peer: "SimPeer", key: int, count: int
    ) -> Optional[Tuple[List[PeerId], List[PeerId]]]:
        return network.honest_get_providers(peer, key, count)

    def on_add_provider(
        self,
        network: "SimulatedNetwork",
        peer: "SimPeer",
        key: int,
        provider: PeerId,
        ttl: float,
    ) -> Optional[bool]:
        return network.honest_add_provider(peer, key, provider, ttl)


class EclipseAttacker(AttackerBehavior):
    """Sits on mined IDs around victim keys and captures their records.

    For victim keys the attacker acknowledges ADD_PROVIDER without storing
    anything servable, answers GET_PROVIDERS with zero providers, and names
    only fellow eclipse nodes as closer peers so walks never escape the
    captured neighbourhood.  Every other key is served honestly — parasitic
    honesty keeps the attacker in routing tables.
    """

    kind = ECLIPSE

    def __init__(
        self,
        label: str,
        stats: "AttackStats",
        rng: random.Random,
        victim_keys: Set[int],
        groups: Dict[int, List[PeerId]],
        capture_records: bool = True,
        shadow_closer_peers: bool = True,
    ) -> None:
        super().__init__(label, stats, rng)
        self.victim_keys = victim_keys
        #: victim key -> every eclipse PID mined for it (shared, install-time)
        self.groups = groups
        self.capture_records = capture_records
        self.shadow_closer_peers = shadow_closer_peers

    def _fellows(self, key: int, peer: "SimPeer", count: int) -> List[PeerId]:
        fellows = [pid for pid in self.groups.get(key, ()) if pid != peer.current_pid]
        return fellows[:count]

    def on_find_node(self, network, peer, target, count):
        if target in self.victim_keys and self.shadow_closer_peers:
            self.stats.count("queries_shadowed")
            self.stats.note(network.engine.now, "eclipse-shadow", self.label)
            return self._fellows(target, peer, count)
        return network.honest_find_node(peer, target, count)

    def on_get_providers(self, network, peer, key, count):
        if key in self.victim_keys:
            self.stats.count("provider_lookups_intercepted")
            self.stats.note(network.engine.now, "eclipse-intercept", self.label)
            closer = self._fellows(key, peer, count) if self.shadow_closer_peers else []
            return [], closer
        return network.honest_get_providers(peer, key, count)

    def on_add_provider(self, network, peer, key, provider, ttl):
        if key in self.victim_keys and self.capture_records:
            # Only honest publishers' records count as captures; the ring's
            # own shadow publishes landing back on the ring would otherwise
            # swamp the capture_rate numerator.
            owner = network.peers_by_pid.get(provider)
            if owner is None or owner.profile.adversary_kind is None:
                self.stats.count("records_captured")
                self.stats.note(network.engine.now, "eclipse-capture", self.label)
            else:
                self.stats.count("shadow_records_ringed")
            return True  # acknowledged, black-holed
        return network.honest_add_provider(peer, key, provider, ttl)


class RoutingPoisoner(AttackerBehavior):
    """Returns fabricated closer-peers mined right next to the query target.

    The fabricated PIDs resolve to nobody, so walks spend their query budget
    dialling ghosts and converge on a closest-set full of unreachable
    entries; PROVIDE then stores fewer (or zero) real replicas.
    """

    kind = POISONER

    def __init__(
        self,
        label: str,
        stats: "AttackStats",
        rng: random.Random,
        bogus_peers_per_reply: int = 8,
        closeness_bits: int = 20,
        poison_probability: float = 0.9,
    ) -> None:
        super().__init__(label, stats, rng)
        self.bogus_peers_per_reply = bogus_peers_per_reply
        self.closeness_bits = closeness_bits
        self.poison_probability = poison_probability

    def _poisoned_reply(self, network, target: int, count: int) -> List[PeerId]:
        bogus = [
            mine_pid_near(target, self.closeness_bits, self.rng)
            for _ in range(min(self.bogus_peers_per_reply, count))
        ]
        self.stats.count("queries_poisoned")
        self.stats.count("bogus_peers_returned", len(bogus))
        self.stats.note(network.engine.now, "poison", self.label, len(bogus))
        return bogus

    def on_find_node(self, network, peer, target, count):
        if self.rng.random() < self.poison_probability:
            return self._poisoned_reply(network, target, count)
        return network.honest_find_node(peer, target, count)

    def on_get_providers(self, network, peer, key, count):
        if self.rng.random() < self.poison_probability:
            return [], self._poisoned_reply(network, key, count)
        return network.honest_get_providers(peer, key, count)


class QueryDropper(AttackerBehavior):
    """Announces DHT-Server but never answers: queries burn budget silently."""

    kind = DROPPER

    def on_find_node(self, network, peer, target, count):
        self.stats.count("queries_dropped")
        self.stats.note(network.engine.now, "drop", self.label)
        return None

    def on_get_providers(self, network, peer, key, count):
        self.stats.count("queries_dropped")
        self.stats.note(network.engine.now, "drop", self.label)
        return None

    def on_add_provider(self, network, peer, key, provider, ttl):
        self.stats.count("stores_dropped")
        return None
