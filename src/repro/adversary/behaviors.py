"""Attacker lifecycle: installation, scheduling, and the attack event stream.

:class:`AdversaryBehaviors` is the adversary counterpart of
:class:`~repro.simulation.behaviors.MetadataBehaviors` /
:class:`~repro.simulation.behaviors.ContentBehaviors`:

* :meth:`install` runs *before* the network starts — it grinds Sybil PIDs
  into the measurement identities' neighbourhoods, grinds eclipse rings
  around the victim content keys, and attaches the malicious response
  behaviours to their peers (routing tables and neighbourhoods are then built
  over the mined IDs, exactly as if the attackers had joined earlier).
* :meth:`schedule_all` runs *after* the network starts and schedules the
  active attacks (currently the eclipse shadow-record publishing loop);
  Sybil staged arrivals and spoofer PID rotation ride the ordinary session
  machinery via their profiles.
* :meth:`finalize` closes the books: attacker PID inventory, spoofed-session
  totals, and end-of-window eclipse occupancy.

Everything an attacker does lands in one :class:`AttackStats` — monotonic
counters plus a bounded, deterministically ordered event stream.  Two runs
with the same scenario seed must produce identical streams; the determinism
tests pin exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.adversary.attackers import (
    EclipseAttacker,
    QueryDropper,
    RoutingPoisoner,
    mine_pid_near,
)
from repro.adversary.config import (
    CHURN_SPOOFER,
    DROPPER,
    ECLIPSE,
    POISONER,
    SYBIL,
    AdversaryConfig,
)
from repro.kademlia.dht import iterative_provide
from repro.kademlia.keys import key_for_peer, xor_distance
from repro.libp2p.peer_id import PeerId

# repro.simulation.* is imported lazily: its package __init__ loads the
# scenario wiring, which imports this module back.
if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.simulation.content import ContentRoutingConfig
    from repro.simulation.engine import Engine
    from repro.simulation.network import SimPeer, SimulatedNetwork


@dataclass
class AttackStats:
    """Ground-truth record of everything the adversary did in one run."""

    #: total attacker peers and the split per kind label
    attackers: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: monotonic counters (queries_dropped, records_captured, ...)
    counters: Dict[str, int] = field(default_factory=dict)
    #: the content keys the eclipse attack targets (empty without eclipse)
    victim_keys: List[int] = field(default_factory=list)
    #: every PID any attacker ever used, base58 (filled at finalize)
    attacker_pids: Set[str] = field(default_factory=set)
    #: churn-spoofer ground truth: sessions started / distinct PIDs burned
    spoofed_sessions: int = 0
    spoofed_pids: int = 0
    #: mean attacker share of the k closest online servers per victim key at
    #: the end of the window (1.0 = fully eclipsed)
    eclipse_occupancy: float = 0.0
    #: bounded attack event stream: (time, kind, attacker label, detail)
    events: List[Tuple] = field(default_factory=list)
    events_dropped: int = 0
    max_events: int = 20_000

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def note(self, now: float, kind: str, label: str, detail: Optional[object] = None) -> None:
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        self.events.append((round(now, 3), kind, label, detail))

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)


class AdversaryBehaviors:
    """Installs attackers on the fabric and schedules their active behaviour."""

    def __init__(
        self,
        engine: "Engine",
        network: "SimulatedNetwork",
        rng: Optional[random.Random] = None,
        config: Optional[AdversaryConfig] = None,
        content: Optional["ContentRoutingConfig"] = None,
    ) -> None:
        if config is None:
            raise ValueError("AdversaryBehaviors needs an AdversaryConfig")
        self.engine = engine
        self.network = network
        self.rng = rng or random.Random(network.population.config.seed + 5)
        self.config = config
        self.content = content
        self.stats = AttackStats(max_events=config.max_events)
        self._by_kind: Dict[str, List["SimPeer"]] = {}
        self._attackers: List["SimPeer"] = []
        self._victim_keys: Set[int] = set()
        self._eclipse_groups: Dict[int, List[PeerId]] = {}
        self._installed = False

    # -- installation (pre-start) --------------------------------------------------

    def install(self, duration: float) -> None:
        """Mine attacker PIDs and attach behaviours; must run before
        ``network.start()`` so tables and neighbourhoods see the mined IDs."""
        if self._installed:
            raise RuntimeError("adversary already installed")
        self._installed = True
        for peer in self.network.peers:
            kind = peer.profile.adversary_kind
            if kind is None:
                continue
            self._by_kind.setdefault(kind, []).append(peer)
            self._attackers.append(peer)
        self.stats.attackers = len(self._attackers)
        self.stats.by_kind = {
            kind: len(peers) for kind, peers in sorted(self._by_kind.items())
        }

        if self.config.eclipse is not None:
            self._victim_keys = set(self._compute_victim_keys())
            self.stats.victim_keys = sorted(self._victim_keys)

        self._install_sybils()
        self._install_eclipse()
        self._install_poisoners()
        self.network.adversary_monitor = self

    def _rekey(self, peer: "SimPeer", pid: PeerId) -> None:
        """Swap a peer's identity for a mined one (pre-start only)."""
        self.network.peers_by_pid.pop(peer.current_pid, None)
        peer.current_pid = pid
        peer.all_pids = {pid}
        self.network.peers_by_pid[pid] = peer

    def _compute_victim_keys(self) -> List[int]:
        """The attacked keys: hottest catalog items, else the vantage points."""
        assert self.config.eclipse is not None
        items = self.config.eclipse.victim_items
        if self.content is not None:
            from repro.simulation.content import ZipfCatalog

            catalog = ZipfCatalog(self.content.n_items, self.content.zipf_exponent)
            return [catalog.key(item) for item in range(min(items, catalog.n_items))]
        # No content workload: eclipse the measurement identities themselves.
        keys = [
            key_for_peer(identity.peer_id)
            for identity in self.network.identities
            if identity.is_dht_server
        ]
        return keys[:items]

    def _install_sybils(self) -> None:
        sybil = self.config.sybil
        sybils = self._by_kind.get(SYBIL, [])
        if sybil is None or not sybils:
            return
        targets = [
            key_for_peer(identity.peer_id)
            for identity in self.network.identities
            if identity.is_dht_server
        ] or [key_for_peer(identity.peer_id) for identity in self.network.identities]
        for i, peer in enumerate(sybils):
            target = targets[i % len(targets)]
            self._rekey(peer, mine_pid_near(target, sybil.closeness_bits, self.rng))
            self.stats.note(0.0, "sybil-mine", f"{SYBIL}-{i}", i % len(targets))
        self.stats.count("sybil_pids_mined", len(sybils))

    def _install_eclipse(self) -> None:
        eclipse = self.config.eclipse
        nodes = self._by_kind.get(ECLIPSE, [])
        if eclipse is None or not nodes or not self._victim_keys:
            return
        victims = sorted(self._victim_keys)
        for i, peer in enumerate(nodes):
            victim = victims[i % len(victims)]
            pid = mine_pid_near(victim, eclipse.closeness_bits, self.rng)
            self._rekey(peer, pid)
            self._eclipse_groups.setdefault(victim, []).append(pid)
            peer.attacker = EclipseAttacker(
                label=f"{ECLIPSE}-{i}",
                stats=self.stats,
                rng=self.rng,
                victim_keys=self._victim_keys,
                groups=self._eclipse_groups,
                capture_records=eclipse.capture_records,
                shadow_closer_peers=eclipse.shadow_closer_peers,
            )
            self.stats.note(0.0, "eclipse-mine", f"{ECLIPSE}-{i}", i % len(victims))
        self.stats.count("eclipse_pids_mined", len(nodes))

    def _install_poisoners(self) -> None:
        poison = self.config.poison
        if poison is None:
            return
        for i, peer in enumerate(self._by_kind.get(DROPPER, [])):
            peer.attacker = QueryDropper(f"{DROPPER}-{i}", self.stats, self.rng)
        for i, peer in enumerate(self._by_kind.get(POISONER, [])):
            peer.attacker = RoutingPoisoner(
                label=f"{POISONER}-{i}",
                stats=self.stats,
                rng=self.rng,
                bogus_peers_per_reply=poison.bogus_peers_per_reply,
                closeness_bits=poison.closeness_bits,
                poison_probability=poison.poison_probability,
            )

    # -- scheduling (post-start) ---------------------------------------------------

    def schedule_all(self, duration: float) -> None:
        """Schedule the active attacks on the event engine."""
        if not self._installed:
            raise RuntimeError("install() must run before schedule_all()")
        from repro.simulation.engine import PeriodicTask

        eclipse = self.config.eclipse
        if (
            eclipse is not None
            and eclipse.shadow_publish_interval is not None
            and self._eclipse_groups
        ):
            PeriodicTask(
                self.engine,
                eclipse.shadow_publish_interval,
                self._shadow_publish,
                start_delay=eclipse.shadow_publish_interval / 2.0,
            )

    def _shadow_publish(self, now: float) -> None:
        """Push bogus provider records (naming eclipse nodes, which never serve
        blocks) onto honest servers around each victim key, crowding real
        providers out of retrievers' bounded provider budgets."""
        assert self.config.eclipse is not None
        network = self.network
        for victim in sorted(self._eclipse_groups):
            group = self._eclipse_groups[victim]
            online = [
                pid for pid in group
                if (p := network.peers_by_pid.get(pid)) is not None and p.online
            ]
            if not online:
                continue
            provider = online[self.rng.randrange(len(online))]
            result = iterative_provide(
                victim,
                network.dht_query,
                lambda remote, k, p: network.add_provider(remote, k, p, self._shadow_ttl()),
                provider,
                network.bootstrap_peers() + online,
                replication=len(group) + self.config.eclipse.shadow_spill,
                max_queries=32,
            )
            self.stats.count("shadow_publishes")
            self.stats.count("shadow_records_stored", len(result.stored_on))
            self.stats.note(now, "eclipse-shadow-publish", ECLIPSE, len(result.stored_on))

    def _shadow_ttl(self) -> float:
        if self.content is not None:
            return self.content.provider_ttl
        return 12 * 3_600.0

    # -- fabric monitor hooks --------------------------------------------------------

    def note_honest_store(self, key: int, provider: PeerId) -> None:
        """Called by the fabric whenever an honest server accepts a record."""
        if key not in self._victim_keys:
            return
        peer = self.network.peers_by_pid.get(provider)
        if peer is not None and peer.profile.adversary_kind is not None:
            self.stats.count("shadow_records_accepted")
        else:
            self.stats.count("victim_records_honest")

    # -- finalisation -----------------------------------------------------------------

    def finalize(self, now: float) -> AttackStats:
        stats = self.stats
        for peer in self._attackers:
            for pid in peer.all_pids:
                stats.attacker_pids.add(str(pid))
        spoofers = self._by_kind.get(CHURN_SPOOFER, [])
        stats.spoofed_sessions = sum(p.sessions_started for p in spoofers)
        stats.spoofed_pids = sum(len(p.all_pids) for p in spoofers)
        stats.count("sybil_sessions", sum(p.sessions_started for p in self._by_kind.get(SYBIL, [])))
        if self._victim_keys:
            stats.eclipse_occupancy = self._occupancy(now)
            stats.count("victim_records_live_honest", self._live_honest_victim_records(now))
        return stats

    def _occupancy(self, now: float, k: int = 10) -> float:
        """Mean attacker share of the k closest online servers per victim key."""
        network = self.network
        online_servers = [
            p for p in network.peers if p.online and p.is_dht_server
        ]
        if not online_servers:
            return 0.0
        if self.content is not None:
            k = self.content.replication
        shares: List[float] = []
        for victim in sorted(self._victim_keys):
            closest = sorted(
                online_servers,
                key=lambda p: xor_distance(key_for_peer(p.current_pid), victim),
            )[:k]
            if not closest:
                continue
            attackers = sum(1 for p in closest if p.profile.adversary_kind is not None)
            shares.append(attackers / len(closest))
        return sum(shares) / len(shares) if shares else 0.0

    def _live_honest_victim_records(self, now: float) -> int:
        """Live victim-key records on honest stores naming honest providers."""
        total = 0
        for peer in self.network.provider_peers:
            store = peer.provider_store
            if store is None:
                continue
            for victim in self._victim_keys:
                for record in store.records_for(victim, now):
                    owner = self.network.peers_by_pid.get(record.provider)
                    if owner is None or owner.profile.adversary_kind is None:
                        total += 1
        return total
