"""Configuration of the adversarial subsystem.

The paper's passive churn and network-size measurements implicitly assume
honest peers: every observed PID is a participant, every announced protocol
set is truthful, every DHT reply is a best-effort answer.  The adversary
subsystem drops that assumption.  An :class:`AdversaryConfig` attached to a
:class:`~repro.simulation.population.PopulationConfig` adds attacker peers *on
top of* the honest ``n_peers`` population (so the honest ground truth stays
comparable) and activates malicious response paths in the network fabric.

Four attack families are modelled, each with its own config block:

* **Sybil flood** — cheap mass identities mined into the measurement
  identity's Kademlia neighbourhood.  They inflate the observed-PID count and
  wreck neighbourhood-density network-size estimates (the estimator reads a
  packed neighbourhood as "the whole keyspace is this dense").
* **Eclipse** — attacker IDs mined around victim content keys.  They soak up
  provider records (publishers believe the PROVIDE succeeded) and answer
  GET_PROVIDERS with no providers and only fellow attackers as closer peers.
* **Routing poisoning / query dropping** — malicious DHT servers that return
  fabricated closer-peers (unreachable PIDs ground near the target) or
  silently drop FIND_NODE / GET_PROVIDERS, burning lookup budgets.
* **Churn spoofing** — aggressive PID rotation over short sessions, flooding
  the passive vantage point with fresh PIDs that the Table IV classification
  files under one-time/light peers.

Everything is identity-by-default: ``adversary=None`` (the default) generates
no attacker profiles, draws nothing from any RNG, and leaves every
pre-existing fixed-seed golden byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# Time constants duplicated from repro.simulation.churn_models: importing any
# repro.simulation module would pull the whole simulation package (its
# __init__ imports the scenario wiring, which imports this package back).
DAY = 86_400.0
HOUR = 3_600.0
MINUTE = 60.0

#: attacker-kind labels (PeerProfile.adversary_kind / AttackStats keys)
SYBIL = "sybil"
ECLIPSE = "eclipse"
POISONER = "poisoner"
DROPPER = "dropper"
CHURN_SPOOFER = "churn-spoofer"

ALL_KINDS = (SYBIL, ECLIPSE, POISONER, DROPPER, CHURN_SPOOFER)


@dataclass(frozen=True)
class SybilFloodConfig:
    """A flood of cheap identities mined near the measurement identity."""

    #: sybil identities added on top of the honest population
    count: int = 40
    #: leading bits of the target key a mined PID shares (cheap key grinding;
    #: every matched bit halves the sybil's distance to the vantage point)
    closeness_bits: int = 12
    #: absolute join window (seconds): sybils come online spread over it
    arrival_window: Tuple[float, float] = (10 * MINUTE, 4 * HOUR)
    #: sybils re-dial quickly and value the vantage-point connection
    keep_probability: float = 0.6
    discovery_mean: float = 20 * MINUTE
    #: whether sybils announce /ipfs/kad/1.0.0 (servers enter neighbourhoods)
    act_as_server: bool = True

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"sybil count must be positive, got {self.count}")
        if not 0 <= self.closeness_bits <= 64:
            raise ValueError(
                f"closeness_bits must be within [0, 64], got {self.closeness_bits}"
            )
        low, high = self.arrival_window
        if low < 0 or high < low:
            raise ValueError(f"arrival_window must satisfy 0 <= low <= high, got {low}/{high}")
        if not 0.0 <= self.keep_probability <= 1.0:
            raise ValueError(f"keep_probability must be in [0, 1], got {self.keep_probability}")
        if self.discovery_mean <= 0:
            raise ValueError(f"discovery_mean must be positive, got {self.discovery_mean}")


@dataclass(frozen=True)
class EclipseConfig:
    """Attacker servers mined around victim content keys."""

    #: eclipse identities (spread round-robin over the victim keys)
    count: int = 20
    #: how many of the hottest catalog items are attacked
    victim_items: int = 2
    #: leading bits of the victim key a mined PID shares — high enough that
    #: every attacker sits closer to the key than any honest server
    closeness_bits: int = 24
    #: captured records are acknowledged but never served
    capture_records: bool = True
    #: replies to victim-key queries name only fellow attackers as closer peers
    shadow_closer_peers: bool = True
    #: interval of the active shadow-record publishing loop (bogus provider
    #: records naming eclipse nodes, pushed onto honest servers so retrievers
    #: waste their provider budget on non-serving peers); ``None`` disables it
    shadow_publish_interval: Optional[float] = None
    #: extra replicas past the eclipse ring a shadow publish spills onto
    shadow_spill: int = 5

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"eclipse count must be positive, got {self.count}")
        if self.victim_items <= 0:
            raise ValueError(f"victim_items must be positive, got {self.victim_items}")
        if not 0 <= self.closeness_bits <= 64:
            raise ValueError(
                f"closeness_bits must be within [0, 64], got {self.closeness_bits}"
            )
        if self.shadow_publish_interval is not None and self.shadow_publish_interval <= 0:
            raise ValueError(
                "shadow_publish_interval must be positive or None, "
                f"got {self.shadow_publish_interval}"
            )
        if self.shadow_spill < 0:
            raise ValueError(f"shadow_spill must be >= 0, got {self.shadow_spill}")


@dataclass(frozen=True)
class RoutingPoisonConfig:
    """Malicious DHT servers that poison or drop routing queries."""

    #: malicious servers added on top of the honest population
    count: int = 24
    #: share of them that silently drop queries (the rest poison replies)
    drop_share: float = 0.5
    #: fabricated closer-peers per poisoned reply (unreachable PIDs mined
    #: near the query target, crowding real candidates out of the walk)
    bogus_peers_per_reply: int = 8
    #: leading target-key bits a fabricated PID shares (closer than anything
    #: real, so walks chase ghosts first)
    closeness_bits: int = 20
    #: probability that a poisoner poisons a given reply (else honest answer)
    poison_probability: float = 0.9

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"poisoner count must be positive, got {self.count}")
        if not 0.0 <= self.drop_share <= 1.0:
            raise ValueError(f"drop_share must be in [0, 1], got {self.drop_share}")
        if self.bogus_peers_per_reply < 0:
            raise ValueError(
                f"bogus_peers_per_reply must be >= 0, got {self.bogus_peers_per_reply}"
            )
        if not 0 <= self.closeness_bits <= 64:
            raise ValueError(
                f"closeness_bits must be within [0, 64], got {self.closeness_bits}"
            )
        if not 0.0 <= self.poison_probability <= 1.0:
            raise ValueError(
                f"poison_probability must be in [0, 1], got {self.poison_probability}"
            )


@dataclass(frozen=True)
class ChurnSpoofConfig:
    """Aggressive PID rotation distorting the passive churn classification."""

    #: spoofing peers added on top of the honest population
    count: int = 30
    #: mean session length (every session starts under a fresh PID)
    session_mean: float = 12 * MINUTE
    #: mean pause between sessions
    downtime_mean: float = 8 * MINUTE
    #: spoofers seek the vantage point quickly so every fresh PID is observed
    discovery_mean: float = 15 * MINUTE

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"spoofer count must be positive, got {self.count}")
        for name in ("session_mean", "downtime_mean", "discovery_mean"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class AdversaryConfig:
    """Which attacks run, with what strength.

    Any subset of the four blocks may be enabled; ``None`` blocks add no
    attackers.  ``seed_salt`` decouples the adversary RNG stream from every
    honest stream, so enabling an attack never perturbs honest draws.
    """

    sybil: Optional[SybilFloodConfig] = None
    eclipse: Optional[EclipseConfig] = None
    poison: Optional[RoutingPoisonConfig] = None
    churn_spoof: Optional[ChurnSpoofConfig] = None
    seed_salt: int = 9000
    #: cap on the recorded attack-event stream (oldest kept; excess counted)
    max_events: int = 20_000

    def __post_init__(self) -> None:
        if self.max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {self.max_events}")
        if not self.enabled():
            raise ValueError("AdversaryConfig needs at least one attack block")

    def enabled(self) -> bool:
        return any((self.sybil, self.eclipse, self.poison, self.churn_spoof))

    def attacker_count(self) -> int:
        """Total attacker peers this config adds to the population."""
        total = 0
        if self.sybil is not None:
            total += self.sybil.count
        if self.eclipse is not None:
            total += self.eclipse.count
        if self.poison is not None:
            total += self.poison.count
        if self.churn_spoof is not None:
            total += self.churn_spoof.count
        return total

    def counts_by_kind(self) -> Dict[str, int]:
        """Attacker count per kind label (droppers split out of poisoners)."""
        counts = {kind: 0 for kind in ALL_KINDS}
        if self.sybil is not None:
            counts[SYBIL] = self.sybil.count
        if self.eclipse is not None:
            counts[ECLIPSE] = self.eclipse.count
        if self.poison is not None:
            droppers = int(round(self.poison.count * self.poison.drop_share))
            counts[DROPPER] = droppers
            counts[POISONER] = self.poison.count - droppers
        if self.churn_spoof is not None:
            counts[CHURN_SPOOFER] = self.churn_spoof.count
        return counts


#: re-exported for catalog builders (sybil uptime etc. live here so the
#: attacker profile module stays the single consumer)
SYBIL_UPTIME = 30 * DAY
