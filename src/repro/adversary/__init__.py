"""Adversarial subsystem: Sybil, eclipse, routing-poisoning, and
churn-spoofing attackers that ride the simulated fabric, plus the ground
truth needed to quantify how they distort the paper's passive measurements.
"""

from repro.adversary.attackers import (
    AttackerBehavior,
    EclipseAttacker,
    QueryDropper,
    RoutingPoisoner,
    mine_pid_near,
)
from repro.adversary.behaviors import AdversaryBehaviors, AttackStats
from repro.adversary.config import (
    ALL_KINDS,
    CHURN_SPOOFER,
    DROPPER,
    ECLIPSE,
    POISONER,
    SYBIL,
    AdversaryConfig,
    ChurnSpoofConfig,
    EclipseConfig,
    RoutingPoisonConfig,
    SybilFloodConfig,
)
from repro.adversary.profiles import (
    StagedArrivalSessionModel,
    build_adversary_profiles,
    spoofer_session,
)

__all__ = [
    "ALL_KINDS",
    "CHURN_SPOOFER",
    "DROPPER",
    "ECLIPSE",
    "POISONER",
    "SYBIL",
    "AdversaryBehaviors",
    "AdversaryConfig",
    "AttackStats",
    "AttackerBehavior",
    "ChurnSpoofConfig",
    "EclipseAttacker",
    "EclipseConfig",
    "QueryDropper",
    "RoutingPoisonConfig",
    "RoutingPoisoner",
    "StagedArrivalSessionModel",
    "SybilFloodConfig",
    "build_adversary_profiles",
    "mine_pid_near",
    "spoofer_session",
]
