"""Attacker peer profiles.

Attacker peers ride on the exact same population / session / fabric machinery
as honest peers — a Sybil is "just" a profile with a mined PID and an arrival
schedule, a churn spoofer is "just" a short-session profile that rotates its
PID every session.  :func:`build_adversary_profiles` appends them *after* the
honest ``n_peers`` profiles (indices ``n_peers ..``) from a dedicated RNG
stream, so the honest population is byte-identical with and without an
adversary attached.

Ground-truth attacker membership is recorded on the profile
(``adversary_kind``); the measurement side never reads it — recovering the
distortion from recorded connections alone is exactly the epistemic situation
a real passive measurement is in, and what
:mod:`repro.analysis.attack_report` quantifies with ground truth in hand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.adversary.config import (
    CHURN_SPOOFER,
    DROPPER,
    ECLIPSE,
    MINUTE,
    POISONER,
    SYBIL,
    SYBIL_UPTIME,
    AdversaryConfig,
)
from repro.kademlia.dht import DHTMode
from repro.libp2p.multiaddr import random_public_ipv4
from repro.libp2p.protocols import goipfs_protocols

# repro.simulation.* is imported lazily throughout: its package __init__
# loads the scenario wiring, which imports this package back.
if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.simulation.churn_models import SessionModel
    from repro.simulation.population import PeerProfile


@dataclass(frozen=True)
class StagedArrivalSessionModel:
    """Offline until a uniform arrival inside ``window``, then effectively
    always on — the session shape of a Sybil flood joining over a ramp."""

    window: Tuple[float, float]
    uptime_mean: float = SYBIL_UPTIME
    max_sessions: Optional[int] = None

    def initial_state(self, rng: random.Random) -> Tuple[bool, float]:
        low, high = self.window
        return False, rng.uniform(low, high)

    def next_uptime(self, rng: random.Random, now: float = 0.0) -> float:
        return rng.expovariate(1.0 / self.uptime_mean)

    def next_downtime(self, rng: random.Random, now: float = 0.0) -> float:
        # A sybil that does drop rejoins almost immediately: identities are free.
        return rng.uniform(MINUTE, 5 * MINUTE)


def spoofer_session(session_mean: float, downtime_mean: float) -> "SessionModel":
    """Short exponential sessions with quick returns (one fresh PID each)."""
    from repro.simulation.churn_models import ExponentialDistribution, SessionModel

    return SessionModel(
        uptime=ExponentialDistribution(session_mean),
        downtime=ExponentialDistribution(downtime_mean),
        initially_online_probability=0.5,
    )


def build_adversary_profiles(
    adversary: AdversaryConfig,
    start_index: int,
    seed: int,
) -> List["PeerProfile"]:
    """Generate every attacker profile of ``adversary``, starting at
    ``start_index`` (appended after the honest population)."""
    from repro.simulation.agents import AgentCatalog
    from repro.simulation.churn_models import always_on_session
    from repro.simulation.population import PeerClass, PeerProfile

    rng = random.Random(seed + adversary.seed_salt)
    catalog = AgentCatalog(rng)
    profiles: List[PeerProfile] = []
    index = start_index

    def next_index() -> int:
        nonlocal index
        value = index
        index += 1
        return value

    # -- sybil flood: many cheap identities on few hosts -----------------------
    if adversary.sybil is not None:
        sybil = adversary.sybil
        # Identities are free, hosts are not: ~16 sybils share one IP, which is
        # what lets the multiaddress estimator partially see through the flood
        # while the neighbourhood-density estimator cannot.
        host_ips = [random_public_ipv4(rng) for _ in range(max(1, sybil.count // 16))]
        agent = catalog.make_goipfs_agent()
        for i in range(sybil.count):
            profiles.append(
                PeerProfile(
                    peer_index=next_index(),
                    peer_class=PeerClass.LIGHT,
                    role=DHTMode.SERVER if sybil.act_as_server else DHTMode.CLIENT,
                    agent=agent,
                    protocols=goipfs_protocols(dht_server=sybil.act_as_server),
                    public_ip=host_ips[i % len(host_ips)],
                    behind_nat=False,
                    session_model=StagedArrivalSessionModel(sybil.arrival_window),
                    keep_probability=sybil.keep_probability,
                    reconnect_mean=5 * MINUTE,
                    discovery_mean=sybil.discovery_mean,
                    adversary_kind=SYBIL,
                )
            )

    # -- eclipse ring: always-on servers mined around victim keys --------------
    if adversary.eclipse is not None:
        for _ in range(adversary.eclipse.count):
            profiles.append(
                PeerProfile(
                    peer_index=next_index(),
                    peer_class=PeerClass.NORMAL,
                    role=DHTMode.SERVER,
                    agent=catalog.make_goipfs_agent(),
                    protocols=goipfs_protocols(dht_server=True),
                    public_ip=random_public_ipv4(rng),
                    behind_nat=False,
                    session_model=always_on_session(),
                    keep_probability=0.35,
                    reconnect_mean=10 * MINUTE,
                    discovery_mean=60 * MINUTE,
                    adversary_kind=ECLIPSE,
                )
            )

    # -- poisoners / droppers: malicious always-on DHT servers -----------------
    if adversary.poison is not None:
        poison = adversary.poison
        droppers = int(round(poison.count * poison.drop_share))
        for i in range(poison.count):
            profiles.append(
                PeerProfile(
                    peer_index=next_index(),
                    peer_class=PeerClass.NORMAL,
                    role=DHTMode.SERVER,
                    agent=catalog.make_goipfs_agent(),
                    protocols=goipfs_protocols(dht_server=True),
                    public_ip=random_public_ipv4(rng),
                    behind_nat=False,
                    session_model=always_on_session(),
                    keep_probability=0.35,
                    reconnect_mean=10 * MINUTE,
                    discovery_mean=60 * MINUTE,
                    adversary_kind=DROPPER if i < droppers else POISONER,
                )
            )

    # -- churn spoofers: fresh PID every short session --------------------------
    if adversary.churn_spoof is not None:
        spoof = adversary.churn_spoof
        for _ in range(spoof.count):
            profiles.append(
                PeerProfile(
                    peer_index=next_index(),
                    peer_class=PeerClass.LIGHT,
                    role=DHTMode.CLIENT,
                    agent=catalog.make_goipfs_agent(),
                    protocols=goipfs_protocols(dht_server=False),
                    public_ip=random_public_ipv4(rng),
                    behind_nat=False,
                    session_model=spoofer_session(spoof.session_mean, spoof.downtime_mean),
                    rotates_pid=True,
                    keep_probability=0.1,
                    reconnect_mean=5 * MINUTE,
                    discovery_mean=spoof.discovery_mean,
                    adversary_kind=CHURN_SPOOFER,
                )
            )

    return profiles
