"""The go-ipfs node composition.

An :class:`IpfsNode` bundles identity, peerstore, swarm (with connection
manager), Kademlia DHT state (including provider records), and a Bitswap
engine into the object the simulation deploys — both as the passive
measurement node and, in scaled-down form, inside tests and examples.

Content routing runs end-to-end through this composition: ``publish_block``
stores a block and announces the node as its provider on the DHT,
``fetch_block`` resolves providers via GET_PROVIDERS, dials one, and pulls the
block over Bitswap (both peers' ledgers record the exchange).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Tuple

from repro.ipfs.bitswap import BitswapEngine
from repro.ipfs.config import IpfsConfig
from repro.ipfs.peerstore import Peerstore
from repro.ipfs.swarm import Swarm
from repro.kademlia.dht import (
    AddProviderFn,
    DHTMode,
    FindProvidersResult,
    GetProvidersFn,
    KademliaNode,
    ProvideResult,
    QueryFn,
)
from repro.kademlia.keys import key_for_content
from repro.libp2p.connection import CloseReason, Connection, Direction
from repro.libp2p.crypto import KeyPair, generate_keypair
from repro.libp2p.identify import IdentifyRecord
from repro.libp2p.multiaddr import Multiaddr
from repro.libp2p.peer_id import PeerId
from repro.libp2p.protocols import KAD_DHT, goipfs_protocols

#: resolves a provider PeerId to its Bitswap engine and dialable address
#: (``None``: provider unreachable — offline, NATed, or not speaking Bitswap)
DialProviderFn = Callable[[PeerId], Optional[Tuple[BitswapEngine, Multiaddr]]]

#: connection-manager tag used for peers in our DHT routing table
_KAD_TAG = "kad"
_KAD_TAG_VALUE = 5
_BOOTSTRAP_TAG = "bootstrap"


class IpfsNode:
    """A behavioural stand-in for the go-ipfs reference client."""

    def __init__(
        self,
        config: Optional[IpfsConfig] = None,
        keypair: Optional[KeyPair] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config or IpfsConfig.defaults()
        self.rng = rng or random.Random()
        self.keypair = keypair or generate_keypair(self.rng)
        self.peer_id = PeerId.from_keypair(self.keypair)
        self.peerstore = Peerstore()
        self.swarm = Swarm(self.peer_id, self.config.connmgr_config())
        self.dht = KademliaNode(self.peer_id, mode=self.config.dht_mode, rng=self.rng)
        self.bitswap = BitswapEngine(enabled=self.config.enable_bitswap)

    # -- identity / identify ----------------------------------------------------------

    @property
    def is_dht_server(self) -> bool:
        return self.dht.is_server

    def set_dht_mode(self, mode: DHTMode) -> None:
        self.dht.set_mode(mode)

    def own_identify_record(self, listen_addrs: Iterable[Multiaddr] = ()) -> IdentifyRecord:
        """The identify record this node announces to remote peers."""
        protocols = goipfs_protocols(
            dht_server=self.is_dht_server,
            bitswap=self.config.enable_bitswap,
        )
        return IdentifyRecord.make(
            agent_version=self.config.agent_version,
            protocols=protocols,
            listen_addrs=listen_addrs,
        )

    # -- connection handling ------------------------------------------------------------

    def handle_inbound_connection(
        self, remote_peer: PeerId, remote_addr: Multiaddr, now: float
    ) -> Connection:
        """A remote peer dialled us; go-ipfs always accepts and trims later."""
        conn = self.swarm.open_connection(remote_peer, remote_addr, Direction.INBOUND, now)
        self.peerstore.set_connected(remote_peer, True, now, observed_addr=remote_addr)
        return conn

    def dial(self, remote_peer: PeerId, remote_addr: Multiaddr, now: float) -> Connection:
        """Open an outbound connection to a remote peer."""
        conn = self.swarm.open_connection(remote_peer, remote_addr, Direction.OUTBOUND, now)
        self.peerstore.set_connected(remote_peer, True, now, observed_addr=remote_addr)
        return conn

    def close_connection(self, conn: Connection, reason: CloseReason, now: float) -> None:
        self.swarm.close_connection(conn, reason, now)
        if not self.swarm.is_connected(conn.remote_peer):
            self.peerstore.set_connected(conn.remote_peer, False, now)

    def shutdown(self, now: float) -> List[Connection]:
        """Close every connection (end of a measurement period)."""
        closed = self.swarm.close_all(CloseReason.LOCAL_SHUTDOWN, now)
        for conn in closed:
            self.peerstore.set_connected(conn.remote_peer, False, now)
        return closed

    # -- identify / peerstore -------------------------------------------------------------

    def receive_identify(self, remote_peer: PeerId, record: IdentifyRecord, now: float) -> None:
        """Process the identify (or identify-push) message of a remote peer.

        Besides updating the peerstore, the DHT learns about the peer's role:
        peers announcing ``/ipfs/kad/1.0.0`` enter the routing table and get a
        connection-manager tag (go-libp2p tags routing-table peers, which is
        what protects them from trimming); peers that stop announcing it are
        dropped again — this is the mechanism behind the paper's observed
        DHT-Server↔Client role flips.
        """
        self.peerstore.record_identify(remote_peer, record, now)
        if KAD_DHT in record.protocols:
            self.dht.observe_peer(remote_peer, is_server=True)
            self.swarm.tag_peer(remote_peer, _KAD_TAG, _KAD_TAG_VALUE)
        else:
            self.dht.observe_peer(remote_peer, is_server=False)
            self.swarm.connmgr.untag_peer(remote_peer, _KAD_TAG)

    # -- DHT ---------------------------------------------------------------------------------

    def bootstrap(self, bootstrap_peers: Iterable[PeerId], query: QueryFn) -> None:
        """Join the DHT via the given bootstrap peers (go-ipfs protects them)."""
        peers = list(bootstrap_peers)
        for peer in peers:
            self.swarm.protect_peer(peer, _BOOTSTRAP_TAG)
        self.dht.bootstrap(peers, query)

    def handle_find_node(self, target: int, count: int = 20) -> Optional[List[PeerId]]:
        """Answer a DHT query if we are a server."""
        return self.dht.handle_find_node(target, count)

    def handle_add_provider(self, key: int, provider: PeerId, now: float) -> Optional[bool]:
        """Accept a provider record if we are a server."""
        return self.dht.handle_add_provider(key, provider, now)

    def handle_get_providers(
        self, key: int, now: float, count: int = 20
    ) -> Optional[Tuple[List[PeerId], List[PeerId]]]:
        """Answer a GET_PROVIDERS query if we are a server."""
        return self.dht.handle_get_providers(key, now, count)

    # -- content routing ----------------------------------------------------------------

    @staticmethod
    def content_key(cid: str) -> int:
        """The Kademlia key a CID's provider records live at."""
        return key_for_content(cid.encode())

    def provide(
        self,
        cid: str,
        query: QueryFn,
        add_provider: AddProviderFn,
        now: float,
        replication: int = 20,
    ) -> ProvideResult:
        """Announce this node as a provider of ``cid`` on the DHT."""
        return self.dht.provide(
            self.content_key(cid), query, add_provider, now, replication=replication
        )

    def publish_block(
        self,
        cid: str,
        data: bytes,
        query: QueryFn,
        add_provider: AddProviderFn,
        now: float,
        replication: int = 20,
    ) -> ProvideResult:
        """Store a block locally and publish its provider record."""
        self.bitswap.add_block(cid, data)
        return self.provide(cid, query, add_provider, now, replication=replication)

    def find_providers(
        self,
        cid: str,
        get_providers: GetProvidersFn,
        now: float,
        max_providers: int = 20,
    ) -> FindProvidersResult:
        """Resolve the providers of ``cid`` (local records first)."""
        return self.dht.find_providers(
            self.content_key(cid), get_providers, now, max_providers=max_providers
        )

    def fetch_block(
        self,
        cid: str,
        get_providers: GetProvidersFn,
        dial_provider: DialProviderFn,
        now: float,
        max_providers: int = 20,
    ) -> Optional[bytes]:
        """The full retrieval path: resolve, dial a provider, fetch via Bitswap.

        Providers are tried in discovery order; a provider that dials but does
        not deliver the block is disconnected again.  Returns the block, or
        ``None`` when no resolved provider served it.
        """
        local = self.bitswap.get_block(cid)
        if local is not None:
            return local
        result = self.find_providers(cid, get_providers, now, max_providers=max_providers)
        for provider in result.providers:
            if provider == self.peer_id:
                continue
            resolved = dial_provider(provider)
            if resolved is None:
                continue
            remote_bitswap, addr = resolved
            conn = self.dial(provider, addr, now)
            block = self.bitswap.fetch_from(self.peer_id, provider, remote_bitswap, cid)
            if block is not None:
                return block
            self.close_connection(conn, CloseReason.PROTOCOL_DONE, now)
        return None

    # -- periodic work --------------------------------------------------------------------------

    def tick(self, now: float) -> List[Connection]:
        """Periodic maintenance: run the connection manager's trim cycle."""
        return self.swarm.trim(now)

    # -- introspection ----------------------------------------------------------------------------

    def connection_count(self) -> int:
        return self.swarm.connection_count()

    def known_peer_count(self) -> int:
        return len(self.peerstore)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        mode = "server" if self.is_dht_server else "client"
        return (
            f"IpfsNode({self.peer_id.short()}, {mode}, "
            f"conns={self.connection_count()}, known={self.known_peer_count()})"
        )
