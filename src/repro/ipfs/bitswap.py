"""A minimal Bitswap engine.

The measurement nodes in the paper never request or serve content, so Bitswap
only matters in two places: the protocol announcement (go-ipfs peers that do
*not* announce Bitswap are one of the paper's anomalies) and the fact that
Bitswap broadcasts can cause remote peers to open connections to us.  The
engine below implements a wantlist/ledger just far enough to support the
examples and to keep the node composition faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.libp2p.peer_id import PeerId


@dataclass
class Ledger:
    """Per-peer exchange accounting, as real Bitswap keeps."""

    peer: PeerId
    bytes_sent: int = 0
    bytes_received: int = 0
    blocks_sent: int = 0
    blocks_received: int = 0

    @property
    def debt_ratio(self) -> float:
        return self.bytes_sent / (self.bytes_received + 1.0)


class BitswapEngine:
    """Want-list handling and per-peer ledgers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._wantlist: Set[str] = set()
        self._blockstore: Dict[str, bytes] = {}
        self._ledgers: Dict[PeerId, Ledger] = {}

    # -- local content ------------------------------------------------------------

    def add_block(self, cid: str, data: bytes) -> None:
        self._blockstore[cid] = data
        self._wantlist.discard(cid)

    def has_block(self, cid: str) -> bool:
        return cid in self._blockstore

    def get_block(self, cid: str) -> Optional[bytes]:
        return self._blockstore.get(cid)

    def want(self, cid: str) -> None:
        if not self.has_block(cid):
            self._wantlist.add(cid)

    def wantlist(self) -> List[str]:
        return sorted(self._wantlist)

    # -- message handling ----------------------------------------------------------

    def ledger_for(self, peer: PeerId) -> Ledger:
        ledger = self._ledgers.get(peer)
        if ledger is None:
            ledger = Ledger(peer=peer)
            self._ledgers[peer] = ledger
        return ledger

    def handle_want(self, peer: PeerId, cid: str) -> Optional[bytes]:
        """A remote peer asks for ``cid``; serve it if we have it."""
        if not self.enabled:
            return None
        block = self._blockstore.get(cid)
        if block is not None:
            ledger = self.ledger_for(peer)
            ledger.blocks_sent += 1
            ledger.bytes_sent += len(block)
        return block

    def handle_block(self, peer: PeerId, cid: str, data: bytes) -> bool:
        """A remote peer sent us a block; returns True if it was wanted."""
        if not self.enabled:
            return False
        ledger = self.ledger_for(peer)
        ledger.blocks_received += 1
        ledger.bytes_received += len(data)
        wanted = cid in self._wantlist
        self.add_block(cid, data)
        return wanted

    def fetch_from(
        self,
        local_peer: PeerId,
        remote_peer: PeerId,
        remote: "BitswapEngine",
        cid: str,
        deliver=None,
        retry=None,
    ) -> Optional[bytes]:
        """One want/block round trip against a connected remote engine.

        This is the exchange a resolved provider serves after being dialled:
        we send WANT(cid), the remote serves the block from its store (its
        ledger records bytes/blocks sent), and our ledger records the receipt.
        Returns the block, or ``None`` when the remote does not have it (or
        either side runs with Bitswap disabled).

        ``deliver`` is an optional fault gate (``() -> bool``, from
        :mod:`repro.faults`): when it returns False the exchange is lost on
        the wire before the remote serves anything.  ``retry`` is an optional
        duck-typed executor with ``call(fn)`` that re-issues lost exchanges
        with backoff.  Both default to the fault-free single-shot behaviour.
        """
        if not self.enabled:
            return None
        self.want(cid)

        def attempt() -> Optional[bytes]:
            if deliver is not None and not deliver():
                return None
            return remote.handle_want(local_peer, cid)

        if retry is None:
            block = attempt()
        else:
            block = retry.call(attempt)
        if block is None:
            return None
        self.handle_block(remote_peer, cid, block)
        return block

    def known_peers(self) -> List[PeerId]:
        return list(self._ledgers.keys())
