"""A behavioural model of the go-ipfs reference client.

The paper deploys unmodified go-ipfs nodes (v0.11.0-dev / v0.13.0-dev) plus a
hydra-booster and records what those clients *observe*.  This package models
the client-side machinery that determines those observations:

* a :class:`~repro.ipfs.config.IpfsConfig` with the swarm connection-manager
  thresholds the paper tunes per measurement period,
* a :class:`~repro.ipfs.peerstore.Peerstore` that remembers every peer ever
  seen together with its identify meta data and a change log,
* a :class:`~repro.ipfs.swarm.Swarm` that owns connections and applies the
  connection manager's trimming policy,
* a thin Bitswap engine stub (the measurement never exchanges content, but the
  protocol announcement matters for the meta-data analysis), and
* the :class:`~repro.ipfs.node.IpfsNode` composition, which can run as a
  DHT-Server or DHT-Client.
"""

from repro.ipfs.config import IpfsConfig
from repro.ipfs.peerstore import PeerEntry, Peerstore
from repro.ipfs.swarm import Swarm, SwarmListener
from repro.ipfs.bitswap import BitswapEngine
from repro.ipfs.node import IpfsNode

__all__ = [
    "IpfsConfig",
    "Peerstore",
    "PeerEntry",
    "Swarm",
    "SwarmListener",
    "BitswapEngine",
    "IpfsNode",
]
