"""go-ipfs node configuration.

Only the parts of the go-ipfs config the paper touches are modelled: the swarm
connection manager's ``LowWater``/``HighWater``/``GracePeriod``, the DHT
routing mode (``dhtserver`` vs ``dhtclient``), the announced agent version, and
the swarm port.  Table I of the paper is a list of exactly these knobs per
measurement period.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.kademlia.dht import DHTMode
from repro.libp2p.connmgr import (
    DEFAULT_GRACE_PERIOD,
    DEFAULT_HIGH_WATER,
    DEFAULT_LOW_WATER,
    ConnManagerConfig,
)

#: Agent versions of the clients the paper deployed.
GO_IPFS_011_DEV = "go-ipfs/0.11.0-dev/0c2f9d5"
GO_IPFS_013_DEV = "go-ipfs/0.13.0-dev/b2efcf5"


@dataclass(frozen=True)
class IpfsConfig:
    """Configuration of a (measurement) go-ipfs node."""

    low_water: int = DEFAULT_LOW_WATER
    high_water: int = DEFAULT_HIGH_WATER
    grace_period: float = DEFAULT_GRACE_PERIOD
    dht_mode: DHTMode = DHTMode.SERVER
    agent_version: str = GO_IPFS_011_DEV
    swarm_port: int = 4001
    enable_bitswap: bool = True
    #: interval of the paper's measurement exporter (30 s for go-ipfs)
    poll_interval: float = 30.0

    def __post_init__(self) -> None:
        if self.low_water < 0 or self.high_water < self.low_water:
            raise ValueError("require 0 <= low_water <= high_water")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def connmgr_config(self) -> ConnManagerConfig:
        return ConnManagerConfig(
            low_water=self.low_water,
            high_water=self.high_water,
            grace_period=self.grace_period,
        )

    def as_server(self) -> "IpfsConfig":
        return replace(self, dht_mode=DHTMode.SERVER)

    def as_client(self) -> "IpfsConfig":
        return replace(self, dht_mode=DHTMode.CLIENT)

    def with_watermarks(self, low_water: int, high_water: int) -> "IpfsConfig":
        return replace(self, low_water=low_water, high_water=high_water)

    @classmethod
    def defaults(cls) -> "IpfsConfig":
        """The stock go-ipfs configuration (LowWater 600 / HighWater 900)."""
        return cls()
