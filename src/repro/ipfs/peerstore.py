"""The peerstore: everything a node remembers about peers it has seen.

The go-ipfs measurement client in the paper exports, every 30 s, "the PID of
all known peers in the Peerstore, agent version, protocols, and multiaddresses"
and records "changes to the information ... with a timestamp".  This module
implements that store: current meta data per PID plus an append-only change
log, which the meta-data analysis (Fig. 3/4, Table III, role flips) is computed
from.

Unlike the connection manager's view, the peerstore is *historic*: entries are
never evicted, which is the property the paper uses to explain why a passive
node accumulates more PIDs over time than an active crawler sees in any single
snapshot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.libp2p.identify import IdentifyRecord
from repro.libp2p.multiaddr import Multiaddr
from repro.libp2p.peer_id import PeerId
from repro.libp2p.protocols import KAD_DHT


class ChangeKind(enum.Enum):
    """What aspect of a peer's meta data changed."""

    FIRST_SEEN = "first-seen"
    AGENT = "agent"
    PROTOCOLS = "protocols"
    ADDRS = "addrs"


@dataclass(frozen=True)
class MetaChange:
    """One entry of the peerstore change log."""

    timestamp: float
    peer: PeerId
    kind: ChangeKind
    old_value: Optional[object]
    new_value: Optional[object]


@dataclass
class PeerEntry:
    """Current knowledge about one PID."""

    peer: PeerId
    first_seen: float
    last_seen: float
    agent_version: Optional[str] = None
    protocols: frozenset = frozenset()
    addrs: Tuple[Multiaddr, ...] = ()
    connected: bool = False
    #: multiaddress the peer most recently connected from (observed address)
    observed_addr: Optional[Multiaddr] = None

    def is_dht_server(self) -> bool:
        return KAD_DHT in self.protocols


class Peerstore:
    """All peers a node has ever learned about, with a change log."""

    def __init__(self) -> None:
        self._entries: Dict[PeerId, PeerEntry] = {}
        self._changes: List[MetaChange] = []
        #: peers that *ever* announced the DHT server protocol, maintained
        #: incrementally at identify time so measurement polling does not have
        #: to rescan the whole (ever-growing) store every 30 simulated seconds
        self._ever_dht_server: Set[PeerId] = set()

    # -- basic access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, peer: PeerId) -> bool:
        return peer in self._entries

    def get(self, peer: PeerId) -> Optional[PeerEntry]:
        return self._entries.get(peer)

    def peers(self) -> List[PeerId]:
        return list(self._entries.keys())

    def entries(self) -> List[PeerEntry]:
        return list(self._entries.values())

    def changes(self) -> List[MetaChange]:
        return list(self._changes)

    # -- updates ------------------------------------------------------------------

    def _ensure_entry(self, peer: PeerId, now: float) -> PeerEntry:
        entry = self._entries.get(peer)
        if entry is None:
            entry = PeerEntry(peer=peer, first_seen=now, last_seen=now)
            self._entries[peer] = entry
            self._changes.append(
                MetaChange(now, peer, ChangeKind.FIRST_SEEN, None, None)
            )
        return entry

    def touch(self, peer: PeerId, now: float) -> PeerEntry:
        """Record that the peer was seen at ``now`` (connection, message, ...)."""
        entry = self._ensure_entry(peer, now)
        entry.last_seen = max(entry.last_seen, now)
        return entry

    def set_connected(
        self,
        peer: PeerId,
        connected: bool,
        now: float,
        observed_addr: Optional[Multiaddr] = None,
    ) -> None:
        entry = self.touch(peer, now)
        entry.connected = connected
        if observed_addr is not None:
            entry.observed_addr = observed_addr

    def record_identify(self, peer: PeerId, record: IdentifyRecord, now: float) -> List[MetaChange]:
        """Merge an identify exchange into the store; returns emitted changes."""
        entry = self.touch(peer, now)
        emitted: List[MetaChange] = []

        if record.agent_version is not None and record.agent_version != entry.agent_version:
            change = MetaChange(
                now, peer, ChangeKind.AGENT, entry.agent_version, record.agent_version
            )
            entry.agent_version = record.agent_version
            self._changes.append(change)
            emitted.append(change)

        new_protocols = frozenset(record.protocols)
        if new_protocols and new_protocols != entry.protocols:
            change = MetaChange(now, peer, ChangeKind.PROTOCOLS, entry.protocols, new_protocols)
            entry.protocols = new_protocols
            self._changes.append(change)
            emitted.append(change)
            if KAD_DHT in new_protocols:
                self._ever_dht_server.add(peer)

        new_addrs = tuple(record.listen_addrs)
        if new_addrs and new_addrs != entry.addrs:
            change = MetaChange(now, peer, ChangeKind.ADDRS, entry.addrs, new_addrs)
            entry.addrs = new_addrs
            self._changes.append(change)
            emitted.append(change)
        return emitted

    # -- aggregate views ------------------------------------------------------------

    def dht_servers(self) -> List[PeerId]:
        """Peers whose last known protocol set announces the DHT server protocol."""
        return [entry.peer for entry in self._entries.values() if entry.is_dht_server()]

    def ever_dht_servers(self) -> Set[PeerId]:
        """Peers that announced the DHT server protocol at any point (read-only)."""
        return self._ever_dht_server

    def agent_histogram(self) -> Dict[Optional[str], int]:
        histogram: Dict[Optional[str], int] = {}
        for entry in self._entries.values():
            histogram[entry.agent_version] = histogram.get(entry.agent_version, 0) + 1
        return histogram

    def changes_for(self, peer: PeerId) -> List[MetaChange]:
        return [c for c in self._changes if c.peer == peer]

    def changes_of_kind(self, kind: ChangeKind) -> List[MetaChange]:
        return [c for c in self._changes if c.kind == kind]
