"""The swarm: the set of live connections of a node.

The swarm owns connection lifecycle (open, close, trim) and notifies listeners
about every change — the passive measurement recorder is exactly such a
listener.  Trimming is delegated to the libp2p connection manager; the swarm
is the component that actually closes the victims and reports why.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.libp2p.connection import CloseReason, Connection, Direction
from repro.libp2p.connmgr import ConnManagerConfig, ConnectionManager
from repro.libp2p.multiaddr import Multiaddr
from repro.libp2p.peer_id import PeerId


class SwarmListener(Protocol):
    """Receives connection lifecycle notifications (go-libp2p's ``Notifiee``)."""

    def on_connected(self, conn: Connection, now: float) -> None:  # pragma: no cover
        ...

    def on_disconnected(self, conn: Connection, now: float) -> None:  # pragma: no cover
        ...


class Swarm:
    """Connection container with connection-manager based trimming."""

    def __init__(
        self, local_peer: PeerId, connmgr_config: Optional[ConnManagerConfig] = None
    ) -> None:
        self.local_peer = local_peer
        self.connmgr = ConnectionManager(connmgr_config)
        self._listeners: List[SwarmListener] = []
        self._open_by_id: Dict[int, Connection] = {}
        self.total_opened = 0
        self.total_closed = 0

    # -- listeners ----------------------------------------------------------------

    def add_listener(self, listener: SwarmListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: SwarmListener) -> None:
        self._listeners.remove(listener)

    # -- queries ------------------------------------------------------------------

    def connection_count(self) -> int:
        return len(self._open_by_id)

    def connections(self) -> List[Connection]:
        return list(self._open_by_id.values())

    def connections_to(self, peer: PeerId) -> List[Connection]:
        return self.connmgr.connections_to(peer)

    def is_connected(self, peer: PeerId) -> bool:
        # The connection manager indexes connections per peer; O(1) versus
        # scanning every open connection (this is on the close path of every
        # single connection the measurement node sees).
        return self.connmgr.is_connected(peer)

    def connected_peer_count(self) -> int:
        """Distinct peers with an open connection (the snapshot 'connected PIDs')."""
        return self.connmgr.connected_peer_count()

    def connected_peers(self) -> List[PeerId]:
        return self.connmgr.connected_peers()

    # -- lifecycle ----------------------------------------------------------------

    def open_connection(
        self,
        remote_peer: PeerId,
        remote_addr: Multiaddr,
        direction: Direction,
        now: float,
    ) -> Connection:
        """Open (register) a new connection and notify listeners."""
        conn = Connection(
            remote_peer=remote_peer,
            direction=direction,
            remote_addr=remote_addr,
            opened_at=now,
        )
        self._open_by_id[conn.connection_id] = conn
        self.connmgr.add_connection(conn, now)
        self.total_opened += 1
        for listener in self._listeners:
            listener.on_connected(conn, now)
        return conn

    def close_connection(self, conn: Connection, reason: CloseReason, now: float) -> None:
        """Close one connection; safe to call only for open connections."""
        if conn.connection_id not in self._open_by_id:
            raise KeyError(f"connection {conn.connection_id} is not open in this swarm")
        conn.close(now, reason)
        del self._open_by_id[conn.connection_id]
        self.connmgr.remove_connection(conn)
        self.total_closed += 1
        for listener in self._listeners:
            listener.on_disconnected(conn, now)

    def close_all(self, reason: CloseReason, now: float) -> List[Connection]:
        """Close every open connection (measurement shutdown)."""
        closed = []
        for conn in list(self._open_by_id.values()):
            self.close_connection(conn, reason, now)
            closed.append(conn)
        return closed

    def trim(self, now: float, force: bool = False) -> List[Connection]:
        """Run the connection manager and close its victims."""
        victims = self.connmgr.trim(now, force=force)
        for conn in victims:
            # The connmgr already dropped its own bookkeeping for the victims;
            # the swarm still owns the close (and the notification).
            if conn.connection_id in self._open_by_id:
                conn.close(now, CloseReason.LOCAL_TRIM)
                del self._open_by_id[conn.connection_id]
                self.total_closed += 1
                for listener in self._listeners:
                    listener.on_disconnected(conn, now)
        return victims

    # -- tagging passthrough ---------------------------------------------------------

    def tag_peer(self, peer: PeerId, tag: str, value: int) -> None:
        self.connmgr.tag_peer(peer, tag, value)

    def protect_peer(self, peer: PeerId, tag: str) -> None:
        self.connmgr.protect_peer(peer, tag)
