"""Runtime state of the fault-injection subsystem.

The :class:`FaultRuntime` owns its own RNG stream
(``random.Random(seed + config.seed_salt)``) and every probabilistic gate is
double-checked: a block that is absent **or** zero-rate performs no draws and
schedules no events, so fixed-seed goldens stay byte-identical unless a fault
can actually fire.  Peer assignments happen in peer-index order with a fixed
number of draws per active block, making the stream a pure function of the
assignment order — exactly the discipline :mod:`repro.netmodel` uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.faults.config import FaultConfig
from repro.faults.retry import RetryState
from repro.simulation.fabric import FabricRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netmodel.runtime import WalkClock
    from repro.simulation.network import SimPeer, SimulatedNetwork
    from repro.simulation.population import PeerProfile

#: recovery-delay samples kept per run (enough for any partition we model)
MAX_RECOVERY_SAMPLES = 10_000


class PeerFault:
    """Per-peer fault assignment (attached to ``SimPeer.flt``)."""

    __slots__ = ("side", "slow_factor", "crashable", "awaiting")

    def __init__(self) -> None:
        #: partition side: 0 = majority (with every vantage point), 1 = minority
        self.side = 0
        #: multiplicative RTT factor; 1.0 means the peer answers at full speed
        self.slow_factor = 1.0
        #: whether the crash process targets this peer
        self.crashable = False
        #: set at partition heal; cleared (and timed) on the first re-contact
        self.awaiting = False


@dataclass
class FaultStats:
    """Counters the resilience report aggregates; picklable for sweep workers."""

    peers: int = 0
    crash_eligible: int = 0
    slow_nodes: int = 0
    partition_minority: int = 0

    # DHT RPC message faults
    rpc_attempts: int = 0
    rpc_lost: int = 0
    rpc_duplicated: int = 0
    rpc_partitioned: int = 0

    # Bitswap exchange faults
    bitswap_attempts: int = 0
    bitswap_lost: int = 0
    bitswap_partitioned: int = 0

    # Slow-node degradation
    slow_charges: int = 0
    slow_penalty_total: float = 0.0

    # Crash/restart process
    crashes: int = 0
    restarts: int = 0
    recovery_republishes: int = 0

    # Partition lifecycle
    partition_severed: int = 0
    heal_time: Optional[float] = None
    recovered_peers: int = 0
    recovery_delays: List[float] = field(default_factory=list)
    recovery_samples_dropped: int = 0
    contacts_blocked: int = 0
    dials_blocked: int = 0

    # Retry resilience
    retry_calls: int = 0
    retry_extra: int = 0
    retry_recoveries: int = 0

    # Stale provider records (crash leftovers observed by retrievers)
    provider_checks: int = 0
    stale_provider_hits: int = 0

    @property
    def rpc_loss_rate(self) -> float:
        """Share of DHT RPCs that a fault (loss or partition) swallowed."""
        if self.rpc_attempts == 0:
            return 0.0
        return (self.rpc_lost + self.rpc_partitioned) / self.rpc_attempts

    @property
    def retry_amplification(self) -> float:
        """Actual attempts per logical RPC under the retry policy."""
        if self.retry_calls == 0:
            return 1.0
        return (self.retry_calls + self.retry_extra) / self.retry_calls

    @property
    def retry_recovery_rate(self) -> float:
        """Share of retried RPCs that a retry eventually saved."""
        if self.retry_extra == 0:
            return 0.0
        return self.retry_recoveries / self.retry_extra

    @property
    def stale_provider_rate(self) -> float:
        """Share of provider-record checks that hit a dead/rotated provider."""
        if self.provider_checks == 0:
            return 0.0
        return self.stale_provider_hits / self.provider_checks

    def note_recovery(self, delay: float) -> None:
        self.recovered_peers += 1
        if len(self.recovery_delays) < MAX_RECOVERY_SAMPLES:
            self.recovery_delays.append(delay)
        else:
            self.recovery_samples_dropped += 1


class FaultRuntime(FabricRuntime):
    """Deterministic fault injector wired into :class:`SimulatedNetwork`."""

    slot = "flt"
    name = "faults"

    def __init__(self, config: FaultConfig, seed: int, engine) -> None:
        self.config = config
        self.engine = engine
        self.rng = random.Random(seed + config.seed_salt)
        self.stats = FaultStats()
        #: ContentBehaviors registers itself here for republish-on-recovery
        self.content = None
        part = config.partition
        if part is not None and part.active:
            self._part_start = part.start
            self._part_end = part.start + part.duration
        else:
            self._part_start = float("inf")
            self._part_end = float("inf")
        self._duration: Optional[float] = None

    # -------------------------------------------------------------- assignment ----

    def assign_peer(
        self, profile: Optional["PeerProfile"] = None, *, exempt: bool = False
    ) -> PeerFault:
        """Draw one peer's fault assignment.

        Called in peer-index order; each active block performs a fixed number
        of draws (crash: 1, partition: 1, slow: 2) so the stream is a pure
        function of the assignment order.  Vantage-point peers (hydra heads,
        crawlers) are ``exempt``: their draws still happen — keeping the
        stream aligned — but never mark them faulty.  The fabric passes the
        peer's ``profile`` (the :class:`FabricRuntime` hook form) and the
        exemption is derived from it.
        """
        if profile is not None:
            exempt = profile.is_hydra_head or profile.is_crawler
        flt = PeerFault()
        self.stats.peers += 1
        crash = self.config.crash
        if crash is not None and crash.active:
            eligible = self.rng.random() < crash.share
            if eligible and not exempt:
                flt.crashable = True
                self.stats.crash_eligible += 1
        part = self.config.partition
        if part is not None and part.active:
            minority = self.rng.random() < part.share
            if minority and not exempt:
                flt.side = 1
                self.stats.partition_minority += 1
        slow = self.config.slow
        if slow is not None and slow.active:
            is_slow = self.rng.random() < slow.share
            factor = self.rng.uniform(slow.min_factor, slow.max_factor)
            if is_slow and not exempt:
                flt.slow_factor = factor
                self.stats.slow_nodes += 1
        return flt

    # ------------------------------------------------------------- installation ----

    def install(self, network: "SimulatedNetwork", duration: float) -> None:
        """Schedule the crash and partition processes for one measurement."""
        self._duration = duration
        crash = self.config.crash
        if crash is not None and crash.active:
            for peer in network.peers:
                flt = peer.flt
                if flt is not None and flt.crashable:
                    self._schedule_crash(network, peer)
        part = self.config.partition
        if part is not None and part.active and self._part_start < duration:
            self.engine.schedule_at(self._part_start, self._partition_start, network)
            if self._part_end < duration:
                self.stats.heal_time = self._part_end
                self.engine.schedule_at(self._part_end, self._partition_heal, network)

    # --------------------------------------------------------------- partitions ----

    def partition_active(self, now: float) -> bool:
        return self._part_start <= now < self._part_end

    def partitioned(
        self, src: Optional[PeerFault], dst: Optional[PeerFault], now: float
    ) -> bool:
        """Whether the split separates ``src`` from ``dst`` right now.

        ``None`` stands for a measurement identity (or the crawler baseline),
        which always sits on the majority side.
        """
        if not self.partition_active(now):
            return False
        src_side = src.side if src is not None else 0
        dst_side = dst.side if dst is not None else 0
        return src_side != dst_side

    def contact_blocked(self, flt: Optional[PeerFault]) -> bool:
        """Whether a peer→identity contact is cut off by the split."""
        if flt is None or flt.side == 0 or not self.partition_active(self.engine.now):
            return False
        self.stats.contacts_blocked += 1
        return True

    def contact_retry_delay(self) -> float:
        """Delay until a blocked contact retries: just past the heal, spread
        so the minority's reconnects do not stampede the vantage points."""
        part = self.config.partition
        spread = part.recovery_spread if part is not None else 60.0
        return (self._part_end - self.engine.now) + self.rng.uniform(0.0, spread)

    def dial_blocked(self, flt: Optional[PeerFault]) -> bool:
        """Whether an identity's outbound dial is cut off by the split."""
        if flt is None or flt.side == 0 or not self.partition_active(self.engine.now):
            return False
        self.stats.dials_blocked += 1
        return True

    def note_contact(self, flt: Optional[PeerFault]) -> None:
        """A peer reached a vantage point; record its post-heal recovery."""
        if flt is None or not flt.awaiting:
            return
        flt.awaiting = False
        self.stats.note_recovery(max(0.0, self.engine.now - self._part_end))

    def _partition_start(self, network: "SimulatedNetwork") -> None:
        for _, peer in sorted(network._online.items()):
            flt = peer.flt
            if flt is None or flt.side == 0:
                continue
            self.stats.partition_severed += network.sever_connections(peer)

    def _partition_heal(self, network: "SimulatedNetwork") -> None:
        part = self.config.partition
        for _, peer in sorted(network._online.items()):
            flt = peer.flt
            if flt is None or flt.side == 0:
                continue
            flt.awaiting = True
            for identity in network.identities:
                delay = self.rng.uniform(0.0, part.recovery_spread)
                self.engine.schedule(delay, network._attempt_contact, peer, identity)

    # ------------------------------------------------------------------ crashes ----

    def _schedule_crash(self, network: "SimulatedNetwork", peer: "SimPeer") -> None:
        crash = self.config.crash
        delay = self.rng.expovariate(1.0 / crash.mtbf)
        if self._duration is not None and self.engine.now + delay > self._duration:
            return
        self.engine.schedule(delay, self._crash, network, peer)

    def _crash(self, network: "SimulatedNetwork", peer: "SimPeer") -> None:
        # Renewal first: the next crash of this peer is drawn now, whether or
        # not this one lands, keeping the stream independent of peer state.
        self._schedule_crash(network, peer)
        if not peer.online:
            return
        self.stats.crashes += 1
        network.crash_peer(peer)
        crash = self.config.crash
        delay = self.rng.expovariate(1.0 / crash.restart_mean)
        if self._duration is not None and self.engine.now + delay > self._duration:
            return
        self.engine.schedule(delay, self._restart, network, peer)

    def _restart(self, network: "SimulatedNetwork", peer: "SimPeer") -> None:
        if peer.online:
            return
        network._session_start(peer)
        if not peer.online:
            # max_sessions exhausted: the peer stays down for good.
            return
        self.stats.restarts += 1
        if self.config.republish_on_recovery and self.content is not None:
            self.content.on_peer_recovered(peer)

    # ---------------------------------------------------------------- messages ----

    def deliver(self, src: Optional[PeerFault], dst: Optional[PeerFault]) -> bool:
        """Whether one DHT RPC makes it across the wire (both directions)."""
        self.stats.rpc_attempts += 1
        if self.partitioned(src, dst, self.engine.now):
            self.stats.rpc_partitioned += 1
            return False
        links = self.config.links
        if links is not None and links.active:
            if links.loss_rate > 0.0 and self.rng.random() < links.loss_rate:
                self.stats.rpc_lost += 1
                return False
            if links.duplicate_rate > 0.0 and self.rng.random() < links.duplicate_rate:
                # The duplicate reply is idempotent for every handler we
                # model; only the bookkeeping notices it.
                self.stats.rpc_duplicated += 1
        return True

    def bitswap_deliver(self, src: Optional[PeerFault], dst: Optional[PeerFault]) -> bool:
        """Whether one Bitswap want/block exchange survives the wire."""
        self.stats.bitswap_attempts += 1
        if self.partitioned(src, dst, self.engine.now):
            self.stats.bitswap_partitioned += 1
            return False
        links = self.config.links
        if links is not None and links.loss_rate > 0.0:
            if self.rng.random() < links.loss_rate:
                self.stats.bitswap_lost += 1
                return False
        return True

    def slow_penalty(self, flt: Optional[PeerFault], rtt: float) -> float:
        """Extra walk-clock seconds a slow responder costs on top of ``rtt``."""
        if flt is None or flt.slow_factor <= 1.0 or rtt <= 0.0:
            return 0.0
        penalty = rtt * (flt.slow_factor - 1.0)
        self.stats.slow_charges += 1
        self.stats.slow_penalty_total += penalty
        return penalty

    # ---------------------------------------------------------------- resilience ----

    def retry_state(self, clock=None, tracer=None) -> Optional[RetryState]:
        """A fresh per-walk retry executor (None when no policy is configured).

        ``tracer`` (a :class:`~repro.obs.spans.SpanTracer` with an open
        operation) makes charged backoff and retry attempts visible as span
        leaves; it never changes what the executor does.
        """
        if self.config.retry is None:
            return None
        return RetryState(
            self.config.retry, self.rng, clock=clock, stats=self.stats, tracer=tracer
        )

    # -- FabricRuntime hooks ---------------------------------------------------------

    def on_contact(self, peer: "SimPeer") -> Optional[float]:
        # A partitioned peer retries just past the scheduled heal; the delay
        # draw happens only when the contact is actually blocked, keeping the
        # fault stream untouched on clean contacts.
        if self.contact_blocked(peer.flt):
            return self.contact_retry_delay()
        return None

    def note_contact_made(self, peer: "SimPeer") -> None:
        self.note_contact(peer.flt)

    def on_dial(self, peer: "SimPeer") -> bool:
        return not self.dial_blocked(peer.flt)

    def on_rpc(self, src: Optional["SimPeer"], dst: "SimPeer") -> bool:
        return self.deliver(src.flt if src is not None else None, dst.flt)

    def on_timed_rpc(
        self, clock: "WalkClock", src: Optional["SimPeer"], dst: "SimPeer"
    ) -> bool:
        # A slow responder burns its RTT spike on the walk clock whether or
        # not the exchange then survives the wire.
        clock.elapsed += self.slow_penalty(dst.flt, clock.last_rtt)
        return self.deliver(src.flt if src is not None else None, dst.flt)
