"""Retry policy with capped exponential backoff and deterministic jitter.

The policy is pure configuration; the per-walk :class:`RetryState` carries the
RNG (the fault stream), the optional :class:`~repro.netmodel.runtime.WalkClock`
(so backoff burns the walk's latency budget and retries stop once the budget
is spent), and the stats sink.  The kademlia walks and the Bitswap engine only
duck-call ``retry.call(fn, *args)`` — they never import this module at
runtime, which keeps the protocol layers free of fault dependencies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``base_delay * multiplier**n``, jittered."""

    # Total attempts per logical RPC, including the first one.
    max_attempts: int = 3
    # Backoff before the first retry, in seconds.
    base_delay: float = 0.25
    # Exponential growth factor between consecutive retries.
    multiplier: float = 2.0
    # Hard cap on a single backoff interval, in seconds.
    max_delay: float = 8.0
    # Relative jitter: each backoff is scaled by 1 + U(-jitter, +jitter).
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.base_delay <= 0.0:
            raise ValueError(f"base_delay must be positive, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be at least 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay must be at least base_delay, got "
                f"{self.max_delay} < {self.base_delay}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be within [0, 1), got {self.jitter}")

    def backoff(self, retry_index: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``retry_index`` (0-based), in seconds."""
        delay = min(self.base_delay * self.multiplier**retry_index, self.max_delay)
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return delay


class RetryState:
    """One walk's retry executor; hand it to the walk as ``retry=``."""

    __slots__ = ("policy", "rng", "clock", "stats", "tracer")

    def __init__(
        self,
        policy: RetryPolicy,
        rng: random.Random,
        clock: Optional[Any] = None,
        stats: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        self.policy = policy
        self.rng = rng
        self.clock = clock
        self.stats = stats
        #: span tracer of the enclosing traced operation (duck-typed
        #: :class:`~repro.obs.spans.SpanTracer`); records charged backoff as
        #: leaves and stamps re-issued RPC leaves with their attempt number
        self.tracer = tracer

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)``, retrying ``None`` results with backoff.

        ``None`` is the fabric's network-failure sentinel; any other value
        (including an empty reply) counts as delivered.  Backoff time is
        charged to the walk clock when one is attached, so retries respect
        the walk's latency budget: once the clock expires the remaining
        attempts are abandoned rather than burning more budget.
        """
        stats = self.stats
        tracer = self.tracer
        if stats is not None:
            stats.retry_calls += 1
        result = fn(*args)
        attempt = 1
        while result is None and attempt < self.policy.max_attempts:
            delay = self.policy.backoff(attempt - 1, self.rng)
            if self.clock is not None:
                # The backoff wait burns walk budget; if it (or earlier RPCs)
                # spent the budget, abandon the remaining attempts.
                self.clock.elapsed += delay
                if tracer is not None:
                    # Only clocked backoff is part of the measured latency,
                    # so only clocked backoff becomes a leaf.
                    tracer.backoff(delay, attempt)
                if self.clock.expired():
                    break
            attempt += 1
            if stats is not None:
                stats.retry_extra += 1
            if tracer is not None:
                tracer.set_attempt(attempt - 1)
            result = fn(*args)
            if result is not None and stats is not None:
                stats.retry_recoveries += 1
        if tracer is not None:
            tracer.set_attempt(0)
        return result
