"""Deterministic fault injection and resilience for the simulated fabric."""

from repro.faults.config import (
    CrashConfig,
    FaultConfig,
    LinkFaultConfig,
    PartitionConfig,
    SlowNodeConfig,
)
from repro.faults.retry import RetryPolicy, RetryState
from repro.faults.runtime import FaultRuntime, FaultStats, PeerFault

__all__ = [
    "CrashConfig",
    "FaultConfig",
    "FaultRuntime",
    "FaultStats",
    "LinkFaultConfig",
    "PartitionConfig",
    "PeerFault",
    "RetryPolicy",
    "RetryState",
    "SlowNodeConfig",
]
