"""Configuration for the fault-injection subsystem.

Faults follow the same identity-by-default contract as ``netmodel`` and
``adversary``: ``PopulationConfig.faults`` defaults to ``None``, and a run
without a fault config (or with a config whose every block is absent or
zero-rate) draws **nothing** from any RNG and schedules **no** events, so all
fixed-seed goldens stay byte-identical.  When a block is active, every draw
comes from a dedicated stream (``random.Random(seed + seed_salt)``) so the
honest population/network/behavior streams are never perturbed.

Four orthogonal fault families can be mixed freely:

* ``links`` — per-RPC message loss and duplication on the simulated wire.
* ``crash`` — abrupt peer death with *dirty* state: unlike graceful session
  churn, a crashed peer withdraws nothing (provider records it stored for
  others, its own records on remote servers, and Bitswap ledgers all stay
  behind) and only re-enters via the fault runtime's restart event.
* ``partition`` — a regional split: a minority share of peers is unreachable
  for a scheduled window, then heals with a bounded reconnect spread.
* ``slow`` — slow-node degradation: a share of peers answers with a
  multiplicative RTT spike, eating walk budgets.

Resilience is configured alongside injection: ``retry`` attaches a
:class:`~repro.faults.retry.RetryPolicy` to DHT walks and Bitswap fetches,
and ``republish_on_recovery`` makes crashed providers re-announce their
content once they restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.retry import RetryPolicy

_MINUTE = 60.0
_HOUR = 3600.0


@dataclass(frozen=True)
class LinkFaultConfig:
    """Per-link message-level faults applied to every simulated RPC."""

    # Probability that a single RPC (request or its reply) is lost outright.
    loss_rate: float = 0.1
    # Probability that a surviving reply arrives twice; the duplicate is
    # idempotent for every handler we model, so this only burns bookkeeping.
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be within [0, 1], got {self.loss_rate}")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError(f"duplicate_rate must be within [0, 1], got {self.duplicate_rate}")

    @property
    def active(self) -> bool:
        return self.loss_rate > 0.0 or self.duplicate_rate > 0.0


@dataclass(frozen=True)
class CrashConfig:
    """Abrupt crash/restart process for a share of the population."""

    # Mean time between crash attempts per eligible peer (exponential renewal).
    mtbf: float = 6.0 * _HOUR
    # Mean downtime before the restart attempt (exponential).
    restart_mean: float = 10.0 * _MINUTE
    # Share of (non-vantage) peers that is crash-eligible.
    share: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0.0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf}")
        if self.restart_mean <= 0.0:
            raise ValueError(f"restart_mean must be positive, got {self.restart_mean}")
        if not 0.0 <= self.share <= 1.0:
            raise ValueError(f"share must be within [0, 1], got {self.share}")

    @property
    def active(self) -> bool:
        return self.share > 0.0


@dataclass(frozen=True)
class PartitionConfig:
    """One scheduled regional partition with a known heal time."""

    # Absolute simulation time (seconds) at which the split opens.
    start: float
    # How long the split lasts; the heal fires at ``start + duration``.
    duration: float
    # Share of (non-vantage) peers assigned to the unreachable minority side.
    share: float = 0.4
    # Post-heal reconnect jitter bound: minority peers re-contact the vantage
    # points at heal + U(0, recovery_spread), bounding time-to-recover.
    recovery_spread: float = 5.0 * _MINUTE

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not 0.0 <= self.share <= 1.0:
            raise ValueError(f"share must be within [0, 1], got {self.share}")
        if self.recovery_spread <= 0.0:
            raise ValueError(f"recovery_spread must be positive, got {self.recovery_spread}")

    @property
    def active(self) -> bool:
        return self.share > 0.0


@dataclass(frozen=True)
class SlowNodeConfig:
    """Slow-node degradation: multiplicative RTT spikes for a peer share."""

    # Share of (non-vantage) peers that answers slowly.
    share: float = 0.1
    # Uniform bounds on the RTT multiplier drawn per slow peer.
    min_factor: float = 3.0
    max_factor: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.share <= 1.0:
            raise ValueError(f"share must be within [0, 1], got {self.share}")
        if self.min_factor < 1.0:
            raise ValueError(f"min_factor must be at least 1, got {self.min_factor}")
        if self.max_factor < self.min_factor:
            raise ValueError(
                f"max_factor must be at least min_factor, got "
                f"{self.max_factor} < {self.min_factor}"
            )

    @property
    def active(self) -> bool:
        return self.share > 0.0


@dataclass(frozen=True)
class FaultConfig:
    """Top-level fault switchboard; every block defaults to absent."""

    links: Optional[LinkFaultConfig] = None
    crash: Optional[CrashConfig] = None
    partition: Optional[PartitionConfig] = None
    slow: Optional[SlowNodeConfig] = None
    # Resilience: retry policy for DHT walks and Bitswap fetches.
    retry: Optional[RetryPolicy] = None
    # Resilience: crashed providers re-announce their items after restart.
    republish_on_recovery: bool = False
    # Added to the population seed for the dedicated fault stream; 11000 keeps
    # it clear of the netmodel (7000) and adversary (9000) salts.
    seed_salt: int = 11000

    def __post_init__(self) -> None:
        if not isinstance(self.seed_salt, int):
            raise ValueError(f"seed_salt must be an int, got {self.seed_salt!r}")

    @property
    def enabled(self) -> bool:
        """True when at least one fault family can actually fire.

        The fabric only instantiates a runtime for enabled configs: a config
        whose blocks are all absent or zero-rate is indistinguishable from
        ``faults=None`` (nothing is drawn, nothing is scheduled — and a
        ``retry`` policy without any fault to retry against stays dormant
        too, preserving the identity guarantee).
        """
        return any(
            block is not None and block.active
            for block in (self.links, self.crash, self.partition, self.slow)
        )
