"""A model of the hydra-booster node.

Hydra-booster accelerates IPFS content routing by running many DHT "heads" —
each with its own PeerId, hence its own position in the Kademlia keyspace —
that all share a single record store (the "belly").  The paper uses a hydra
with two or three heads as its second passive vantage point: more heads mean a
wider horizon, because peers near each head's keyspace position seek
connections to it.
"""

from repro.hydra.head import HydraHead, HYDRA_AGENT_VERSION
from repro.hydra.hydra import HydraNode, Belly

__all__ = ["HydraHead", "HydraNode", "Belly", "HYDRA_AGENT_VERSION"]
