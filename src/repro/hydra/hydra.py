"""The hydra-booster node: many heads, one belly.

The belly is a shared datastore for provider/IPNS records.  For the
measurement it only matters that all heads are one operational node on one
machine — the paper notes that grouping by IP collapses ~1'026 hydra heads into
a handful of "peers", one of the weaknesses of the multiaddress-based
network-size estimate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.hydra.head import HydraHead
from repro.libp2p.peer_id import PeerId


@dataclass
class Belly:
    """Shared record store of all heads (provider and IPNS records)."""

    provider_records: Dict[str, Set[PeerId]] = field(default_factory=dict)
    ipns_records: Dict[str, bytes] = field(default_factory=dict)

    def add_provider(self, key: str, provider: PeerId) -> None:
        self.provider_records.setdefault(key, set()).add(provider)

    def providers_for(self, key: str) -> Set[PeerId]:
        return set(self.provider_records.get(key, set()))

    def put_ipns(self, name: str, record: bytes) -> None:
        self.ipns_records[name] = record

    def get_ipns(self, name: str) -> Optional[bytes]:
        return self.ipns_records.get(name)

    def record_count(self) -> int:
        return len(self.provider_records) + len(self.ipns_records)


class HydraNode:
    """A hydra-booster with ``n_heads`` heads sharing one belly."""

    def __init__(
        self,
        n_heads: int,
        rng: Optional[random.Random] = None,
        port: int = 3001,
        low_water: Optional[int] = None,
        high_water: Optional[int] = None,
    ) -> None:
        if n_heads <= 0:
            raise ValueError("a hydra needs at least one head")
        self.rng = rng or random.Random()
        self.belly = Belly()
        head_kwargs = {}
        if low_water is not None:
            head_kwargs["low_water"] = low_water
        if high_water is not None:
            head_kwargs["high_water"] = high_water
        self.heads: List[HydraHead] = [
            HydraHead(head_index=i, rng=self.rng, port=port, **head_kwargs)
            for i in range(n_heads)
        ]

    def __len__(self) -> int:
        return len(self.heads)

    def head(self, index: int) -> HydraHead:
        return self.heads[index]

    def peer_ids(self) -> List[PeerId]:
        return [head.peer_id for head in self.heads]

    # -- aggregate views over all heads (what the paper reports as "the Hydra") -----

    def union_known_peers(self) -> Set[PeerId]:
        """The union of all heads' peerstores — Fig. 2 reports exactly this."""
        union: Set[PeerId] = set()
        for head in self.heads:
            union.update(head.peerstore.peers())
        return union

    def union_dht_servers(self) -> Set[PeerId]:
        union: Set[PeerId] = set()
        for head in self.heads:
            union.update(head.peerstore.dht_servers())
        return union

    def total_connections(self) -> int:
        return sum(head.connection_count() for head in self.heads)

    def tick(self, now: float) -> int:
        """Run every head's trim cycle; returns the number of trimmed connections."""
        trimmed = 0
        for head in self.heads:
            trimmed += len(head.tick(now))
        return trimmed

    def shutdown(self, now: float) -> None:
        for head in self.heads:
            head.shutdown(now)

    def store_provider_record(self, key: str, provider: PeerId) -> None:
        """Any head receiving a provider record stores it in the shared belly."""
        self.belly.add_provider(key, provider)
