"""A single hydra head.

A head provides "basic networking functionality and DHT management": it is a
DHT-Server with its own PeerId, swarm, peerstore, and connection manager, but
no Bitswap (hydras never exchange content).  Heads are deliberately spread over
the keyspace so the hydra as a whole covers more of the DHT.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.ipfs.peerstore import Peerstore
from repro.ipfs.swarm import Swarm
from repro.kademlia.dht import DHTMode, KademliaNode
from repro.libp2p.connection import CloseReason, Connection, Direction
from repro.libp2p.connmgr import ConnManagerConfig
from repro.libp2p.crypto import generate_keypair
from repro.libp2p.identify import IdentifyRecord
from repro.libp2p.multiaddr import Multiaddr
from repro.libp2p.peer_id import PeerId
from repro.libp2p.protocols import KAD_DHT, hydra_protocols

HYDRA_AGENT_VERSION = "hydra-booster/0.7.4"

#: hydra-booster does not apply go-ipfs's tight defaults; heads keep many more
#: connections before trimming (modelled after its much higher limits).
HYDRA_LOW_WATER = 15_000
HYDRA_HIGH_WATER = 20_000


class HydraHead:
    """One head: an independent DHT-Server identity of the hydra."""

    def __init__(
        self,
        head_index: int,
        rng: Optional[random.Random] = None,
        low_water: int = HYDRA_LOW_WATER,
        high_water: int = HYDRA_HIGH_WATER,
        port: int = 3001,
    ) -> None:
        self.head_index = head_index
        self.rng = rng or random.Random()
        self.keypair = generate_keypair(self.rng)
        self.peer_id = PeerId.from_keypair(self.keypair)
        self.port = port + head_index
        self.peerstore = Peerstore()
        self.swarm = Swarm(
            self.peer_id,
            ConnManagerConfig(low_water=low_water, high_water=high_water),
        )
        self.dht = KademliaNode(self.peer_id, mode=DHTMode.SERVER, rng=self.rng)

    def own_identify_record(self) -> IdentifyRecord:
        return IdentifyRecord.make(
            agent_version=HYDRA_AGENT_VERSION,
            protocols=hydra_protocols(),
        )

    # -- connection handling (mirrors IpfsNode's surface) ---------------------------

    def handle_inbound_connection(
        self, remote_peer: PeerId, remote_addr: Multiaddr, now: float
    ) -> Connection:
        conn = self.swarm.open_connection(remote_peer, remote_addr, Direction.INBOUND, now)
        self.peerstore.set_connected(remote_peer, True, now, observed_addr=remote_addr)
        return conn

    def dial(self, remote_peer: PeerId, remote_addr: Multiaddr, now: float) -> Connection:
        conn = self.swarm.open_connection(remote_peer, remote_addr, Direction.OUTBOUND, now)
        self.peerstore.set_connected(remote_peer, True, now, observed_addr=remote_addr)
        return conn

    def close_connection(self, conn: Connection, reason: CloseReason, now: float) -> None:
        self.swarm.close_connection(conn, reason, now)
        if not self.swarm.is_connected(conn.remote_peer):
            self.peerstore.set_connected(conn.remote_peer, False, now)

    def receive_identify(self, remote_peer: PeerId, record: IdentifyRecord, now: float) -> None:
        self.peerstore.record_identify(remote_peer, record, now)
        if KAD_DHT in record.protocols:
            self.dht.observe_peer(remote_peer, is_server=True)
            self.swarm.tag_peer(remote_peer, "kad", 5)
        else:
            self.dht.observe_peer(remote_peer, is_server=False)

    def tick(self, now: float) -> List[Connection]:
        return self.swarm.trim(now)

    def shutdown(self, now: float) -> List[Connection]:
        closed = self.swarm.close_all(CloseReason.LOCAL_SHUTDOWN, now)
        for conn in closed:
            self.peerstore.set_connected(conn.remote_peer, False, now)
        return closed

    def connection_count(self) -> int:
        return self.swarm.connection_count()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HydraHead(#{self.head_index}, {self.peer_id.short()})"
