"""Reproduction of "Passively Measuring IPFS Churn and Network Size" (ICDCS 2022).

The package is organised in layers:

* :mod:`repro.libp2p`, :mod:`repro.kademlia`, :mod:`repro.ipfs`,
  :mod:`repro.hydra`, :mod:`repro.crawler` — the substrates: peer identities,
  the DHT, the go-ipfs client model, the hydra-booster, and the active-crawler
  baseline.
* :mod:`repro.simulation` — the discrete-event IPFS network simulator that
  stands in for the live network the paper measured.
* :mod:`repro.core` — the paper's contribution: passive measurement recording
  and the offline analyses (churn, meta data, horizon, time series, network
  size).
* :mod:`repro.experiments` — the measurement periods of Table I and the
  paper's reference values, plus a cached runner used by the benchmarks.
* :mod:`repro.scenarios` — the scenario registry: the paper periods plus
  stress scenarios (flash crowds, diurnal weeks, mass outages, …), every
  entry resolvable by name and sweepable via ``python -m repro.sweep``.

Quick start::

    from repro.experiments import run_period_cached
    from repro.core import connection_statistics

    result = run_period_cached("P2", n_peers=500, duration_days=0.25)
    report = connection_statistics(result.dataset("go-ipfs"))
    print(report.all_stats, report.peer_stats)
"""

__version__ = "0.1.0"

__all__ = [
    "analysis",
    "core",
    "crawler",
    "experiments",
    "hydra",
    "ipfs",
    "kademlia",
    "libp2p",
    "perf",
    "scenarios",
    "simulation",
    "sweep",
]
