"""The built-in scenario catalog.

Six families are registered at import time:

* the six paper measurement periods (``p0`` … ``p4``, ``p14``), thin wrappers
  around :mod:`repro.experiments.periods` so the sweep CLI can run Table I
  rows by name,
* six stress scenarios that exercise churn regimes the paper's live
  measurement could not control: flash crowds, diurnal weeks, correlated mass
  outages, client-heavy populations, hydra head scaling, and the active
  crawler racing a flash crowd,
* three content-routing scenarios that run a publish/retrieve workload
  (provider records with TTL expiry and republish, Zipf-popular items,
  Bitswap fetches) against the churning fabric: steady publishing under paper
  churn, a retrieval flash crowd, and a record-expiry regime with republish
  disabled, and
* four adversarial scenarios (:mod:`repro.adversary`) that attack the
  measurements themselves: a Sybil flood inflating density-based network-size
  estimates, an eclipse ring capturing provider records, routing
  poisoners/droppers degrading lookups and the crawler, and churn spoofers
  polluting the Table IV classification, and
* four network-realism scenarios (:mod:`repro.netmodel`) that drop the
  idealised zero-latency, fully-dialable fabric: a NAT-heavy population the
  crawler undercounts, a high-RTT regime stretching retrieval latencies, a
  relay-assisted content workload, and time-bounded lookups that give up, and
* four fault-injection scenarios (:mod:`repro.faults`) that pair injected
  failures with retry/backoff resilience: lossy links dropping RPCs, a
  regional partition with a scheduled heal, a crash storm leaving dirty
  provider records behind, and a slow-node tail eating walk budgets, and
* four data-plane scenarios (:mod:`repro.bandwidth`) that give blocks real
  sizes and peers real up/down links: a flash crowd over large blocks, a
  relayed plurality on starved uplinks, a provider hotspot saturating its
  uplink, and a mixed-size catalog spreading transfer percentiles.

Every stress scenario derives its connection-manager watermarks through the
same :func:`repro.experiments.periods.scale_watermarks` helper the paper
periods use, so watermark mechanics stay comparable across the catalog.
Content and adversarial scenarios derive their workload intervals and attack
windows from the scenario duration, so even heavily compressed sweep cells
run the whole publish → resolve → expire (and join → attack → distort)
cycle.  The adversarial builders take an optional strength override
(``sybil_count`` etc.) so benchmarks can sweep attack power.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, Optional

from repro.adversary.config import (
    AdversaryConfig,
    ChurnSpoofConfig,
    EclipseConfig,
    RoutingPoisonConfig,
    SybilFloodConfig,
)
from repro.bandwidth.config import BandwidthConfig
from repro.experiments.periods import PERIODS, scale_watermarks
from repro.faults.config import (
    CrashConfig,
    FaultConfig,
    LinkFaultConfig,
    PartitionConfig,
    SlowNodeConfig,
)
from repro.faults.retry import RetryPolicy
from repro.ipfs.config import IpfsConfig
from repro.kademlia.dht import DHTMode
from repro.netmodel.config import (
    NetModelConfig,
    ReachabilityConfig,
    RegionModelConfig,
)
from repro.simulation.churn_models import (
    DAY,
    HOUR,
    ChurnModel,
    DiurnalChurnModel,
    FlashCrowdChurnModel,
    MassOutageChurnModel,
)
from repro.simulation.content import ContentRoutingConfig
from repro.simulation.population import (
    PeerClass,
    PopulationConfig,
    default_session_model,
)
from repro.simulation.scenario import ScenarioConfig
from repro.scenarios.registry import ScenarioSpec, register

#: hydra-booster's (unscaled) connection-manager watermarks
HYDRA_BASE_LOW_WATER = 15_000
HYDRA_BASE_HIGH_WATER = 20_000


# -- the paper's measurement periods ------------------------------------------------

def _register_paper_periods() -> None:
    for period_id, spec in PERIODS.items():
        if spec.go_ipfs_mode is None:
            vantage = "hydra only"
        else:
            vantage = "Server" if spec.go_ipfs_mode is DHTMode.SERVER else "Client"
        default_days = (
            spec.bench_duration_days
            if spec.bench_duration_days is not None
            else spec.duration_days
        )
        register(
            ScenarioSpec(
                name=period_id.lower(),
                description=(
                    f"Paper period {period_id} ({spec.start_date} – {spec.end_date}, "
                    f"watermarks {spec.low_water}/{spec.high_water})"
                ),
                builder=lambda peers, days, seed, _spec=spec: _spec.scenario_config(
                    n_peers=peers, duration_days=days, seed=seed
                ),
                tags=("paper",),
                default_peers=spec.bench_peers,
                default_duration_days=default_days,
                knobs={
                    "low_water": spec.low_water,
                    "high_water": spec.high_water,
                    "go_ipfs": vantage,
                    "hydra_heads": spec.hydra_heads,
                    "crawler": spec.run_crawler,
                },
            )
        )


# -- stress scenarios ---------------------------------------------------------------

#: class shares of a one-time-dominated crowd population
FLASH_CROWD_SHARES: Dict[PeerClass, float] = {
    PeerClass.HEAVY: 0.10,
    PeerClass.NORMAL: 0.18,
    PeerClass.LIGHT: 0.22,
    PeerClass.ONE_TIME: 0.50,
}
FLASH_CROWD_INTENSITY = 6.0
FLASH_CROWD_ARRIVAL_SHARE = 0.85
#: crowd peers arrive *looking for* content near the vantage point: they
#: discover it ~3x faster than the organic population
FLASH_CROWD_DISCOVERY_SCALE = 0.3

DIURNAL_AMPLITUDE = 0.6
DIURNAL_PEAK = 18 * HOUR

MASS_OUTAGE_REGION_SHARE = 0.45

CLIENT_HEAVY_SERVER_FACTOR = 0.15
CLIENT_HEAVY_NAT_SHARE = 0.70

HYDRA_SCALING_HEADS = 6


def _burst_window(duration: float) -> tuple:
    """Burst placement shared by the flash-crowd scenarios: starts at 30 % of
    the window and lasts a quarter of it (capped at two hours)."""
    burst_start = duration * 0.30
    burst_duration = min(2 * HOUR, max(duration * 0.25, 60.0))
    return burst_start, burst_duration


def _flash_crowd_factory(burst_start: float, burst_duration: float):
    def factory(peer_class: PeerClass, rng: random.Random) -> ChurnModel:
        return FlashCrowdChurnModel(
            base=default_session_model(peer_class, rng),
            burst_start=burst_start,
            burst_duration=burst_duration,
            intensity=FLASH_CROWD_INTENSITY,
            arrival_share=FLASH_CROWD_ARRIVAL_SHARE,
        )

    return factory


def _server_vantage(low_water: int, high_water: int, n_peers: int) -> IpfsConfig:
    low, high = scale_watermarks(low_water, high_water, n_peers)
    return IpfsConfig(low_water=low, high_water=high, dht_mode=DHTMode.SERVER)


def _flash_crowd(n_peers: int, duration_days: float, seed: int) -> ScenarioConfig:
    duration = duration_days * DAY
    burst_start, burst_duration = _burst_window(duration)
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        class_shares=dict(FLASH_CROWD_SHARES),
        churn_model_factory=_flash_crowd_factory(burst_start, burst_duration),
        discovery_scale=FLASH_CROWD_DISCOVERY_SCALE,
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        seed=seed,
    )


def _diurnal_factory(peer_class: PeerClass, rng: random.Random) -> ChurnModel:
    return DiurnalChurnModel(
        base=default_session_model(peer_class, rng),
        amplitude=DIURNAL_AMPLITUDE,
        peak_time=DIURNAL_PEAK,
    )


def _diurnal_week(n_peers: int, duration_days: float, seed: int) -> ScenarioConfig:
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        churn_model_factory=_diurnal_factory,
    )
    return ScenarioConfig(
        duration=duration_days * DAY,
        population=population,
        go_ipfs=_server_vantage(18_000, 20_000, n_peers),
        seed=seed,
    )


def _mass_outage_factory(outage_start: float, outage_duration: float):
    def factory(peer_class: PeerClass, rng: random.Random) -> ChurnModel:
        base = default_session_model(peer_class, rng)
        if rng.random() >= MASS_OUTAGE_REGION_SHARE:
            return base
        return MassOutageChurnModel(
            base=base,
            outage_start=outage_start,
            outage_duration=outage_duration,
        )

    return factory


def _mass_outage(n_peers: int, duration_days: float, seed: int) -> ScenarioConfig:
    duration = duration_days * DAY
    outage_start = duration * 0.40
    outage_duration = max(duration * 0.15, 60.0)
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        churn_model_factory=_mass_outage_factory(outage_start, outage_duration),
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        seed=seed,
    )


def _client_heavy(n_peers: int, duration_days: float, seed: int) -> ScenarioConfig:
    base = PopulationConfig.scaled_to_paper(n_peers, seed=seed)
    population = replace(
        base,
        server_share_per_class={
            cls: share * CLIENT_HEAVY_SERVER_FACTOR
            for cls, share in base.server_share_per_class.items()
        },
        nat_share=CLIENT_HEAVY_NAT_SHARE,
    )
    return ScenarioConfig(
        duration=duration_days * DAY,
        population=population,
        go_ipfs=_server_vantage(600, 900, n_peers),
        seed=seed,
    )


def _hydra_scaling(n_peers: int, duration_days: float, seed: int) -> ScenarioConfig:
    low, high = scale_watermarks(HYDRA_BASE_LOW_WATER, HYDRA_BASE_HIGH_WATER, n_peers)
    return ScenarioConfig(
        duration=duration_days * DAY,
        population=PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        go_ipfs=None,
        hydra_heads=HYDRA_SCALING_HEADS,
        hydra_low_water=low,
        hydra_high_water=high,
        seed=seed,
    )


def _crawler_vs_passive_under_burst(
    n_peers: int, duration_days: float, seed: int
) -> ScenarioConfig:
    duration = duration_days * DAY
    burst_start, burst_duration = _burst_window(duration)
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        class_shares=dict(FLASH_CROWD_SHARES),
        churn_model_factory=_flash_crowd_factory(burst_start, burst_duration),
        discovery_scale=FLASH_CROWD_DISCOVERY_SCALE,
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(18_000, 20_000, n_peers),
        run_crawler=True,
        # Crawl often enough that at least one crawl lands inside the burst
        # even for heavily compressed sweep durations.
        crawl_interval=max(duration / 3.0, 600.0),
        seed=seed,
    )


# -- content-routing scenarios ------------------------------------------------------

#: workload intervals relative to the scenario duration (so compressed cells
#: still see several publish/retrieve rounds per participant)
CONTENT_PUBLISH_FRACTION = 1 / 8
CONTENT_RETRIEVE_FRACTION = 1 / 16
CONTENT_TTL_FRACTION = 0.5
CONTENT_REPUBLISH_FRACTION = 0.25
#: the short-lived records of the expiry scenario
EXPIRY_TTL_FRACTION = 0.12

FLASH_RETRIEVER_SHARE = 0.6
FLASH_ZIPF_EXPONENT = 1.4


def _content_workload(
    duration: float,
    publisher_share: float = 0.06,
    retriever_share: float = 0.3,
    zipf_exponent: float = 1.05,
    ttl_fraction: float = CONTENT_TTL_FRACTION,
    republish_fraction: Optional[float] = CONTENT_REPUBLISH_FRACTION,
    retrieve_fraction: float = CONTENT_RETRIEVE_FRACTION,
) -> ContentRoutingConfig:
    """A duration-relative content workload shared by the content scenarios."""
    return ContentRoutingConfig(
        n_items=32,
        zipf_exponent=zipf_exponent,
        publisher_share=publisher_share,
        retriever_share=retriever_share,
        publish_interval=duration * CONTENT_PUBLISH_FRACTION,
        retrieve_interval=duration * retrieve_fraction,
        provider_ttl=duration * ttl_fraction,
        republish_interval=(
            None if republish_fraction is None else duration * republish_fraction
        ),
    )


def _provide_churn(n_peers: int, duration_days: float, seed: int) -> ScenarioConfig:
    duration = duration_days * DAY
    return ScenarioConfig(
        duration=duration,
        population=PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        seed=seed,
    )


def _retrieval_flash_crowd(n_peers: int, duration_days: float, seed: int) -> ScenarioConfig:
    duration = duration_days * DAY
    burst_start, burst_duration = _burst_window(duration)
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        class_shares=dict(FLASH_CROWD_SHARES),
        churn_model_factory=_flash_crowd_factory(burst_start, burst_duration),
        discovery_scale=FLASH_CROWD_DISCOVERY_SCALE,
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(
            duration,
            retriever_share=FLASH_RETRIEVER_SHARE,
            zipf_exponent=FLASH_ZIPF_EXPONENT,
            retrieve_fraction=1 / 24,
        ),
        seed=seed,
    )


def _provider_record_expiry(n_peers: int, duration_days: float, seed: int) -> ScenarioConfig:
    duration = duration_days * DAY
    return ScenarioConfig(
        duration=duration,
        population=PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(
            duration,
            ttl_fraction=EXPIRY_TTL_FRACTION,
            republish_fraction=None,
        ),
        seed=seed,
    )


def _register_content_scenarios() -> None:
    register(
        ScenarioSpec(
            name="provide-churn",
            description=(
                "Publishers keep provider records alive (republish at TTL/2 "
                "pace) against the paper-calibrated churning population"
            ),
            builder=_provide_churn,
            tags=("content", "churn"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "publisher_share": 0.06,
                "retriever_share": 0.3,
                "ttl": f"{CONTENT_TTL_FRACTION:g} x duration",
                "republish": f"{CONTENT_REPUBLISH_FRACTION:g} x duration",
                "zipf": 1.05,
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="retrieval-flash-crowd",
            description=(
                "A one-time-heavy crowd floods in mid-window and hammers the "
                "hottest items (steep Zipf head) with FIND_PROVIDERS + fetches"
            ),
            builder=_retrieval_flash_crowd,
            tags=("content", "burst"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "retriever_share": FLASH_RETRIEVER_SHARE,
                "zipf": FLASH_ZIPF_EXPONENT,
                "intensity": FLASH_CROWD_INTENSITY,
                "burst": "30 % into the window, 25 % long (≤ 2 h)",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="provider-record-expiry",
            description=(
                "Short-TTL provider records with republish disabled: "
                "retrieval success decays as records expire out"
            ),
            builder=_provider_record_expiry,
            tags=("content", "expiry"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "ttl": f"{EXPIRY_TTL_FRACTION:g} x duration",
                "republish": "off",
                "publisher_share": 0.06,
                "retriever_share": 0.3,
                "watermarks": "2000/4000 scaled",
            },
        )
    )


# -- data-plane (bandwidth) scenarios -----------------------------------------------

#: a mixed catalog: metadata-sized blocks up to video-chunk large objects
MIXED_BLOCK_CLASSES = (
    (16_000, 0.45),
    (262_144, 0.30),
    (4_000_000, 0.20),
    (33_554_432, 0.05),
)
#: a large-object distribution (the flash-crowd and hotspot regimes)
LARGE_BLOCK_CLASSES = (
    (4_000_000, 0.55),
    (16_000_000, 0.35),
    (67_108_864, 0.10),
)
#: bandwidth-starved-relays: every uplink cut to a quarter
STARVED_UPLINK_SCALE = 0.25
STARVED_RELAY_SHARE = 0.35
STARVED_NAT_SHARE = 0.20
#: provider-hotspot: a couple of publishers serve a steep-Zipf handful of items
HOTSPOT_PUBLISHER_SHARE = 0.02
HOTSPOT_RETRIEVER_SHARE = 0.5
HOTSPOT_ZIPF = 1.6
HOTSPOT_ITEMS = 8


def _scaled_blocks(classes: tuple, size_scale: float) -> tuple:
    """Multiply every block size in a ``(size, weight)`` mix by ``size_scale``."""
    if size_scale <= 0:
        raise ValueError(f"size_scale must be positive, got {size_scale}")
    return tuple(
        (max(1, int(round(size * size_scale))), weight) for size, weight in classes
    )


def flash_crowd_large_blocks_config(
    n_peers: int,
    duration_days: float,
    seed: int,
    size_scale: float = 1.0,
    uplink_scale: float = 1.0,
) -> ScenarioConfig:
    duration = duration_days * DAY
    burst_start, burst_duration = _burst_window(duration)
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        class_shares=dict(FLASH_CROWD_SHARES),
        churn_model_factory=_flash_crowd_factory(burst_start, burst_duration),
        discovery_scale=FLASH_CROWD_DISCOVERY_SCALE,
        netmodel=NetModelConfig(),
        bandwidth=BandwidthConfig(uplink_scale=uplink_scale),
    )
    content = replace(
        _content_workload(
            duration,
            retriever_share=FLASH_RETRIEVER_SHARE,
            zipf_exponent=FLASH_ZIPF_EXPONENT,
            retrieve_fraction=1 / 24,
        ),
        block_size_classes=_scaled_blocks(LARGE_BLOCK_CLASSES, size_scale),
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=content,
        seed=seed,
    )


def bandwidth_starved_relays_config(
    n_peers: int,
    duration_days: float,
    seed: int,
    uplink_scale: float = STARVED_UPLINK_SCALE,
    relay_share: float = STARVED_RELAY_SHARE,
) -> ScenarioConfig:
    duration = duration_days * DAY
    netmodel = NetModelConfig(
        reachability=ReachabilityConfig(
            nat_share=STARVED_NAT_SHARE,
            relay_share=relay_share,
            relay_penalty=RELAY_PENALTY,
        ),
    )
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        netmodel=netmodel,
        bandwidth=BandwidthConfig(uplink_scale=uplink_scale),
    )
    content = replace(
        _content_workload(duration, retriever_share=0.4),
        block_size_classes=MIXED_BLOCK_CLASSES,
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=content,
        seed=seed,
    )


def provider_hotspot_config(
    n_peers: int,
    duration_days: float,
    seed: int,
    uplink_scale: float = 1.0,
    size_scale: float = 1.0,
) -> ScenarioConfig:
    duration = duration_days * DAY
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        bandwidth=BandwidthConfig(uplink_scale=uplink_scale),
    )
    content = replace(
        _content_workload(
            duration,
            publisher_share=HOTSPOT_PUBLISHER_SHARE,
            retriever_share=HOTSPOT_RETRIEVER_SHARE,
            zipf_exponent=HOTSPOT_ZIPF,
            retrieve_fraction=1 / 24,
        ),
        n_items=HOTSPOT_ITEMS,
        block_size_classes=_scaled_blocks(LARGE_BLOCK_CLASSES, size_scale),
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=content,
        seed=seed,
    )


def mixed_size_catalog_config(
    n_peers: int,
    duration_days: float,
    seed: int,
    size_scale: float = 1.0,
    uplink_scale: float = 1.0,
) -> ScenarioConfig:
    duration = duration_days * DAY
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        bandwidth=BandwidthConfig(uplink_scale=uplink_scale),
    )
    content = replace(
        _content_workload(duration, retriever_share=0.4),
        block_size_classes=_scaled_blocks(MIXED_BLOCK_CLASSES, size_scale),
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=content,
        seed=seed,
    )


def _register_bandwidth_scenarios() -> None:
    register(
        ScenarioSpec(
            name="flash-crowd-large-blocks",
            description=(
                "A flash crowd hammers a large-object catalog: popular "
                "providers' uplinks queue up and transfers start timing out"
            ),
            builder=flash_crowd_large_blocks_config,
            tags=("bandwidth", "burst", "content"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "blocks": "4/16/64 MB mix",
                "retriever_share": FLASH_RETRIEVER_SHARE,
                "zipf": FLASH_ZIPF_EXPONENT,
                "intensity": FLASH_CROWD_INTENSITY,
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="bandwidth-starved-relays",
            description=(
                "A relayed plurality on quarter-rate uplinks: relay latency "
                "penalties stack on top of real serialization delay"
            ),
            builder=bandwidth_starved_relays_config,
            tags=("bandwidth", "relay", "content"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "uplink_scale": STARVED_UPLINK_SCALE,
                "relay_share": STARVED_RELAY_SHARE,
                "relay_penalty": RELAY_PENALTY,
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="provider-hotspot",
            description=(
                "Two-ish publishers serve a steep-Zipf handful of large "
                "items: the hot provider's uplink saturates and queues"
            ),
            builder=provider_hotspot_config,
            tags=("bandwidth", "hotspot", "content"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "publisher_share": HOTSPOT_PUBLISHER_SHARE,
                "retriever_share": HOTSPOT_RETRIEVER_SHARE,
                "zipf": HOTSPOT_ZIPF,
                "n_items": HOTSPOT_ITEMS,
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="mixed-size-catalog",
            description=(
                "A metadata-to-video block-size mix over the default access "
                "classes: transfer percentiles spread across four decades"
            ),
            builder=mixed_size_catalog_config,
            tags=("bandwidth", "content"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "blocks": "16 KB – 32 MB mix",
                "retriever_share": 0.4,
                "classes": "datacenter/fiber/cable/dsl/mobile",
                "watermarks": "2000/4000 scaled",
            },
        )
    )


# -- network-realism scenarios ------------------------------------------------------

#: nat-heavy-crawl: an unreachable majority the crawler cannot dial
NAT_HEAVY_NAT_SHARE = 0.55
NAT_HEAVY_RELAY_SHARE = 0.10
#: high-latency-retrieval: every RTT multiplied, walks bounded in time
HIGH_LATENCY_SCALE = 4.0
HIGH_LATENCY_NAT_SHARE = 0.15
HIGH_LATENCY_LOOKUP_TIMEOUT = 18.0
#: relay-assisted-content: a relayed plurality serving blocks at a penalty
RELAY_ASSISTED_RELAY_SHARE = 0.35
RELAY_ASSISTED_NAT_SHARE = 0.20
RELAY_PENALTY = 2.2
#: timeout-bound-lookups: a tight walk budget against a NATed population
TIMEOUT_BOUND_LOOKUP_BUDGET = 8.0
TIMEOUT_BOUND_NAT_SHARE = 0.45
TIMEOUT_BOUND_RTT_SCALE = 2.0


def nat_heavy_crawl_config(
    n_peers: int, duration_days: float, seed: int, nat_share: Optional[float] = None
) -> ScenarioConfig:
    duration = duration_days * DAY
    share = NAT_HEAVY_NAT_SHARE if nat_share is None else nat_share
    netmodel = NetModelConfig(
        reachability=ReachabilityConfig(
            nat_share=share, relay_share=NAT_HEAVY_RELAY_SHARE
        ),
    )
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed), netmodel=netmodel
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        run_crawler=True,
        crawl_interval=max(duration / 3.0, 600.0),
        seed=seed,
    )


def high_latency_retrieval_config(
    n_peers: int, duration_days: float, seed: int, rtt_scale: Optional[float] = None
) -> ScenarioConfig:
    duration = duration_days * DAY
    scale = HIGH_LATENCY_SCALE if rtt_scale is None else rtt_scale
    netmodel = NetModelConfig(
        regions=replace(RegionModelConfig(), scale=scale),
        reachability=ReachabilityConfig(
            nat_share=HIGH_LATENCY_NAT_SHARE, relay_share=0.10
        ),
        lookup_timeout=HIGH_LATENCY_LOOKUP_TIMEOUT,
    )
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed), netmodel=netmodel
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        seed=seed,
    )


def relay_assisted_content_config(
    n_peers: int, duration_days: float, seed: int, relay_share: Optional[float] = None
) -> ScenarioConfig:
    duration = duration_days * DAY
    share = RELAY_ASSISTED_RELAY_SHARE if relay_share is None else relay_share
    netmodel = NetModelConfig(
        reachability=ReachabilityConfig(
            nat_share=RELAY_ASSISTED_NAT_SHARE,
            relay_share=share,
            relay_penalty=RELAY_PENALTY,
        ),
    )
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed), netmodel=netmodel
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        seed=seed,
    )


def timeout_bound_lookups_config(
    n_peers: int, duration_days: float, seed: int, lookup_timeout: Optional[float] = None
) -> ScenarioConfig:
    duration = duration_days * DAY
    budget = TIMEOUT_BOUND_LOOKUP_BUDGET if lookup_timeout is None else lookup_timeout
    netmodel = NetModelConfig(
        regions=replace(RegionModelConfig(), scale=TIMEOUT_BOUND_RTT_SCALE),
        reachability=ReachabilityConfig(nat_share=TIMEOUT_BOUND_NAT_SHARE),
        lookup_timeout=budget,
    )
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed), netmodel=netmodel
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        seed=seed,
    )


def _register_netmodel_scenarios() -> None:
    register(
        ScenarioSpec(
            name="nat-heavy-crawl",
            description=(
                "A NAT-heavy population the active crawler cannot dial: the "
                "passive vantage point sees peers the crawler undercounts"
            ),
            builder=nat_heavy_crawl_config,
            tags=("netmodel", "nat", "crawler"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "nat_share": NAT_HEAVY_NAT_SHARE,
                "relay_share": NAT_HEAVY_RELAY_SHARE,
                "crawl_interval": "duration/3 (≥ 10 min)",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="high-latency-retrieval",
            description=(
                "Every inter-region RTT multiplied: retrieval latency "
                "percentiles stretch and time-bounded walks start expiring"
            ),
            builder=high_latency_retrieval_config,
            tags=("netmodel", "latency"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "rtt_scale": HIGH_LATENCY_SCALE,
                "nat_share": HIGH_LATENCY_NAT_SHARE,
                "lookup_timeout": f"{HIGH_LATENCY_LOOKUP_TIMEOUT:g} s",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="relay-assisted-content",
            description=(
                "A relayed plurality keeps content retrievable — at the "
                "relay's latency penalty on every fetch"
            ),
            builder=relay_assisted_content_config,
            tags=("netmodel", "relay"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "relay_share": RELAY_ASSISTED_RELAY_SHARE,
                "nat_share": RELAY_ASSISTED_NAT_SHARE,
                "relay_penalty": RELAY_PENALTY,
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="timeout-bound-lookups",
            description=(
                "A tight simulated-time walk budget against a NATed, slowed "
                "fabric: lookups give up instead of converging"
            ),
            builder=timeout_bound_lookups_config,
            tags=("netmodel", "timeout"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "lookup_timeout": f"{TIMEOUT_BOUND_LOOKUP_BUDGET:g} s",
                "nat_share": TIMEOUT_BOUND_NAT_SHARE,
                "rtt_scale": TIMEOUT_BOUND_RTT_SCALE,
                "watermarks": "2000/4000 scaled",
            },
        )
    )


# -- fault-injection scenarios ------------------------------------------------------

#: lossy-links: every RPC rolls against these on the wire
LOSSY_LINK_LOSS = 0.25
LOSSY_LINK_DUPLICATE = 0.02
#: partition-heal: window placement and minority size, fractions of the window
PARTITION_START_FRACTION = 0.35
PARTITION_DURATION_FRACTION = 0.25
PARTITION_SHARE = 0.4
PARTITION_RECOVERY_FRACTION = 0.02
#: crash-storm: renewal/restart means as fractions of the window
CRASH_MTBF_FRACTION = 0.25
CRASH_RESTART_FRACTION = 0.05
CRASH_SHARE = 0.8
#: slow-node-tail: the degraded share and its RTT multiplier range
SLOW_TAIL_SHARE = 0.18
SLOW_TAIL_MIN_FACTOR = 4.0
SLOW_TAIL_MAX_FACTOR = 15.0
SLOW_TAIL_LOOKUP_TIMEOUT = 15.0

#: the catalog's resilience policy: 3 attempts, 0.25 s base, x2 capped at 8 s
FAULT_RETRY = RetryPolicy()


def _faulted_population(
    n_peers: int, seed: int, faults: FaultConfig
) -> PopulationConfig:
    return replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed), faults=faults
    )


def lossy_links_config(
    n_peers: int,
    duration_days: float,
    seed: int,
    loss_rate: Optional[float] = None,
    retry: bool = True,
) -> ScenarioConfig:
    duration = duration_days * DAY
    loss = LOSSY_LINK_LOSS if loss_rate is None else loss_rate
    faults = FaultConfig(
        links=LinkFaultConfig(loss_rate=loss, duplicate_rate=LOSSY_LINK_DUPLICATE),
        retry=FAULT_RETRY if retry else None,
    )
    return ScenarioConfig(
        duration=duration,
        population=_faulted_population(n_peers, seed, faults),
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        seed=seed,
    )


def partition_heal_config(
    n_peers: int,
    duration_days: float,
    seed: int,
    partition_share: Optional[float] = None,
) -> ScenarioConfig:
    duration = duration_days * DAY
    share = PARTITION_SHARE if partition_share is None else partition_share
    faults = FaultConfig(
        partition=PartitionConfig(
            start=duration * PARTITION_START_FRACTION,
            duration=duration * PARTITION_DURATION_FRACTION,
            share=share,
            recovery_spread=max(duration * PARTITION_RECOVERY_FRACTION, 60.0),
        ),
        retry=FAULT_RETRY,
    )
    return ScenarioConfig(
        duration=duration,
        population=_faulted_population(n_peers, seed, faults),
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        seed=seed,
    )


def crash_storm_config(
    n_peers: int,
    duration_days: float,
    seed: int,
    crash_share: Optional[float] = None,
) -> ScenarioConfig:
    duration = duration_days * DAY
    share = CRASH_SHARE if crash_share is None else crash_share
    faults = FaultConfig(
        crash=CrashConfig(
            mtbf=duration * CRASH_MTBF_FRACTION,
            restart_mean=duration * CRASH_RESTART_FRACTION,
            share=share,
        ),
        retry=FAULT_RETRY,
        republish_on_recovery=True,
    )
    return ScenarioConfig(
        duration=duration,
        population=_faulted_population(n_peers, seed, faults),
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        seed=seed,
    )


def slow_node_tail_config(
    n_peers: int,
    duration_days: float,
    seed: int,
    slow_share: Optional[float] = None,
) -> ScenarioConfig:
    duration = duration_days * DAY
    share = SLOW_TAIL_SHARE if slow_share is None else slow_share
    faults = FaultConfig(
        slow=SlowNodeConfig(
            share=share,
            min_factor=SLOW_TAIL_MIN_FACTOR,
            max_factor=SLOW_TAIL_MAX_FACTOR,
        ),
    )
    # Slow nodes only bite when walks carry a time budget, so this scenario
    # pairs the fault with the latency model and a bounded lookup clock.
    netmodel = NetModelConfig(
        regions=RegionModelConfig(),
        lookup_timeout=SLOW_TAIL_LOOKUP_TIMEOUT,
    )
    population = replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed),
        netmodel=netmodel,
        faults=faults,
    )
    return ScenarioConfig(
        duration=duration,
        population=population,
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        seed=seed,
    )


def _register_fault_scenarios() -> None:
    register(
        ScenarioSpec(
            name="lossy-links",
            description=(
                "Every RPC rolls against per-link loss (and occasional "
                "duplication); capped-backoff retries claw success back"
            ),
            builder=lossy_links_config,
            tags=("faults", "loss"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "loss_rate": LOSSY_LINK_LOSS,
                "duplicate_rate": LOSSY_LINK_DUPLICATE,
                "retry": "3 attempts, 0.25 s base x2, cap 8 s",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="partition-heal",
            description=(
                "A regional split severs a 40 % minority mid-window, then "
                "heals with a bounded reconnect spread (time-to-recover)"
            ),
            builder=partition_heal_config,
            tags=("faults", "partition"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "share": PARTITION_SHARE,
                "window": (
                    f"{PARTITION_START_FRACTION:g}–"
                    f"{PARTITION_START_FRACTION + PARTITION_DURATION_FRACTION:g} "
                    "x duration"
                ),
                "recovery_spread": f"{PARTITION_RECOVERY_FRACTION:g} x duration (≥ 60 s)",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="crash-storm",
            description=(
                "Abrupt crash/restart cycles leave dirty provider records "
                "behind; recovered providers republish their items"
            ),
            builder=crash_storm_config,
            tags=("faults", "crash"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "share": CRASH_SHARE,
                "mtbf": f"{CRASH_MTBF_FRACTION:g} x duration",
                "restart": f"{CRASH_RESTART_FRACTION:g} x duration",
                "republish_on_recovery": True,
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="slow-node-tail",
            description=(
                "A slow tail answers with 4–15x RTT spikes against "
                "time-bounded walks: budgets drain without any packet loss"
            ),
            builder=slow_node_tail_config,
            tags=("faults", "slow"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "share": SLOW_TAIL_SHARE,
                "factor": f"{SLOW_TAIL_MIN_FACTOR:g}–{SLOW_TAIL_MAX_FACTOR:g}x",
                "lookup_timeout": f"{SLOW_TAIL_LOOKUP_TIMEOUT:g} s",
                "watermarks": "2000/4000 scaled",
            },
        )
    )


# -- adversarial scenarios ----------------------------------------------------------

#: sybils as a share of the honest population (identities are cheap)
SYBIL_SHARE = 0.30
SYBIL_CLOSENESS_BITS = 12
#: sybil join ramp, as fractions of the window
SYBIL_ARRIVAL_SPAN = (0.05, 0.5)

ECLIPSE_SHARE = 0.05
ECLIPSE_MIN = 16
ECLIPSE_VICTIM_ITEMS = 2
ECLIPSE_CLOSENESS_BITS = 24

POISON_SHARE = 0.08
POISON_DROP_SHARE = 0.5

SPOOF_SHARE = 0.25
#: spoofer session/downtime as fractions of the window (≥ the floors below)
SPOOF_SESSION_FRACTION = 1 / 40
SPOOF_DOWNTIME_FRACTION = 1 / 60


def _adversarial_population(
    n_peers: int, seed: int, adversary: AdversaryConfig
) -> PopulationConfig:
    return replace(
        PopulationConfig.scaled_to_paper(n_peers, seed=seed), adversary=adversary
    )


def sybil_netsize_config(
    n_peers: int, duration_days: float, seed: int, sybil_count: Optional[int] = None
) -> ScenarioConfig:
    duration = duration_days * DAY
    count = sybil_count if sybil_count is not None else max(8, int(round(n_peers * SYBIL_SHARE)))
    low, high = SYBIL_ARRIVAL_SPAN
    adversary = AdversaryConfig(
        sybil=SybilFloodConfig(
            count=count,
            closeness_bits=SYBIL_CLOSENESS_BITS,
            arrival_window=(duration * low, duration * high),
        )
    )
    return ScenarioConfig(
        duration=duration,
        population=_adversarial_population(n_peers, seed, adversary),
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        seed=seed,
    )


def eclipse_provider_config(
    n_peers: int, duration_days: float, seed: int, eclipse_count: Optional[int] = None
) -> ScenarioConfig:
    duration = duration_days * DAY
    count = (
        eclipse_count
        if eclipse_count is not None
        else max(ECLIPSE_MIN, int(round(n_peers * ECLIPSE_SHARE)))
    )
    adversary = AdversaryConfig(
        eclipse=EclipseConfig(
            count=count,
            victim_items=ECLIPSE_VICTIM_ITEMS,
            closeness_bits=ECLIPSE_CLOSENESS_BITS,
            shadow_publish_interval=duration / 6.0,
        )
    )
    return ScenarioConfig(
        duration=duration,
        population=_adversarial_population(n_peers, seed, adversary),
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        seed=seed,
    )


def poisoned_routing_config(
    n_peers: int,
    duration_days: float,
    seed: int,
    poison_count: Optional[int] = None,
    drop_share: float = POISON_DROP_SHARE,
) -> ScenarioConfig:
    duration = duration_days * DAY
    count = (
        poison_count
        if poison_count is not None
        else max(12, int(round(n_peers * POISON_SHARE)))
    )
    adversary = AdversaryConfig(
        poison=RoutingPoisonConfig(count=count, drop_share=drop_share)
    )
    return ScenarioConfig(
        duration=duration,
        population=_adversarial_population(n_peers, seed, adversary),
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        content=_content_workload(duration),
        run_crawler=True,
        crawl_interval=max(duration / 3.0, 600.0),
        seed=seed,
    )


def spoofed_churn_config(
    n_peers: int, duration_days: float, seed: int, spoof_count: Optional[int] = None
) -> ScenarioConfig:
    duration = duration_days * DAY
    count = (
        spoof_count
        if spoof_count is not None
        else max(10, int(round(n_peers * SPOOF_SHARE)))
    )
    adversary = AdversaryConfig(
        churn_spoof=ChurnSpoofConfig(
            count=count,
            session_mean=max(duration * SPOOF_SESSION_FRACTION, 30.0),
            downtime_mean=max(duration * SPOOF_DOWNTIME_FRACTION, 20.0),
        )
    )
    return ScenarioConfig(
        duration=duration,
        population=_adversarial_population(n_peers, seed, adversary),
        go_ipfs=_server_vantage(2_000, 4_000, n_peers),
        seed=seed,
    )


def _register_adversary_scenarios() -> None:
    register(
        ScenarioSpec(
            name="sybil-netsize-inflation",
            description=(
                "A Sybil flood mined into the vantage point's neighbourhood "
                "inflates density-based network-size estimates"
            ),
            builder=sybil_netsize_config,
            tags=("adversary", "sybil"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "sybil_share": SYBIL_SHARE,
                "closeness_bits": SYBIL_CLOSENESS_BITS,
                "arrival": "5–50 % of the window",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="eclipse-provider",
            description=(
                "An eclipse ring mined around the hottest content keys "
                "captures provider records and starves retrievals"
            ),
            builder=eclipse_provider_config,
            tags=("adversary", "eclipse"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "eclipse_share": ECLIPSE_SHARE,
                "victim_items": ECLIPSE_VICTIM_ITEMS,
                "closeness_bits": ECLIPSE_CLOSENESS_BITS,
                "shadow_publish": "every duration/6",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="poisoned-routing-under-churn",
            description=(
                "Malicious DHT servers drop queries or answer with bogus "
                "closer-peers while the crawler and a content workload run"
            ),
            builder=poisoned_routing_config,
            tags=("adversary", "poison", "crawler"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "poison_share": POISON_SHARE,
                "drop_share": POISON_DROP_SHARE,
                "crawl_interval": "duration/3 (≥ 10 min)",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="spoofed-churn-classification",
            description=(
                "Aggressive PID rotation over short sessions floods the "
                "Table IV classification with fake one-time/light peers"
            ),
            builder=spoofed_churn_config,
            tags=("adversary", "spoof"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "spoof_share": SPOOF_SHARE,
                "session": f"{SPOOF_SESSION_FRACTION:g} x duration",
                "downtime": f"{SPOOF_DOWNTIME_FRACTION:g} x duration",
                "watermarks": "2000/4000 scaled",
            },
        )
    )


def _register_stress_scenarios() -> None:
    register(
        ScenarioSpec(
            name="flash-crowd",
            description=(
                "A one-time-heavy population floods in during a burst window "
                "(arrivals concentrated, reconnects accelerated)"
            ),
            builder=_flash_crowd,
            tags=("stress", "burst"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "one_time_share": FLASH_CROWD_SHARES[PeerClass.ONE_TIME],
                "intensity": FLASH_CROWD_INTENSITY,
                "arrival_share": FLASH_CROWD_ARRIVAL_SHARE,
                "discovery_scale": FLASH_CROWD_DISCOVERY_SCALE,
                "burst": "30 % into the window, 25 % long (≤ 2 h)",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="diurnal-week",
            description=(
                "Sine-modulated day/night activity over a multi-day window "
                "(peak 18:00, trough 06:00)"
            ),
            builder=_diurnal_week,
            tags=("stress", "diurnal"),
            default_peers=600,
            default_duration_days=2.0,
            knobs={
                "amplitude": DIURNAL_AMPLITUDE,
                "peak_time": "18 h",
                "watermarks": "18000/20000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="mass-outage",
            description=(
                "A correlated region failure drops ~45 % of peers mid-window, "
                "followed by a reconnect stampede"
            ),
            builder=_mass_outage,
            tags=("stress", "outage"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "region_share": MASS_OUTAGE_REGION_SHARE,
                "outage": "40 % into the window, 15 % long",
                "watermarks": "2000/4000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="client-heavy",
            description=(
                "A DHT-Client-dominated, heavily NATed population against a "
                "default-watermark (600/900) server vantage point"
            ),
            builder=_client_heavy,
            tags=("stress", "composition"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "server_share_factor": CLIENT_HEAVY_SERVER_FACTOR,
                "nat_share": CLIENT_HEAVY_NAT_SHARE,
                "watermarks": "600/900 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="hydra-scaling",
            description=(
                f"A {HYDRA_SCALING_HEADS}-head hydra as the only vantage point "
                "(head-count scaling of the union dataset)"
            ),
            builder=_hydra_scaling,
            tags=("stress", "hydra"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "hydra_heads": HYDRA_SCALING_HEADS,
                "watermarks": "15000/20000 scaled",
            },
        )
    )
    register(
        ScenarioSpec(
            name="crawler-vs-passive-under-burst",
            description=(
                "The active crawler baseline races the passive vantage point "
                "through a flash crowd (crawls every third of the window)"
            ),
            builder=_crawler_vs_passive_under_burst,
            tags=("stress", "burst", "crawler"),
            default_peers=600,
            default_duration_days=0.5,
            knobs={
                "one_time_share": FLASH_CROWD_SHARES[PeerClass.ONE_TIME],
                "intensity": FLASH_CROWD_INTENSITY,
                "discovery_scale": FLASH_CROWD_DISCOVERY_SCALE,
                "crawl_interval": "duration/3 (≥ 10 min)",
                "watermarks": "18000/20000 scaled",
            },
        )
    )


_register_paper_periods()
_register_stress_scenarios()
_register_content_scenarios()
_register_adversary_scenarios()
_register_netmodel_scenarios()
_register_fault_scenarios()
_register_bandwidth_scenarios()
