"""The scenario registry: named, sweepable workload definitions.

A :class:`ScenarioSpec` is a declarative entry — a name, a description, the
knobs it exposes, and a builder that maps ``(n_peers, duration_days, seed)``
onto a :class:`~repro.simulation.scenario.ScenarioConfig`.  Everything that
runs a workload (the sweep CLI, benchmarks, tests, examples) resolves
scenarios by name through this registry, so a new workload is one
``register()`` call instead of a new script.

The catalog module registers the six paper measurement periods plus the
stress scenarios at import time; :func:`run_scenario_by_name` is the
module-level (and therefore picklable) unit of work the process-parallel
sweep runner fans out.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.simulation.scenario import ScenarioConfig, ScenarioResult, run_scenario as _run

#: builds the scenario config for one sweep cell: (n_peers, duration_days, seed)
ScenarioBuilder = Callable[[int, float, int], ScenarioConfig]

_REGISTRY: Dict[str, "ScenarioSpec"] = {}


class UnknownOverrideError(ValueError):
    """An override key the scenario's builder does not accept."""


def override_parameters(builder: ScenarioBuilder) -> Dict[str, inspect.Parameter]:
    """The override keys a builder exposes: every keyword parameter after the
    ``(n_peers, duration_days, seed)`` triple.

    Parameters named with a leading underscore are builder-internal plumbing
    (e.g. the default-bound spec of a registered lambda) and are not
    overridable.
    """
    params = list(inspect.signature(builder).parameters.values())
    keyword_kinds = (
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
        inspect.Parameter.KEYWORD_ONLY,
    )
    return {
        param.name: param
        for param in params[3:]
        if param.kind in keyword_kinds and not param.name.startswith("_")
    }


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, sweepable scenario."""

    name: str
    description: str
    builder: ScenarioBuilder
    #: coarse grouping used by listings ("paper" vs "stress")
    tags: Tuple[str, ...] = ()
    default_peers: int = 500
    default_duration_days: float = 0.25
    #: human-readable knob values, rendered by ``--list`` and the README table
    knobs: Mapping[str, object] = field(default_factory=dict)

    def override_keys(self) -> List[str]:
        """The override keys this scenario accepts, sorted."""
        return sorted(override_parameters(self.builder))

    def validate_overrides(self, overrides: Optional[Mapping[str, object]]) -> Dict[str, object]:
        """Check ``overrides`` against the builder's keyword parameters.

        Returns a plain dict safe to splat into the builder; raises
        :class:`UnknownOverrideError` naming the known keys otherwise — the
        one validation path shared by :meth:`build`, the sweep CLI, and the
        benchmarks.
        """
        if not overrides:
            return {}
        known = self.override_keys()
        unknown = sorted(set(overrides) - set(known))
        if unknown:
            known_text = ", ".join(known) if known else "(none)"
            raise UnknownOverrideError(
                f"scenario {self.name!r} does not accept override(s) "
                f"{', '.join(unknown)}; known keys: {known_text}"
            )
        return dict(overrides)

    def build(
        self,
        n_peers: Optional[int] = None,
        duration_days: Optional[float] = None,
        seed: int = 7,
        overrides: Optional[Mapping[str, object]] = None,
    ) -> ScenarioConfig:
        """Resolve defaults and build the runnable scenario config."""
        peers = n_peers if n_peers is not None else self.default_peers
        days = duration_days if duration_days is not None else self.default_duration_days
        kwargs = self.validate_overrides(overrides)
        return self.builder(peers, days, seed, **kwargs)


def normalize_name(name: str) -> str:
    return name.strip().lower()


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the registry; names are case-insensitive and unique."""
    key = normalize_name(spec.name)
    if key != spec.name:
        raise ValueError(f"scenario names must be lowercase, got {spec.name!r}")
    if key in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[key] = spec
    return spec


def scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name (case-insensitive)."""
    key = normalize_name(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def scenario_names(tag: Optional[str] = None) -> List[str]:
    """All registered names in registration order, optionally filtered by tag."""
    return [
        spec.name
        for spec in _REGISTRY.values()
        if tag is None or tag in spec.tags
    ]


def scenarios(tag: Optional[str] = None) -> List[ScenarioSpec]:
    return [spec for spec in _REGISTRY.values() if tag is None or tag in spec.tags]


def build_scenario_config(
    name: str,
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: int = 7,
    overrides: Optional[Mapping[str, object]] = None,
) -> ScenarioConfig:
    """Resolve ``name`` and build its config (defaults from the spec)."""
    return scenario(name).build(
        n_peers=n_peers, duration_days=duration_days, seed=seed, overrides=overrides
    )


def run_scenario_by_name(
    name: str,
    n_peers: Optional[int] = None,
    duration_days: Optional[float] = None,
    seed: int = 7,
    overrides: Optional[Mapping[str, object]] = None,
) -> ScenarioResult:
    """Build and run one registered scenario.

    Module-level so the process-parallel sweep runner can ship
    ``(name, peers, days, seed, overrides)`` tuples to workers instead of
    pickling configs with closures in them.
    """
    return _run(build_scenario_config(name, n_peers, duration_days, seed, overrides))
