"""Named, sweepable scenario definitions.

``registry`` provides the mechanism (register / resolve / run by name),
``catalog`` the built-in entries: the six paper measurement periods plus the
stress scenarios (flash-crowd, diurnal-week, mass-outage, client-heavy,
hydra-scaling, crawler-vs-passive-under-burst).  ``python -m repro.sweep``
runs cartesian sweeps over this catalog.
"""

from repro.scenarios.registry import (
    ScenarioBuilder,
    ScenarioSpec,
    build_scenario_config,
    register,
    run_scenario_by_name,
    scenario,
    scenario_names,
    scenarios,
)
from repro.scenarios import catalog  # noqa: F401  (registers the built-in entries)

__all__ = [
    "ScenarioBuilder",
    "ScenarioSpec",
    "build_scenario_config",
    "catalog",
    "register",
    "run_scenario_by_name",
    "scenario",
    "scenario_names",
    "scenarios",
]
