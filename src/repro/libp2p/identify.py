"""The identify protocol's data record.

When two libp2p peers connect they exchange an *identify* message containing
the agent-version string, the list of supported protocols, and the addresses
the peer believes it is reachable at.  The paper's measurement nodes record
exactly this meta data per PID and track changes to it over time (Section IV.B,
Fig. 3, Fig. 4, Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.libp2p.multiaddr import Multiaddr
from repro.libp2p.protocols import supports_bitswap, supports_dht_server


@dataclass(frozen=True)
class IdentifyRecord:
    """A snapshot of the meta data a peer announces via identify."""

    agent_version: Optional[str]
    protocols: FrozenSet[str]
    listen_addrs: Tuple[Multiaddr, ...] = ()

    @classmethod
    def make(
        cls,
        agent_version: Optional[str],
        protocols: Iterable[str],
        listen_addrs: Iterable[Multiaddr] = (),
    ) -> "IdentifyRecord":
        return cls(
            agent_version=agent_version,
            protocols=frozenset(protocols),
            listen_addrs=tuple(listen_addrs),
        )

    def is_dht_server(self) -> bool:
        """A peer announcing /ipfs/kad/1.0.0 acts as a DHT-Server."""
        return supports_dht_server(self.protocols)

    def has_bitswap(self) -> bool:
        return supports_bitswap(self.protocols)

    def with_agent(self, agent_version: Optional[str]) -> "IdentifyRecord":
        return replace(self, agent_version=agent_version)

    def with_protocols(self, protocols: Iterable[str]) -> "IdentifyRecord":
        return replace(self, protocols=frozenset(protocols))

    def add_protocol(self, protocol: str) -> "IdentifyRecord":
        return replace(self, protocols=self.protocols | {protocol})

    def remove_protocol(self, protocol: str) -> "IdentifyRecord":
        return replace(self, protocols=self.protocols - {protocol})

    def protocol_diff(self, other: "IdentifyRecord") -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """Return (added, removed) protocols from ``self`` to ``other``."""
        added = other.protocols - self.protocols
        removed = self.protocols - other.protocols
        return frozenset(added), frozenset(removed)

    def as_dict(self) -> dict:
        return {
            "agent_version": self.agent_version,
            "protocols": sorted(self.protocols),
            "listen_addrs": [str(a) for a in self.listen_addrs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IdentifyRecord":
        return cls.make(
            agent_version=data.get("agent_version"),
            protocols=data.get("protocols", ()),
            listen_addrs=tuple(
                Multiaddr.parse(a) for a in data.get("listen_addrs", ())
            ),
        )
