"""Simulated libp2p key pairs.

Real go-ipfs nodes generate a 2048 bit RSA (or ed25519) key; the PeerId is a
multihash of the serialized public key.  The measurement study never uses the
keys cryptographically — only the resulting identifier matters — so the
simulation generates random "public keys" from a seeded RNG and hashes them the
same way libp2p does.  This keeps identifier derivation deterministic per seed
while preserving the property that a fresh key yields a fresh PeerId.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

RSA_2048 = "rsa-2048"
ED25519 = "ed25519"

_KEY_SIZES = {RSA_2048: 256, ED25519: 32}

# One getrandbits(8) call per key byte, exactly like the original generator
# expression — bytes(map(...)) over a pre-built width tuple consumes the
# identical RNG stream while skipping the per-byte generator frame, and key
# generation is the single hottest leaf of large-population setup.
_BYTE_WIDTHS = {size: (8,) * size for size in _KEY_SIZES.values()}


@dataclass(frozen=True)
class KeyPair:
    """A simulated key pair.

    Only the public part is ever used (to derive the PeerId); the private part
    is kept so a node can be restarted with a persisted identity, mirroring the
    go-ipfs repository behaviour the paper describes (the authors deliberately
    did *not* persist keys between runs).
    """

    key_type: str
    public_key: bytes
    private_key: bytes

    def public_digest(self) -> bytes:
        """Return the SHA-256 digest of the public key (PeerId preimage)."""
        return hashlib.sha256(self.public_key).digest()

    def short_id(self) -> str:
        return self.public_digest()[:6].hex()


def generate_keypair(
    rng: Optional[random.Random] = None, key_type: str = RSA_2048
) -> KeyPair:
    """Generate a fresh simulated key pair.

    ``rng`` makes generation deterministic for a seeded simulation; omitting it
    falls back to the module-level RNG which is fine for examples.
    """
    if key_type not in _KEY_SIZES:
        raise ValueError(f"unsupported key type: {key_type!r}")
    rng = rng or random
    widths = _BYTE_WIDTHS[_KEY_SIZES[key_type]]
    getrandbits = rng.getrandbits
    public = bytes(map(getrandbits, widths))
    private = bytes(map(getrandbits, widths))
    return KeyPair(key_type=key_type, public_key=public, private_key=private)
