"""The libp2p basic connection manager.

go-libp2p's ``BasicConnMgr`` watches the number of open connections.  Once it
exceeds ``HighWater`` it trims connections down to ``LowWater``, closing the
lowest-scored, non-protected connections that are past a grace period.  go-ipfs
defaults to ``LowWater=600`` / ``HighWater=900`` / ``GracePeriod=20 s``.

The paper's central churn finding is that this mechanism — not node churn — is
responsible for the very short connection durations observed at DHT-Servers:
connections are mostly closed because either side trims them.  The paper's
experiments vary exactly these two thresholds per measurement period
(Table I) and observe durations grow when trimming relaxes (Table II, Fig. 5).

This implementation mirrors the relevant behaviour: tags/scores, protection,
grace period, and the trim-to-LowWater policy (oldest connections of the
lowest-scored peers are preferred to be kept; untagged young peers go first).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.libp2p.connection import Connection
from repro.libp2p.peer_id import PeerId

#: go-ipfs default connection-manager thresholds (v0.11).
DEFAULT_LOW_WATER = 600
DEFAULT_HIGH_WATER = 900
DEFAULT_GRACE_PERIOD = 20.0


@dataclass(frozen=True)
class ConnManagerConfig:
    """Connection manager thresholds (the paper's Table I knobs)."""

    low_water: int = DEFAULT_LOW_WATER
    high_water: int = DEFAULT_HIGH_WATER
    grace_period: float = DEFAULT_GRACE_PERIOD
    #: minimum simulated time between trim runs (go-libp2p uses 1 min ticks plus
    #: immediate trims on threshold crossing; we model the immediate variant).
    silence_period: float = 10.0

    def __post_init__(self) -> None:
        if self.low_water < 0 or self.high_water < 0:
            raise ValueError("watermarks must be non-negative")
        if self.low_water > self.high_water:
            raise ValueError("LowWater must not exceed HighWater")
        if self.grace_period < 0:
            raise ValueError("grace_period must be non-negative")

    @classmethod
    def defaults(cls) -> "ConnManagerConfig":
        return cls()


@dataclass
class TagInfo:
    """Per-peer tag bookkeeping (mirrors go-libp2p's ``TagInfo``)."""

    tags: Dict[str, int] = field(default_factory=dict)
    protected: Set[str] = field(default_factory=set)
    first_seen: float = 0.0

    @property
    def value(self) -> int:
        return sum(self.tags.values())

    @property
    def is_protected(self) -> bool:
        return bool(self.protected)


class ConnectionManager:
    """Tracks open connections of a node and trims them between watermarks."""

    def __init__(self, config: Optional[ConnManagerConfig] = None) -> None:
        self.config = config or ConnManagerConfig.defaults()
        self._connections: Dict[int, Connection] = {}
        self._peer_conns: Dict[PeerId, Set[int]] = {}
        self._tags: Dict[PeerId, TagInfo] = {}
        self._last_trim: float = float("-inf")
        self.trim_count: int = 0
        self.trimmed_connections: int = 0

    # -- connection bookkeeping -------------------------------------------------

    def add_connection(self, conn: Connection, now: float) -> None:
        """Register a newly opened connection."""
        if conn.connection_id in self._connections:
            raise ValueError(f"connection {conn.connection_id} already tracked")
        self._connections[conn.connection_id] = conn
        self._peer_conns.setdefault(conn.remote_peer, set()).add(conn.connection_id)
        info = self._tags.setdefault(conn.remote_peer, TagInfo(first_seen=now))
        if not info.first_seen:
            info.first_seen = now

    def remove_connection(self, conn: Connection) -> None:
        """Forget a connection that was closed externally."""
        self._connections.pop(conn.connection_id, None)
        peers = self._peer_conns.get(conn.remote_peer)
        if peers is not None:
            peers.discard(conn.connection_id)
            if not peers:
                del self._peer_conns[conn.remote_peer]

    def open_connections(self) -> List[Connection]:
        return list(self._connections.values())

    def connection_count(self) -> int:
        return len(self._connections)

    def connected_peers(self) -> List[PeerId]:
        return list(self._peer_conns.keys())

    def is_connected(self, peer: PeerId) -> bool:
        return peer in self._peer_conns

    def connected_peer_count(self) -> int:
        """Number of distinct peers with at least one open connection (O(1))."""
        return len(self._peer_conns)

    def connections_to(self, peer: PeerId) -> List[Connection]:
        """Open connections to ``peer``, oldest first (ascending connection id)."""
        ids = self._peer_conns.get(peer)
        if not ids:
            return []
        conns = self._connections
        return [conns[cid] for cid in sorted(ids)]

    # -- tagging / protection ---------------------------------------------------

    def tag_peer(self, peer: PeerId, tag: str, value: int) -> None:
        """Attach a weighted tag (e.g. the DHT tags its routing-table peers)."""
        self._tags.setdefault(peer, TagInfo()).tags[tag] = value

    def untag_peer(self, peer: PeerId, tag: str) -> None:
        info = self._tags.get(peer)
        if info is not None:
            info.tags.pop(tag, None)

    def protect_peer(self, peer: PeerId, tag: str) -> None:
        """Protected peers are never trimmed (used for bootstrap peers)."""
        self._tags.setdefault(peer, TagInfo()).protected.add(tag)

    def unprotect_peer(self, peer: PeerId, tag: str) -> None:
        info = self._tags.get(peer)
        if info is not None:
            info.protected.discard(tag)

    def tag_info(self, peer: PeerId) -> TagInfo:
        return self._tags.get(peer, TagInfo())

    def peer_score(self, peer: PeerId) -> int:
        return self.tag_info(peer).value

    # -- trimming ---------------------------------------------------------------

    def needs_trim(self) -> bool:
        return self.connection_count() > self.config.high_water

    def select_victims(self, now: float) -> List[Connection]:
        """Return the connections a trim run would close, lowest priority first.

        Mirrors go-libp2p: connections of protected peers and connections still
        inside the grace period survive; the remainder is sorted by peer tag
        value (ascending) and, within equal value, by connection age (youngest
        closed first — go-libp2p keeps long-standing connections).
        """
        excess = self.connection_count() - self.config.low_water
        if excess <= 0:
            return []
        candidates: List[Tuple[int, float, Connection]] = []
        for conn in self._connections.values():
            info = self.tag_info(conn.remote_peer)
            if info.is_protected:
                continue
            if now - conn.opened_at < self.config.grace_period:
                continue
            candidates.append((info.value, conn.opened_at, conn))
        # Lowest score first; among equals, youngest first (largest opened_at).
        candidates.sort(key=lambda item: (item[0], -item[1]))
        return [conn for _, _, conn in candidates[:excess]]

    def trim(self, now: float, force: bool = False) -> List[Connection]:
        """Run a trim cycle; returns the victims (caller actually closes them).

        ``force`` bypasses the HighWater check and the silence period, which is
        how go-libp2p's manual ``TrimOpenConns`` behaves.
        """
        if not force:
            if not self.needs_trim():
                return []
            if now - self._last_trim < self.config.silence_period:
                return []
        victims = self.select_victims(now)
        self._last_trim = now
        if victims:
            self.trim_count += 1
            self.trimmed_connections += len(victims)
        for conn in victims:
            self.remove_connection(conn)
        return victims
