"""Peer identifiers (PIDs).

libp2p identifies peers by the multihash of their public key, rendered in
base58btc.  RSA-keyed go-ipfs nodes therefore show up as ``Qm...`` strings; the
paper consistently distinguishes peers by this PID and later argues that one
participant may own several PIDs (rotation, multiple profiles, hydra heads).

This module implements the multihash + base58btc encoding faithfully so that
IDs look and sort like real IPFS peer IDs, and exposes the raw digest for the
Kademlia XOR metric (Kademlia keyspace distance is computed over the SHA-256 of
the PID bytes in go-libp2p-kad-dht; we use the key digest directly, which
preserves the uniform-keyspace property the DHT relies on).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from functools import total_ordering
from typing import Optional

from repro.libp2p.crypto import KeyPair, generate_keypair

_B58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_SHA256_MULTIHASH_PREFIX = bytes([0x12, 0x20])


def base58btc_encode(data: bytes) -> str:
    """Encode ``data`` as base58btc (the encoding used for Qm... peer IDs)."""
    num = int.from_bytes(data, "big")
    digits = []
    while num > 0:
        num, rem = divmod(num, 58)
        digits.append(_B58_ALPHABET[rem])
    # Preserve leading zero bytes as '1' characters.
    pad = 0
    for byte in data:
        if byte == 0:
            pad += 1
        else:
            break
    return "1" * pad + "".join(reversed(digits))


def base58btc_decode(text: str) -> bytes:
    """Decode a base58btc string back into bytes."""
    num = 0
    for char in text:
        idx = _B58_ALPHABET.find(char)
        if idx < 0:
            raise ValueError(f"invalid base58 character: {char!r}")
        num = num * 58 + idx
    raw = num.to_bytes((num.bit_length() + 7) // 8, "big") if num else b""
    pad = 0
    for char in text:
        if char == "1":
            pad += 1
        else:
            break
    return b"\x00" * pad + raw


@total_ordering
@dataclass(frozen=True, eq=False)
class PeerId:
    """A libp2p peer identifier backed by a SHA-256 multihash digest.

    Distance checks, swarm bookkeeping, and dataset finalisation all hammer
    ``kad_key()`` / ``hash()`` / ``str()``; the derived values are therefore
    cached at construction (the digest is immutable, so they never change).
    """

    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise ValueError("PeerId digest must be 32 bytes (sha2-256)")
        object.__setattr__(self, "_kad_key", int.from_bytes(self.digest, "big"))
        object.__setattr__(self, "_hash", hash(self.digest))
        object.__setattr__(self, "_b58", None)

    @classmethod
    def from_keypair(cls, keypair: KeyPair) -> "PeerId":
        return cls(digest=keypair.public_digest())

    @classmethod
    def from_public_key(cls, public_key: bytes) -> "PeerId":
        return cls(digest=hashlib.sha256(public_key).digest())

    @classmethod
    def from_base58(cls, text: str) -> "PeerId":
        raw = base58btc_decode(text)
        if raw[:2] != _SHA256_MULTIHASH_PREFIX or len(raw) != 34:
            raise ValueError("not a sha2-256 multihash peer ID")
        return cls(digest=raw[2:])

    @classmethod
    def random(cls, rng: Optional[random.Random] = None) -> "PeerId":
        """Generate a fresh identity (fresh key pair) and return its PeerId."""
        return cls.from_keypair(generate_keypair(rng))

    def to_base58(self) -> str:
        b58 = self._b58
        if b58 is None:
            b58 = base58btc_encode(_SHA256_MULTIHASH_PREFIX + self.digest)
            object.__setattr__(self, "_b58", b58)
        return b58

    def kad_key(self) -> int:
        """Return the 256-bit integer used for Kademlia XOR distance."""
        return self._kad_key

    def short(self) -> str:
        """Short human-readable form used in logs and examples."""
        b58 = self.to_base58()
        return f"{b58[:6]}…{b58[-4:]}"

    def __str__(self) -> str:
        return self.to_base58()

    def __repr__(self) -> str:
        return f"PeerId({self.short()})"

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, PeerId):
            return NotImplemented
        return self.digest < other.digest

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PeerId):
            return self.digest == other.digest
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash
