"""Agent-version strings.

libp2p's identify protocol carries a free-form agent-version string such as
``go-ipfs/0.11.0/67220edaa`` or ``hydra-booster/0.7.4``.  The paper analyses
these strings in three ways (Section IV.B):

* occurrence counts per agent (Fig. 3), with go-ipfs grouped by release number,
* classification of version *changes* into upgrade / downgrade / change, and
* classification of the commit part into *main* vs *dirty* releases
  (a "dirty" version contains local modifications on top of a release).

This module provides the parsing and comparison logic for go-ipfs style agent
strings, shared by the synthetic population generator and the analysis code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Optional, Tuple

GO_IPFS_PREFIX = "go-ipfs"
HYDRA_PREFIX = "hydra-booster"

_VERSION_RE = re.compile(r"^(\d+)\.(\d+)\.(\d+)(-dev|-rc\d+)?$")


@total_ordering
@dataclass(frozen=True)
class GoIpfsVersion:
    """A parsed go-ipfs agent string."""

    major: int
    minor: int
    patch: int
    suffix: str = ""          # "-dev", "-rc1", or ""
    commit: str = ""          # commit hash part, may be empty
    dirty: bool = False       # commit part carries a "-dirty" marker

    @property
    def release(self) -> Tuple[int, int, int]:
        return (self.major, self.minor, self.patch)

    @property
    def release_string(self) -> str:
        return f"{self.major}.{self.minor}.{self.patch}{self.suffix}"

    def agent_string(self) -> str:
        parts = [GO_IPFS_PREFIX, self.release_string]
        if self.commit or self.dirty:
            commit = self.commit + ("-dirty" if self.dirty else "")
            parts.append(commit)
        return "/".join(parts)

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, GoIpfsVersion):
            return NotImplemented
        return self.release < other.release

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GoIpfsVersion):
            return NotImplemented
        return (
            self.release == other.release
            and self.suffix == other.suffix
            and self.commit == other.commit
            and self.dirty == other.dirty
        )

    def __hash__(self) -> int:
        return hash((self.release, self.suffix, self.commit, self.dirty))


def parse_goipfs_agent(agent: Optional[str]) -> Optional[GoIpfsVersion]:
    """Parse a go-ipfs agent string; returns ``None`` for anything else.

    Accepted forms: ``go-ipfs/0.11.0``, ``go-ipfs/0.11.0-dev/0c2f9d5``,
    ``go-ipfs/0.11.0/abc123-dirty``.
    """
    if not agent:
        return None
    parts = agent.split("/")
    if parts[0] != GO_IPFS_PREFIX or len(parts) < 2:
        return None
    version_part = parts[1]
    match = _VERSION_RE.match(version_part)
    if match is None:
        return None
    major, minor, patch = int(match.group(1)), int(match.group(2)), int(match.group(3))
    suffix = match.group(4) or ""
    commit = ""
    dirty = False
    if len(parts) >= 3 and parts[2]:
        commit = parts[2]
        if commit.endswith("-dirty"):
            dirty = True
            commit = commit[: -len("-dirty")]
    return GoIpfsVersion(
        major=major, minor=minor, patch=patch, suffix=suffix, commit=commit, dirty=dirty
    )


def is_goipfs_agent(agent: Optional[str]) -> bool:
    return parse_goipfs_agent(agent) is not None


def is_hydra_agent(agent: Optional[str]) -> bool:
    return bool(agent) and agent.startswith(HYDRA_PREFIX)


def is_crawler_agent(agent: Optional[str]) -> bool:
    """Agents that identify themselves as crawlers (nebula, ipfs_crawler, ...)."""
    if not agent:
        return False
    lowered = agent.lower()
    return "crawler" in lowered or lowered.startswith("nebula")


def goipfs_release_group(agent: Optional[str]) -> Optional[str]:
    """Group a go-ipfs agent by its release number, as Fig. 3 does."""
    parsed = parse_goipfs_agent(agent)
    if parsed is None:
        return None
    return parsed.release_string
