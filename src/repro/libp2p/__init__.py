"""A minimal libp2p model.

The paper's measurement clients (go-ipfs, hydra-booster) are built on libp2p.
The analysis only depends on a small slice of libp2p behaviour:

* peer identities (key pair → PeerId, base58 multihash),
* multiaddresses (transport addresses, IP extraction, NAT/relay forms),
* the identify protocol (agent version, supported protocols, multiaddrs),
* connections with a direction and open/close timestamps, and
* the connection manager that trims connections between ``LowWater`` and
  ``HighWater`` — the mechanism the paper identifies as the dominant source of
  connection churn.

py-libp2p is incomplete, so this package rebuilds exactly that slice in plain
Python, suitable for driving a discrete-event simulation.
"""

from repro.libp2p.crypto import KeyPair, generate_keypair
from repro.libp2p.peer_id import PeerId
from repro.libp2p.multiaddr import Multiaddr
from repro.libp2p.protocols import (
    AUTONAT,
    BITSWAP_120,
    IPFS_ID,
    IPFS_PING,
    KAD_DHT,
    ProtocolRegistry,
    baseline_protocols,
)
from repro.libp2p.identify import IdentifyRecord
from repro.libp2p.connection import Connection, Direction
from repro.libp2p.connmgr import ConnectionManager, ConnManagerConfig, TagInfo

__all__ = [
    "KeyPair",
    "generate_keypair",
    "PeerId",
    "Multiaddr",
    "ProtocolRegistry",
    "baseline_protocols",
    "AUTONAT",
    "BITSWAP_120",
    "IPFS_ID",
    "IPFS_PING",
    "KAD_DHT",
    "IdentifyRecord",
    "Connection",
    "Direction",
    "ConnectionManager",
    "ConnManagerConfig",
    "TagInfo",
]
