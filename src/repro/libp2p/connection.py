"""Connections between peers.

A connection carries a direction (from the perspective of the local node), the
remote multiaddress, open/close timestamps and a close reason.  The measurement
exporter in the paper records exactly direction, multiaddress, open time and
connectedness per connection-id; the churn analysis (Table II) is computed over
the resulting durations.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.libp2p.multiaddr import Multiaddr
from repro.libp2p.peer_id import PeerId


class Direction(enum.Enum):
    """Direction of a connection from the local node's point of view."""

    INBOUND = "inbound"
    OUTBOUND = "outbound"


class CloseReason(enum.Enum):
    """Why a connection was closed (the simulator tags every close)."""

    LOCAL_TRIM = "local-trim"          # our connection manager trimmed it
    REMOTE_TRIM = "remote-trim"        # the remote's connection manager trimmed it
    REMOTE_LEFT = "remote-left"        # the remote node went offline
    LOCAL_SHUTDOWN = "local-shutdown"  # measurement node shut down
    PROTOCOL_DONE = "protocol-done"    # short-lived exchange finished (e.g. crawler)
    ERROR = "error"
    STILL_OPEN = "still-open"          # never closed; measurement end counts as close


_connection_ids = itertools.count(1)


@dataclass
class Connection:
    """A single (possibly still open) connection to a remote peer."""

    remote_peer: PeerId
    direction: Direction
    remote_addr: Multiaddr
    opened_at: float
    closed_at: Optional[float] = None
    close_reason: Optional[CloseReason] = None
    connection_id: int = field(default_factory=lambda: next(_connection_ids))

    @property
    def is_open(self) -> bool:
        return self.closed_at is None

    def close(self, now: float, reason: CloseReason) -> None:
        if not self.is_open:
            raise RuntimeError(f"connection {self.connection_id} already closed")
        if now < self.opened_at:
            raise ValueError("close time precedes open time")
        self.closed_at = now
        self.close_reason = reason

    def duration(self, now: Optional[float] = None) -> float:
        """Connection duration; open connections are measured up to ``now``.

        The paper counts connections still open at the end of a measurement as
        closed at that moment, which is what passing ``now`` expresses.
        """
        if self.closed_at is not None:
            return self.closed_at - self.opened_at
        if now is None:
            raise ValueError("duration of an open connection requires 'now'")
        return max(0.0, now - self.opened_at)

    def as_dict(self) -> dict:
        return {
            "connection_id": self.connection_id,
            "remote_peer": str(self.remote_peer),
            "direction": self.direction.value,
            "remote_addr": str(self.remote_addr),
            "opened_at": self.opened_at,
            "closed_at": self.closed_at,
            "close_reason": self.close_reason.value if self.close_reason else None,
        }
