"""Protocol identifiers and protocol-set helpers.

Fig. 4 of the paper counts the occurrences of supported protocol strings across
all observed peers, and Section IV.B reasons about combinations (go-ipfs agents
without Bitswap, storm nodes announcing ``/sbptp/1.0.0``, role flips visible as
``/ipfs/kad/1.0.0`` appearing/disappearing).  This module centralises the
protocol ID strings and provides the canonical protocol sets announced by the
client types the paper observes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

# Core IPFS / libp2p protocols seen in Fig. 4.
IPFS_ID = "/ipfs/id/1.0.0"
IPFS_ID_PUSH = "/ipfs/id/push/1.0.0"
IPFS_PING = "/ipfs/ping/1.0.0"
KAD_DHT = "/ipfs/kad/1.0.0"
LAN_KAD_DHT = "/ipfs/lan/kad/1.0.0"
BITSWAP = "/ipfs/bitswap"
BITSWAP_100 = "/ipfs/bitswap/1.0.0"
BITSWAP_110 = "/ipfs/bitswap/1.1.0"
BITSWAP_120 = "/ipfs/bitswap/1.2.0"
AUTONAT = "/libp2p/autonat/1.0.0"
RELAY_V1 = "/libp2p/circuit/relay/0.1.0"
RELAY_V2_STOP = "/libp2p/circuit/relay/0.2.0/stop"
FETCH = "/libp2p/fetch/0.0.1"
ID_DELTA = "/p2p/id/delta/1.0.0"
FLOODSUB = "/floodsub/1.0.0"
MESHSUB_100 = "/meshsub/1.0.0"
MESHSUB_110 = "/meshsub/1.1.0"
X_PROTOCOL = "/x/"

# Protocols specific to anomalous or exotic agents mentioned in the paper.
SBPTP = "/sbptp/1.0.0"           # announced by storm botnet nodes
SFST_1 = "/sfst/1.0.0"
SFST_2 = "/sfst/2.0.0"
IOI_DIAL = "/ioi/dial/1.0.0"
IOI_PORTSSUB = "/ioi/portssub/1.0.0"

BITSWAP_PROTOCOLS: FrozenSet[str] = frozenset(
    {BITSWAP, BITSWAP_100, BITSWAP_110, BITSWAP_120}
)

# Message types carried by /ipfs/kad/1.0.0.  Peer routing uses FIND_NODE; the
# content-routing traffic that dominates the real DHT uses ADD_PROVIDER
# (publish a provider record) and GET_PROVIDERS (resolve one, the reply also
# carrying closer peers).  The simulation transports are keyed by these names.
DHT_FIND_NODE = "FIND_NODE"
DHT_ADD_PROVIDER = "ADD_PROVIDER"
DHT_GET_PROVIDERS = "GET_PROVIDERS"

DHT_MESSAGE_TYPES: FrozenSet[str] = frozenset(
    {DHT_FIND_NODE, DHT_ADD_PROVIDER, DHT_GET_PROVIDERS}
)


def baseline_protocols() -> Set[str]:
    """Protocols announced by essentially every go-ipfs-like client."""
    return {
        IPFS_ID,
        IPFS_ID_PUSH,
        IPFS_PING,
        RELAY_V1,
        AUTONAT,
        FLOODSUB,
        MESHSUB_100,
        MESHSUB_110,
        ID_DELTA,
    }


def goipfs_protocols(
    dht_server: bool = True,
    bitswap: bool = True,
    modern: bool = True,
) -> Set[str]:
    """Return the protocol set a go-ipfs client announces.

    ``dht_server`` adds ``/ipfs/kad/1.0.0`` (the paper uses exactly this to
    identify DHT-Server nodes), ``bitswap`` adds the Bitswap family, ``modern``
    adds protocols only present in recent releases (relay v2 stop, fetch).
    """
    protocols = baseline_protocols()
    protocols.add(LAN_KAD_DHT)
    if dht_server:
        protocols.add(KAD_DHT)
    if bitswap:
        protocols.update({BITSWAP, BITSWAP_100, BITSWAP_110, BITSWAP_120})
    if modern:
        protocols.update({RELAY_V2_STOP, FETCH, X_PROTOCOL})
    return protocols


def hydra_protocols() -> Set[str]:
    """Hydra heads serve the DHT and identify/ping but no Bitswap."""
    return {IPFS_ID, IPFS_PING, KAD_DHT}


def crawler_protocols() -> Set[str]:
    """Crawlers typically only speak identify + DHT client messages."""
    return {IPFS_ID, IPFS_PING}


def storm_protocols() -> Set[str]:
    """IPStorm botnet nodes announce custom protocols instead of Bitswap."""
    protocols = baseline_protocols()
    protocols.update({KAD_DHT, SBPTP, SFST_1, SFST_2})
    protocols.discard(FLOODSUB)
    return protocols


def supports_bitswap(protocols: Iterable[str]) -> bool:
    return any(p in BITSWAP_PROTOCOLS for p in protocols)


def supports_dht_server(protocols: Iterable[str]) -> bool:
    return KAD_DHT in set(protocols)


class ProtocolRegistry:
    """Counts protocol announcements across a set of peers (Fig. 4)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add_peer(self, protocols: Iterable[str]) -> None:
        for proto in set(protocols):
            self._counts[proto] = self._counts.get(proto, 0) + 1

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def grouped(self, threshold: int) -> Dict[str, int]:
        """Group protocols supported by ``threshold`` or fewer peers as 'other'."""
        grouped: Dict[str, int] = {}
        other = 0
        for proto, count in self._counts.items():
            if count <= threshold:
                other += count
            else:
                grouped[proto] = count
        if other:
            grouped["other"] = other
        return grouped

    def top(self, n: int) -> List[str]:
        return [
            proto
            for proto, _ in sorted(
                self._counts.items(), key=lambda kv: kv[1], reverse=True
            )[:n]
        ]
