"""Multiaddresses.

libp2p expresses transport addresses as self-describing "multiaddrs", e.g.
``/ip4/147.75.80.1/tcp/4001`` or ``/ip4/10.0.0.2/udp/4001/quic``.  The paper's
network-size estimation (Section V.A) groups PIDs by the IP component of the
multiaddr they connected from, so the reproduction needs parsing, rendering and
IP extraction, plus the private-address classification used to model NATed
peers.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

_KNOWN_PROTOCOLS = {
    "ip4": 1,
    "ip6": 1,
    "dns4": 1,
    "dns6": 1,
    "tcp": 1,
    "udp": 1,
    "quic": 0,
    "quic-v1": 0,
    "ws": 0,
    "wss": 0,
    "p2p": 1,
    "ipfs": 1,
    "p2p-circuit": 0,
}


@dataclass(frozen=True)
class Multiaddr:
    """An immutable multiaddress composed of (protocol, value) components."""

    components: Tuple[Tuple[str, Optional[str]], ...]

    @classmethod
    def parse(cls, text: str) -> "Multiaddr":
        """Parse a slash-delimited multiaddr string."""
        if not text.startswith("/"):
            raise ValueError(f"multiaddr must start with '/': {text!r}")
        parts = [p for p in text.split("/") if p != ""]
        components: List[Tuple[str, Optional[str]]] = []
        i = 0
        while i < len(parts):
            proto = parts[i]
            if proto not in _KNOWN_PROTOCOLS:
                raise ValueError(f"unknown multiaddr protocol: {proto!r}")
            arity = _KNOWN_PROTOCOLS[proto]
            if arity == 0:
                components.append((proto, None))
                i += 1
            else:
                if i + 1 >= len(parts):
                    raise ValueError(f"protocol {proto!r} expects a value")
                components.append((proto, parts[i + 1]))
                i += 2
        return cls(components=tuple(components))

    @classmethod
    def tcp(cls, ip: str, port: int = 4001) -> "Multiaddr":
        family = "ip6" if ":" in ip else "ip4"
        return cls(components=((family, ip), ("tcp", str(port))))

    @classmethod
    def quic(cls, ip: str, port: int = 4001) -> "Multiaddr":
        family = "ip6" if ":" in ip else "ip4"
        return cls(components=((family, ip), ("udp", str(port)), ("quic", None)))

    @classmethod
    def circuit_relay(cls, relay_ip: str, relay_peer: str) -> "Multiaddr":
        """A relayed address: the observed IP belongs to the relay, not the peer."""
        return cls(
            components=(
                ("ip4", relay_ip),
                ("tcp", "4001"),
                ("p2p", relay_peer),
                ("p2p-circuit", None),
            )
        )

    def ip(self) -> Optional[str]:
        """Return the first IP (or DNS name) component's value, if any."""
        for proto, value in self.components:
            if proto in ("ip4", "ip6", "dns4", "dns6"):
                return value
        return None

    def transport(self) -> Optional[str]:
        """Return the transport protocol ('tcp', 'quic', 'ws', ...)."""
        transports = [
            p for p, _ in self.components if p in ("tcp", "udp", "quic", "quic-v1", "ws", "wss")
        ]
        if "quic" in transports or "quic-v1" in transports:
            return "quic"
        if "wss" in transports:
            return "wss"
        if "ws" in transports:
            return "ws"
        if "tcp" in transports:
            return "tcp"
        if "udp" in transports:
            return "udp"
        return None

    def port(self) -> Optional[int]:
        for proto, value in self.components:
            if proto in ("tcp", "udp") and value is not None:
                return int(value)
        return None

    def is_relayed(self) -> bool:
        return any(proto == "p2p-circuit" for proto, _ in self.components)

    def is_private(self) -> bool:
        """True when the IP component is a private / loopback / link-local address."""
        ip = self.ip()
        if ip is None:
            return False
        try:
            addr = ipaddress.ip_address(ip)
        except ValueError:
            return False
        return addr.is_private or addr.is_loopback or addr.is_link_local

    def with_peer(self, peer_id: str) -> "Multiaddr":
        return Multiaddr(components=self.components + (("p2p", peer_id),))

    def __str__(self) -> str:
        # Memoised: connection records render the same few addresses over and
        # over during dataset finalisation.  The dataclass is frozen, so the
        # rendering never changes; the cache lives outside the declared fields
        # and therefore affects neither equality nor hashing.
        cached = self.__dict__.get("_str")
        if cached is not None:
            return cached
        parts: List[str] = []
        for proto, value in self.components:
            parts.append(proto)
            if value is not None:
                parts.append(value)
        rendered = "/" + "/".join(parts)
        object.__setattr__(self, "_str", rendered)
        return rendered

    def __repr__(self) -> str:
        return f"Multiaddr({str(self)!r})"


def random_public_ipv4(rng: random.Random) -> str:
    """Draw a random globally-routable IPv4 address."""
    while True:
        octets = [
            rng.randint(1, 223), rng.randint(0, 255), rng.randint(0, 255), rng.randint(1, 254)
        ]
        addr = ipaddress.ip_address(".".join(str(o) for o in octets))
        if not (addr.is_private or addr.is_loopback or addr.is_multicast
                or addr.is_link_local or addr.is_reserved):
            return str(addr)


def random_private_ipv4(rng: random.Random) -> str:
    """Draw a random RFC1918 address (used for NATed peers' self-reported addrs)."""
    pick = rng.random()
    if pick < 0.5:
        return f"192.168.{rng.randint(0, 255)}.{rng.randint(1, 254)}"
    if pick < 0.8:
        return f"10.{rng.randint(0, 255)}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"
    return f"172.{rng.randint(16, 31)}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"


def addresses_for_peer(
    public_ip: str,
    rng: random.Random,
    behind_nat: bool = False,
    port: int = 4001,
    include_quic: bool = True,
) -> List[Multiaddr]:
    """Build a plausible advertised address list for a peer.

    go-ipfs nodes usually advertise a private listen address plus (when not
    NATed or after hole punching) their public address, over both TCP and QUIC.
    """
    addrs: List[Multiaddr] = [Multiaddr.tcp(random_private_ipv4(rng), port)]
    if include_quic:
        addrs.append(Multiaddr.quic(random_private_ipv4(rng), port))
    if not behind_nat:
        addrs.append(Multiaddr.tcp(public_ip, port))
        if include_quic:
            addrs.append(Multiaddr.quic(public_ip, port))
    return addrs
