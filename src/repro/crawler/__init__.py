"""Active DHT crawler baseline.

The paper compares its passive horizons against the public results of the
Weizenbaum-Institut crawler (and mentions the Nebula crawler).  Such crawlers
walk the Kademlia DHT: starting from the bootstrap peers they repeatedly ask
every reachable DHT-Server for the contents of its routing table until no new
peers appear.  Two properties matter for the comparison in Fig. 2:

* a crawler only ever sees **DHT-Servers** (clients are not in routing tables);
* each crawl is a **fresh snapshot** — peers that left the network since the
  previous crawl disappear from the results, whereas the passive node's
  peerstore keeps them forever.
"""

from repro.crawler.crawler import Crawler, CrawlSnapshot
from repro.crawler.monitor import CrawlMonitor, CrawlRange

__all__ = ["Crawler", "CrawlSnapshot", "CrawlMonitor", "CrawlRange"]
