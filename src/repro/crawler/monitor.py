"""Repeated crawls and their aggregation.

The public crawler the paper compares against runs every 8 hours and publishes
the number of nodes found per crawl; the paper therefore shows the crawler's
result as a min–max range per measurement period (Fig. 2).  :class:`CrawlMonitor`
stores the individual snapshots and produces that range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.crawler.crawler import CrawlSnapshot
from repro.libp2p.peer_id import PeerId

#: crawl cadence of the Weizenbaum-Institut crawler
DEFAULT_CRAWL_INTERVAL = 8 * 3600.0


@dataclass(frozen=True)
class CrawlRange:
    """Min/max node counts over a series of crawls (one bar of Fig. 2)."""

    crawls: int
    min_reachable: int
    max_reachable: int
    min_discovered: int
    max_discovered: int
    union_discovered: int

    def as_dict(self) -> dict:
        return {
            "crawls": self.crawls,
            "min_reachable": self.min_reachable,
            "max_reachable": self.max_reachable,
            "min_discovered": self.min_discovered,
            "max_discovered": self.max_discovered,
            "union_discovered": self.union_discovered,
        }


@dataclass
class CrawlMonitor:
    """Collects snapshots from periodic crawls."""

    snapshots: List[CrawlSnapshot] = field(default_factory=list)

    def add(self, snapshot: CrawlSnapshot) -> None:
        self.snapshots.append(snapshot)

    def __len__(self) -> int:
        return len(self.snapshots)

    def union_discovered(self) -> Set[PeerId]:
        union: Set[PeerId] = set()
        for snapshot in self.snapshots:
            union.update(snapshot.discovered)
        return union

    def range(self, since: Optional[float] = None, until: Optional[float] = None) -> CrawlRange:
        """Aggregate the snapshots that started within [since, until]."""
        selected = [
            s
            for s in self.snapshots
            if (since is None or s.started_at >= since)
            and (until is None or s.started_at <= until)
        ]
        if not selected:
            return CrawlRange(0, 0, 0, 0, 0, 0)
        union: Set[PeerId] = set()
        for snapshot in selected:
            union.update(snapshot.discovered)
        return CrawlRange(
            crawls=len(selected),
            min_reachable=min(s.reachable_count for s in selected),
            max_reachable=max(s.reachable_count for s in selected),
            min_discovered=min(s.discovered_count for s in selected),
            max_discovered=max(s.discovered_count for s in selected),
            union_discovered=len(union),
        )
