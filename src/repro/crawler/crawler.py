"""The DHT crawler: breadth-first walk over routing tables."""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterable, List, Optional, Set

from repro.kademlia.keys import KEY_BITS, key_for_peer, random_key_in_bucket
from repro.libp2p.peer_id import PeerId

#: query(remote, target, count) -> closest peers, or None when unreachable.
QueryFn = Callable[[PeerId, int, int], Optional[List[PeerId]]]


@dataclass
class CrawlSnapshot:
    """The outcome of one crawl run."""

    started_at: float
    finished_at: float
    #: every PID that appeared in some routing table during the crawl
    discovered: Set[PeerId] = field(default_factory=set)
    #: the subset of discovered peers that answered our queries (online servers)
    reachable: Set[PeerId] = field(default_factory=set)
    #: the subset we queried but that never answered (offline, DHT-Client, or
    #: undialable behind a NAT — the crawler cannot tell these apart, which is
    #: exactly the paper's crawler-undercount blind spot)
    unreachable: Set[PeerId] = field(default_factory=set)
    queries_sent: int = 0

    @property
    def discovered_count(self) -> int:
        return len(self.discovered)

    @property
    def reachable_count(self) -> int:
        return len(self.reachable)

    @property
    def unreachable_count(self) -> int:
        return len(self.unreachable)

    def duration(self) -> float:
        return self.finished_at - self.started_at


class Crawler:
    """A Nebula-style crawler that enumerates the DHT-Server population.

    ``buckets_per_peer`` controls how many FIND_NODE targets are sent to each
    reachable peer; real crawlers craft one per non-empty bucket.  The crawl is
    breadth-first and stops when no unqueried peer remains.
    """

    def __init__(
        self,
        query: QueryFn,
        bootstrap_peers: Iterable[PeerId],
        buckets_per_peer: int = 16,
        rng: Optional[random.Random] = None,
        crawl_duration: float = 600.0,
    ) -> None:
        self.query = query
        self.bootstrap_peers = list(bootstrap_peers)
        self.buckets_per_peer = buckets_per_peer
        self.rng = rng or random.Random()
        self.crawl_duration = crawl_duration

    def _targets_for(self, peer: PeerId) -> List[int]:
        """FIND_NODE targets that enumerate the remote peer's buckets.

        The closest buckets (highest common prefix) hold the peer's DHT
        neighbourhood; the farther buckets cover the rest of the keyspace.  We
        probe the ``buckets_per_peer`` highest bucket indices plus the peer's
        own key, which in practice harvests nearly the full table.
        """
        local_key = key_for_peer(peer)
        targets = [local_key]
        for offset in range(self.buckets_per_peer):
            index = KEY_BITS - 1 - offset
            if index < 0:
                break
            targets.append(random_key_in_bucket(local_key, index, self.rng))
        return targets

    def crawl(self, now: float) -> CrawlSnapshot:
        """Run one full crawl starting at simulated time ``now``."""
        snapshot = CrawlSnapshot(started_at=now, finished_at=now + self.crawl_duration)
        # FIFO frontier: bootstrap peers first, then peers in discovery order —
        # an actual breadth-first walk (popping the tail would be depth-first).
        to_visit: Deque[PeerId] = deque(self.bootstrap_peers)
        seen: Set[PeerId] = set(to_visit)
        snapshot.discovered.update(to_visit)

        while to_visit:
            peer = to_visit.popleft()
            answered = False
            for target in self._targets_for(peer):
                snapshot.queries_sent += 1
                reply = self.query(peer, target, 20)
                if reply is None:
                    break
                answered = True
                for found in reply:
                    snapshot.discovered.add(found)
                    if found not in seen:
                        seen.add(found)
                        to_visit.append(found)
            if answered:
                snapshot.reachable.add(peer)
            else:
                snapshot.unreachable.add(peer)
        return snapshot
