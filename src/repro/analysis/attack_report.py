"""Measurement-distortion metrics of an adversarial scenario run.

The paper's estimators assume every observed PID is an honest participant.
This module quantifies what each attack does to them, with ground truth in
hand (the :class:`~repro.adversary.behaviors.AttackStats` a scenario returns
knows exactly which PIDs were attacker identities):

* **net-size distortion** — the multiaddress estimator (Section V.A) and the
  neighbourhood-density estimator against the honest ground-truth population:
  observed-PID inflation, estimate error, and the attacker share of the
  observed PIDs.
* **churn misclassification** — how the Table IV connection-behaviour
  classification shifts when attacker PIDs pollute it: per-class counts with
  and without attacker PIDs, the rate of attacker-induced class assignments,
  and the one-time-class inflation churn spoofers cause.
* **eclipse success** — captured vs honestly stored victim-key records,
  end-of-window attacker occupancy of the victim neighbourhoods, and the
  retrieval success the content workload achieved under the attack.
* **routing poisoning** — dropped/poisoned query counts and the bogus-peer
  volume injected into lookups.

Everything rounds to fixed precision and orders deterministically, so the
block embeds into sweep-cell JSON byte-identically across reruns.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.classification import (
    ClassificationThresholds,
    PeerClassLabel,
    classify_peer,
)
from repro.core.netsize import (
    estimate_by_multiaddress,
    estimate_by_neighborhood_density,
    peer_connection_summaries,
)
from repro.libp2p.peer_id import PeerId

#: neighbourhood size the density estimator reads (the go-ipfs bucket size)
DENSITY_K = 20

_CLASS_ORDER = (
    PeerClassLabel.HEAVY,
    PeerClassLabel.NORMAL,
    PeerClassLabel.LIGHT,
    PeerClassLabel.ONE_TIME,
)


def _primary_label(result) -> Optional[str]:
    for label in ("go-ipfs", "hydra"):
        if label in result.datasets:
            return label
    return next(iter(sorted(result.datasets)), None)


def _identity_target_key(result, label: Optional[str]) -> Optional[int]:
    """The keyspace position of the primary vantage point."""
    keys = result.identity_keys
    if not keys:
        return None
    b58 = keys.get(label) if label is not None else None
    if b58 is None:
        # The hydra union has no single identity; anchor on the first head.
        b58 = keys[sorted(keys)[0]]
    return PeerId.from_base58(b58).kad_key()


def _ratio(num: float, den: float) -> float:
    return round(num / den, 6) if den else 0.0


def _class_counts(
    summaries, skip_pids: Optional[set] = None,
    thresholds: ClassificationThresholds = ClassificationThresholds(),
) -> Dict[str, int]:
    counts = {label.value: 0 for label in _CLASS_ORDER}
    for summary in summaries.values():
        if skip_pids is not None and summary.peer in skip_pids:
            continue
        label = classify_peer(summary.max_duration, summary.connection_count, thresholds)
        counts[label.value] += 1
    return counts


def attack_metrics(result) -> Optional[Dict]:
    """Reduce a run's attack ground truth to the sweep cell's ``adversary``
    block (``None`` for scenarios that deployed no attackers)."""
    stats = getattr(result, "adversary", None)
    if stats is None:
        return None
    label = _primary_label(result)
    dataset = result.datasets[label] if label is not None else None
    attacker_pids = stats.attacker_pids
    honest_truth = len(result.population.honest())

    block: Dict = {
        "attackers": stats.attackers,
        "by_kind": dict(sorted(stats.by_kind.items())),
        "dataset": label,
        "events_recorded": len(stats.events),
        "events_dropped": stats.events_dropped,
    }

    if dataset is not None:
        observed = set(dataset.peers)
        observed_attackers = sorted(observed & attacker_pids)
        target = _identity_target_key(result, label)
        density_keys = [PeerId.from_base58(pid).kad_key() for pid in sorted(observed)]
        density = (
            estimate_by_neighborhood_density(density_keys, target, k=DENSITY_K)
            if target is not None
            else None
        )
        multiaddr = estimate_by_multiaddress(dataset)
        block["netsize"] = {
            "ground_truth_honest": honest_truth,
            "observed_pids": dataset.pid_count(),
            "attacker_pids_observed": len(observed_attackers),
            "attacker_pid_share": _ratio(len(observed_attackers), len(observed)),
            "observed_inflation": _ratio(dataset.pid_count(), honest_truth),
            "multiaddr_estimate": multiaddr.estimated_participants,
            "multiaddr_inflation": _ratio(multiaddr.estimated_participants, honest_truth),
            "density_estimate": round(density.estimate, 1) if density else 0.0,
            "density_inflation": (
                round(density.inflation_over(honest_truth), 6) if density else 0.0
            ),
        }

        summaries = peer_connection_summaries(dataset)
        observed_classes = _class_counts(summaries)
        honest_classes = _class_counts(summaries, skip_pids=attacker_pids)
        classified = sum(observed_classes.values())
        attacker_classified = classified - sum(honest_classes.values())
        block["churn"] = {
            "classified_pids": classified,
            "attacker_classified": attacker_classified,
            # The rate of class assignments the measurement files for peers
            # that are not actually network participants.
            "misclassification_rate": _ratio(attacker_classified, classified),
            "observed_classes": observed_classes,
            "honest_classes": honest_classes,
            "one_time_inflation": _ratio(
                observed_classes["one-time"], max(1, honest_classes["one-time"])
            ),
            "spoofed_sessions": stats.spoofed_sessions,
            "spoofed_pids": stats.spoofed_pids,
        }

    if stats.victim_keys:
        captured = stats.counter("records_captured")
        honest_stores = stats.counter("victim_records_honest")
        eclipse: Dict = {
            "victim_keys": len(stats.victim_keys),
            "records_captured": captured,
            "victim_records_honest": honest_stores,
            "capture_rate": _ratio(captured, captured + honest_stores),
            "occupancy": round(stats.eclipse_occupancy, 6),
            "provider_lookups_intercepted": stats.counter("provider_lookups_intercepted"),
            "shadow_publishes": stats.counter("shadow_publishes"),
            "shadow_records_accepted": stats.counter("shadow_records_accepted"),
        }
        if result.content is not None:
            eclipse["retrieval_success_rate"] = round(
                result.content.retrieval_success_rate, 6
            )
        block["eclipse"] = eclipse

    dropped = stats.counter("queries_dropped")
    poisoned = stats.counter("queries_poisoned")
    if dropped or poisoned or stats.counter("bogus_peers_returned"):
        block["routing"] = {
            "queries_dropped": dropped,
            "queries_poisoned": poisoned,
            "bogus_peers_returned": stats.counter("bogus_peers_returned"),
            "stores_dropped": stats.counter("stores_dropped"),
        }

    return block


def attack_headline(block: Optional[Dict]) -> str:
    """A compact, table-cell-sized summary of the dominant distortion."""
    if not block:
        return "-"
    parts: List[str] = []
    eclipse = block.get("eclipse")
    if eclipse:
        parts.append(f"ecl {eclipse['capture_rate']:.2f}")
    netsize = block.get("netsize")
    sybil_running = bool(block.get("by_kind", {}).get("sybil"))
    if netsize and (sybil_running or netsize["density_inflation"] >= 1.5):
        parts.append(f"net x{netsize['density_inflation']:.1f}")
    routing = block.get("routing")
    if routing:
        parts.append(f"psn {routing['queries_poisoned'] + routing['queries_dropped']}")
    churn = block.get("churn", {})
    if churn.get("spoofed_pids"):
        parts.append(f"spf {churn['spoofed_pids']}")
    return " ".join(parts[:2]) if parts else "-"
