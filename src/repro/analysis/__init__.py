"""Statistics, CDF, and presentation helpers shared by the analysis modules.

The helpers in this package are intentionally free of any simulator or
measurement dependency: they operate on plain Python numbers and sequences so
that the analysis code in :mod:`repro.core` stays testable in isolation and
could be reused on data exported from a real go-ipfs measurement node.
"""

from repro.analysis.cdf import EmpiricalCDF, binned_cdf
from repro.analysis.stats import (
    StreamingStats,
    SummaryStats,
    median,
    percentile,
    summarize,
)
from repro.analysis.tables import TextTable, format_count, format_seconds
from repro.analysis.plots import ascii_bar_chart, ascii_series, sparkline
from repro.analysis.sweep_report import (
    aggregate_payload,
    aggregate_table,
    render_aggregate,
)

__all__ = [
    "EmpiricalCDF",
    "binned_cdf",
    "StreamingStats",
    "SummaryStats",
    "median",
    "percentile",
    "summarize",
    "TextTable",
    "format_count",
    "format_seconds",
    "ascii_bar_chart",
    "ascii_series",
    "sparkline",
    "aggregate_payload",
    "aggregate_table",
    "render_aggregate",
]
