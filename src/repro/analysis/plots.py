"""ASCII charts used by examples and benchmark harnesses.

The reproduction has no plotting dependency; figures are "regenerated" as the
numeric series the paper plots, optionally rendered as coarse ASCII charts so a
reader can eyeball the shape (e.g. the connection-trimming sawtooth of Fig. 5).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render ``values`` as a unicode sparkline string."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _BLOCKS[4] * len(values)
    span = hi - lo
    chars = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[idx])
    return "".join(chars)


def ascii_bar_chart(
    data: Mapping[str, float],
    width: int = 50,
    sort_desc: bool = True,
    max_rows: int = 40,
) -> str:
    """Render a horizontal bar chart of label → value.

    Used for Fig. 3 (agent occurrences) and Fig. 4 (protocol occurrences).
    """
    items: List[Tuple[str, float]] = list(data.items())
    if sort_desc:
        items.sort(key=lambda kv: kv[1], reverse=True)
    items = items[:max_rows]
    if not items:
        return "(empty)"
    label_width = max(len(k) for k, _ in items)
    peak = max(v for _, v in items) or 1.0
    lines = []
    for label, value in items:
        bar = "#" * max(1, int(round(value / peak * width))) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)


def ascii_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    samples: int = 60,
) -> str:
    """Render one sparkline per named (x, y) series, downsampled to ``samples``."""
    lines: List[str] = []
    label_width = max((len(name) for name in series), default=0)
    for name, points in series.items():
        ys = [y for _, y in points]
        if len(ys) > samples:
            step = len(ys) / samples
            ys = [ys[int(i * step)] for i in range(samples)]
        lines.append(f"{name.ljust(label_width)} | {sparkline(ys)}")
    return "\n".join(lines)


def downsample(points: Sequence[Tuple[float, float]], samples: int) -> List[Tuple[float, float]]:
    """Downsample an (x, y) series to at most ``samples`` points, keeping ends."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    if len(points) <= samples:
        return list(points)
    step = (len(points) - 1) / (samples - 1)
    return [points[int(round(i * step))] for i in range(samples)]
