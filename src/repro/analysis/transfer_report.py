"""Data-plane metrics: transfer latency decomposition and uplink utilization.

Scenarios run under a :mod:`repro.bandwidth` model report a
:class:`~repro.bandwidth.runtime.BandwidthStats` per run; this module reduces
it to the deterministic, JSON-serialisable ``bandwidth`` block the sweep CLI
embeds in every cell summary:

* the ground-truth access-class composition and control-plane byte counts,
* per-transfer percentiles (p50/p90/p99) of the total transfer time and of
  each latency component — RTT, serialization (size / bottleneck rate), and
  FIFO queueing delay — plus the transferred block sizes,
* the queueing share of total latency (the "is the data plane congested"
  headline), and
* per-node uplink utilization percentiles over every link that carried at
  least one transfer.

Everything rounds to fixed precision and orders deterministically, so the
block embeds into sweep-cell JSON byte-identically across reruns.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.content_report import quantile_block


def transfer_metrics(result) -> Optional[Dict]:
    """Reduce a run's bandwidth ground truth to the sweep cell's ``bandwidth``
    block (``None`` for scenarios that ran on the zero-size fabric)."""
    stats = getattr(result, "bandwidth", None)
    if stats is None:
        return None
    totals = [
        rtt + serialization + queueing
        for rtt, serialization, queueing in zip(
            stats.transfer_rtts,
            stats.transfer_serializations,
            stats.transfer_queueings,
        )
    ]
    return {
        "peers": stats.peers,
        "classes": dict(sorted(stats.class_counts.items())),
        "control_rpcs": stats.control_rpcs,
        "control_bytes": stats.control_bytes,
        "identify_payloads": stats.identify_payloads,
        "identify_bytes": stats.identify_bytes,
        "transfers": stats.transfers,
        "transfers_timed_out": stats.transfers_timed_out,
        "timeout_rate": round(stats.timeout_rate, 6),
        "bytes_transferred": stats.bytes_transferred,
        "mean_transfer_time": round(stats.mean_transfer_time, 6),
        "queueing_share": round(stats.queueing_share, 6),
        "transfer_time": quantile_block(totals, 6),
        "rtt": quantile_block(stats.transfer_rtts, 6),
        "serialization": quantile_block(stats.transfer_serializations, 6),
        "queueing": quantile_block(stats.transfer_queueings, 6),
        "size": quantile_block(stats.transfer_sizes, 0),
        "utilized_links": len(stats.utilization_samples),
        "utilization": quantile_block(stats.utilization_samples, 6),
    }


def transfer_headline(block: Optional[Dict]) -> str:
    """A compact, table-cell-sized summary of the dominant data-plane effect."""
    if not block:
        return "-"
    if block["transfers_timed_out"]:
        return f"bw to {block['timeout_rate']:.2f}"
    if block["transfers"]:
        if block["queueing_share"] >= 0.05:
            return f"bw q {block['queueing_share']:.0%}"
        return f"bw p90 {block['transfer_time']['p90']:.2f}s"
    return "bw idle"
