"""Small, dependency-light statistics helpers.

The paper reports per-period connection statistics as *sum of observations*,
*average*, and *median* (Table II).  These helpers compute exactly those
aggregates plus a few extras (percentiles, min/max, standard deviation) that
the ablation benchmarks use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence


def median(values: Sequence[float]) -> float:
    """Return the median of ``values``.

    Raises ``ValueError`` for an empty sequence, mirroring ``statistics.median``.
    """
    if not values:
        raise ValueError("median of an empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0–100) using linear interpolation."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class SummaryStats:
    """Immutable summary of a numeric sample."""

    count: int
    total: float
    mean: float
    median: float
    minimum: float
    maximum: float
    stdev: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "stdev": self.stdev,
        }


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` for ``values``.

    An empty iterable yields an all-zero summary rather than raising, because
    the churn analysis routinely summarises subsets (e.g. outbound connections
    of a peer that only ever had inbound ones).
    """
    data: List[float] = [float(v) for v in values]
    if not data:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    total = sum(data)
    mean = total / len(data)
    var = sum((v - mean) ** 2 for v in data) / len(data)
    return SummaryStats(
        count=len(data),
        total=total,
        mean=mean,
        median=median(data),
        minimum=min(data),
        maximum=max(data),
        stdev=math.sqrt(var),
    )


@dataclass
class StreamingStats:
    """Welford-style streaming mean/variance with min/max tracking.

    Used by the measurement node to keep running statistics without retaining
    every observation in memory (the paper's go-ipfs exporter records millions
    of connection events per period).
    """

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    minimum: float = field(default=math.inf)
    maximum: float = field(default=-math.inf)
    total: float = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Return a new :class:`StreamingStats` combining two streams."""
        if self.count == 0:
            return other.copy()
        if other.count == 0:
            return self.copy()
        merged = StreamingStats()
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def copy(self) -> "StreamingStats":
        clone = StreamingStats()
        clone.count = self.count
        clone.total = self.total
        clone._mean = self._mean
        clone._m2 = self._m2
        clone.minimum = self.minimum
        clone.maximum = self.maximum
        return clone

    def as_summary(self, median_value: Optional[float] = None) -> SummaryStats:
        """Convert to :class:`SummaryStats`; the median must be supplied."""
        if self.count == 0:
            return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return SummaryStats(
            count=self.count,
            total=self.total,
            mean=self.mean,
            median=self.mean if median_value is None else median_value,
            minimum=self.minimum,
            maximum=self.maximum,
            stdev=self.stdev,
        )


def ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Safe division used throughout the analysis code."""
    if denominator == 0:
        return default
    return numerator / denominator
