"""Reduction of a run's streaming-metrics summary for sweep artifacts.

The sweep CLI embeds one ``metrics`` block per cell summary when the cell ran
with ``--metrics``; the full window-by-window time series lives in the cell's
``*__metrics.jsonl`` file, so the embedded block keeps only the run totals
and a short tail of recent windows.  Like every other report module this is
deterministic: same run, same block, byte for byte.
"""

from __future__ import annotations

from typing import Dict, Optional

#: windows embedded verbatim into a cell summary (the full series lives in
#: the cell's metrics.jsonl; the embedded block keeps only this tail)
EMBED_WINDOWS = 6


def metrics_metrics(result, embed_windows: int = EMBED_WINDOWS) -> Optional[Dict]:
    """Reduce ``result.metrics`` (a :class:`~repro.obs.hub.MetricsSummary`)
    to a plain cell-summary block.

    Returns ``None`` when the run had metrics disabled (``population.obs``
    unset), so cells without ``--metrics`` carry ``"metrics": null`` and stay
    cheap to aggregate.
    """
    summary = getattr(result, "metrics", None)
    if summary is None:
        return None
    return {
        "window_seconds": summary.window_seconds,
        "windows_closed": summary.windows_closed,
        "windows_dropped": summary.windows_dropped,
        "observations": summary.observations,
        "counters": dict(sorted(summary.counters.items())),
        "recent_windows": list(summary.windows[-embed_windows:]),
    }
