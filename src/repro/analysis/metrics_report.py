"""Reduction of a run's streaming-metrics summary for sweep artifacts.

The sweep CLI embeds one ``metrics`` block per cell summary when the cell ran
with ``--metrics``; the full window-by-window time series lives in the cell's
``*__metrics.jsonl`` file, so the embedded block keeps only the run totals
and a short tail of recent windows.  Like every other report module this is
deterministic: same run, same block, byte for byte.

Also a CLI for quick post-hoc inspection of an exported series::

    python -m repro.analysis.metrics_report metrics.jsonl [--top N]

prints the window count, the largest run-total counters, and interpolated
p50/p90/p99 per histogram.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.obs.hub import DEFAULT_TIME_BUCKETS

#: windows embedded verbatim into a cell summary (the full series lives in
#: the cell's metrics.jsonl; the embedded block keeps only this tail)
EMBED_WINDOWS = 6


def metrics_metrics(result, embed_windows: int = EMBED_WINDOWS) -> Optional[Dict]:
    """Reduce ``result.metrics`` (a :class:`~repro.obs.hub.MetricsSummary`)
    to a plain cell-summary block.

    Returns ``None`` when the run had metrics disabled (``population.obs``
    unset), so cells without ``--metrics`` carry ``"metrics": null`` and stay
    cheap to aggregate.
    """
    summary = getattr(result, "metrics", None)
    if summary is None:
        return None
    return {
        "window_seconds": summary.window_seconds,
        "windows_closed": summary.windows_closed,
        "windows_dropped": summary.windows_dropped,
        "observations": summary.observations,
        "counters": dict(sorted(summary.counters.items())),
        "recent_windows": list(summary.windows[-embed_windows:]),
    }


# ---------------------------------------------------------------------------
# CLI: quick post-hoc inspection of an exported metrics.jsonl


def _percentile(bounds: Sequence[float], buckets: Sequence[int], q: float) -> str:
    """Interpolated percentile from cumulative histogram buckets.

    ``buckets`` has one count per bound plus an overflow bucket; within the
    bucket holding rank ``q * total`` the value is linearly interpolated
    between the bucket's edges (lower edge 0 for the first bucket).  A rank
    landing in the overflow bucket has no upper edge, so it prints as
    ``>last_bound``.
    """
    total = sum(buckets)
    if total == 0:
        return "-"
    rank = q * total
    cumulative = 0
    for i, count in enumerate(buckets):
        if cumulative + count >= rank and count:
            if i >= len(bounds):
                return f">{bounds[-1]:g}"
            lower = bounds[i - 1] if i else 0.0
            upper = bounds[i]
            fraction = (rank - cumulative) / count
            return f"{lower + (upper - lower) * fraction:.6g}"
        cumulative += count
    return f">{bounds[-1]:g}"


def _read_windows(path: str) -> List[Dict]:
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.metrics_report",
        description="Summarize an exported metrics.jsonl: window count, "
        "largest counters, histogram p50/p90/p99.",
    )
    parser.add_argument("path", help="metrics.jsonl written by a metered run")
    parser.add_argument(
        "--top", type=int, default=10, help="counters to print (default 10)"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.top < 1:
        parser.error(f"--top must be positive, got {args.top}")
    try:
        windows = _read_windows(args.path)
    except OSError as exc:
        parser.error(f"cannot read {args.path}: {exc}")

    counters: Dict[str, int] = {}
    histograms: Dict[str, Dict] = {}
    observations = 0
    for window in windows:
        for name, value in (window.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, payload in (window.get("histograms") or {}).items():
            merged = histograms.setdefault(name, {"count": 0, "buckets": None})
            merged["count"] += payload["count"]
            observations += payload["count"]
            buckets = payload["buckets"]
            if merged["buckets"] is None:
                merged["buckets"] = list(buckets)
            else:
                merged["buckets"] = [
                    a + b for a, b in zip(merged["buckets"], buckets)
                ]

    print(f"windows: {len(windows)}")
    if windows:
        first = windows[0]
        print(f"window_seconds: {first['end'] - first['start']:g}")
    print(f"histogram observations: {observations}")

    ranked = sorted(counters.items(), key=lambda item: (-item[1], item[0]))
    print(f"top counters ({min(args.top, len(ranked))} of {len(ranked)}):")
    for name, value in ranked[: args.top]:
        print(f"  {name}: {value}")

    # The export carries bucket counts but not the bucket bounds; the
    # default hub bounds are assumed here (custom-bucket hubs need their
    # own post-processing).
    bounds = DEFAULT_TIME_BUCKETS
    print("histograms (assuming default time buckets):")
    for name in sorted(histograms):
        merged = histograms[name]
        buckets = merged["buckets"] or []
        p50 = _percentile(bounds, buckets, 0.50)
        p90 = _percentile(bounds, buckets, 0.90)
        p99 = _percentile(bounds, buckets, 0.99)
        print(f"  {name}: count={merged['count']} p50={p50} p90={p90} p99={p99}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
