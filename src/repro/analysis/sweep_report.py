"""Aggregation of scenario-sweep cell summaries.

The sweep CLI (``python -m repro.sweep``) produces one JSON summary dict per
(scenario, population, seed) cell; this module turns a list of those dicts
into the aggregate artifacts — a totals payload and a rendered
:class:`~repro.analysis.tables.TextTable`.  Cells that failed to run are
carried alongside the successes (the CLI exits nonzero when any exist).
Everything here is deterministic: no timestamps, no wall-clock fields, stable
ordering — two sweeps with the same flags must aggregate to byte-identical
output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.attack_report import attack_headline
from repro.analysis.reachability_report import reachability_headline
from repro.analysis.resilience_report import resilience_headline
from repro.analysis.tables import TextTable, format_count
from repro.analysis.trace_report import tracing_headline
from repro.analysis.transfer_report import transfer_headline

#: schema tags of the sweep artifacts (cell /4: causal-tracing block)
CELL_SCHEMA = "repro-sweep-cell/4"
SWEEP_SCHEMA = "repro-sweep/1"


def primary_dataset_label(summary: Dict) -> Optional[str]:
    """The dataset a cell is judged by: go-ipfs if deployed, else the hydra union."""
    datasets = summary.get("datasets", {})
    for label in ("go-ipfs", "hydra"):
        if label in datasets:
            return label
    return next(iter(sorted(datasets)), None)


def aggregate_payload(summaries: Sequence[Dict], failures: Sequence[Dict] = ()) -> Dict:
    """The ``sweep_summary.json`` payload: all cells plus sweep-wide totals."""
    content_blocks = [s["content"] for s in summaries if s.get("content")]
    totals = {
        "cells": len(summaries),
        "failed_cells": len(failures),
        "events_processed": sum(s["events_processed"] for s in summaries),
        "queries_sent": sum(s["queries_sent"] for s in summaries),
        # The "hydra" dataset is the union of the per-head datasets summed
        # alongside it; skip it so each recorded connection counts once.
        "connections": sum(
            counts["connections"]
            for s in summaries
            for label, counts in s["datasets"].items()
            if label != "hydra"
        ),
        "retrievals": sum(c["retrievals"] for c in content_blocks),
        "retrieval_successes": sum(c["retrieval_successes"] for c in content_blocks),
        "attackers": sum(
            s["adversary"]["attackers"] for s in summaries if s.get("adversary")
        ),
        "dial_failures": sum(
            s["netmodel"]["dial_failures"] for s in summaries if s.get("netmodel")
        ),
        "lookup_timeouts": sum(
            s["netmodel"]["lookup_timeouts"] for s in summaries if s.get("netmodel")
        ),
        "faulted_rpcs": sum(
            s["resilience"]["rpc"]["lost"] + s["resilience"]["rpc"]["partitioned"]
            for s in summaries
            if s.get("resilience")
        ),
        "crashes": sum(
            s["resilience"]["crash"]["crashes"] for s in summaries if s.get("resilience")
        ),
        "retries": sum(
            s["resilience"]["retry"]["retries"] for s in summaries if s.get("resilience")
        ),
        "transfers": sum(
            s["bandwidth"]["transfers"] for s in summaries if s.get("bandwidth")
        ),
        "transfer_timeouts": sum(
            s["bandwidth"]["transfers_timed_out"]
            for s in summaries
            if s.get("bandwidth")
        ),
        "bytes_transferred": sum(
            s["bandwidth"]["bytes_transferred"] for s in summaries if s.get("bandwidth")
        ),
        # Cells run without --metrics carry "metrics": null; older cell JSON
        # predates the block entirely, hence the defensive .get.
        "metric_windows": sum(
            s["metrics"]["windows_closed"] for s in summaries if s.get("metrics")
        ),
        "metric_observations": sum(
            s["metrics"]["observations"] for s in summaries if s.get("metrics")
        ),
        # Cells run without --trace carry "tracing": null (same discipline).
        "traced_ops": sum(
            sum(s["tracing"]["ops"].values()) for s in summaries if s.get("tracing")
        ),
        "traces": sum(
            s["tracing"]["traces"] for s in summaries if s.get("tracing")
        ),
    }
    return {
        "schema": SWEEP_SCHEMA,
        "totals": totals,
        "cells": list(summaries),
        "failures": list(failures),
    }


def aggregate_table(summaries: Sequence[Dict]) -> TextTable:
    """One row per sweep cell, judged by its primary dataset."""
    table = TextTable(
        headers=[
            "Scenario", "Peers", "Seed", "Events", "Dataset",
            "PIDs", "Conns", "Avg dur (s)", "Trim share", "Queries",
            "Retr", "Retr OK", "Atk", "Attack", "Unreach", "Net",
            "Faults", "Resil", "Xfers", "Data plane", "Traces", "Crit path",
        ],
        title="Scenario sweep",
    )
    for summary in summaries:
        label = primary_dataset_label(summary)
        counts = summary["datasets"].get(label, {}) if label else {}
        churn = summary.get("churn", {}).get(label, {}) if label else {}
        content = summary.get("content")
        adversary = summary.get("adversary")
        netmodel = summary.get("netmodel")
        resilience = summary.get("resilience")
        bandwidth = summary.get("bandwidth")
        tracing = summary.get("tracing")
        faulted = (
            resilience["rpc"]["lost"]
            + resilience["rpc"]["partitioned"]
            + resilience["bitswap"]["lost"]
            + resilience["bitswap"]["partitioned"]
            if resilience
            else 0
        )
        table.add_row(
            summary["scenario"],
            summary["n_peers"],
            summary["seed"],
            format_count(summary["events_processed"]),
            label or "-",
            format_count(counts.get("peers", 0)),
            format_count(counts.get("connections", 0)),
            f"{churn.get('avg_duration', 0.0):.1f}",
            f"{churn.get('trim_share', 0.0):.2f}",
            format_count(summary["queries_sent"]),
            format_count(content["retrievals"]) if content else "-",
            f"{content['retrieval_success_rate']:.2f}" if content else "-",
            format_count(adversary["attackers"]) if adversary else "-",
            attack_headline(adversary),
            f"{netmodel['unreachable_share']:.2f}" if netmodel else "-",
            reachability_headline(netmodel),
            format_count(faulted) if resilience else "-",
            resilience_headline(resilience),
            format_count(bandwidth["transfers"]) if bandwidth else "-",
            transfer_headline(bandwidth),
            format_count(tracing["traces"]) if tracing else "-",
            tracing_headline(tracing),
        )
    return table


def render_aggregate(summaries: Sequence[Dict], failures: Sequence[Dict] = ()) -> str:
    """The ``sweep_table.txt`` content (table plus totals and failures)."""
    payload = aggregate_payload(summaries, failures)
    totals = payload["totals"]
    lines: List[str] = [aggregate_table(summaries).render(), ""]
    totals_line = (
        f"{totals['cells']} cells, "
        f"{format_count(totals['events_processed'])} events, "
        f"{format_count(totals['connections'])} recorded connections, "
        f"{format_count(totals['queries_sent'])} crawler queries"
    )
    if totals["retrievals"]:
        ok = totals["retrieval_successes"] / totals["retrievals"]
        totals_line += (
            f", {format_count(totals['retrievals'])} retrievals ({ok:.0%} ok)"
        )
    if totals["attackers"]:
        totals_line += f", {format_count(totals['attackers'])} attackers"
    if totals["dial_failures"]:
        totals_line += f", {format_count(totals['dial_failures'])} failed dials"
    if totals["lookup_timeouts"]:
        totals_line += f", {format_count(totals['lookup_timeouts'])} lookup timeouts"
    if totals["faulted_rpcs"]:
        totals_line += f", {format_count(totals['faulted_rpcs'])} faulted RPCs"
    if totals["retries"]:
        totals_line += f", {format_count(totals['retries'])} retries"
    if totals["crashes"]:
        totals_line += f", {format_count(totals['crashes'])} crashes"
    if totals["transfers"]:
        totals_line += (
            f", {format_count(totals['transfers'])} transfers "
            f"({format_count(totals['bytes_transferred'])} B)"
        )
    if totals["transfer_timeouts"]:
        totals_line += f", {format_count(totals['transfer_timeouts'])} transfer timeouts"
    if totals["metric_windows"]:
        totals_line += (
            f", {format_count(totals['metric_observations'])} metric observations "
            f"in {format_count(totals['metric_windows'])} windows"
        )
    if totals["traces"]:
        totals_line += (
            f", {format_count(totals['traces'])} traces of "
            f"{format_count(totals['traced_ops'])} traced ops"
        )
    lines.append(totals_line)
    for failure in failures:
        lines.append(
            f"FAILED {failure['scenario']} (peers={failure['n_peers']}, "
            f"seed={failure['seed']}): {failure['error']}"
        )
    return "\n".join(lines) + "\n"
