"""Plain-text table rendering for the benchmark harnesses.

Every benchmark prints the rows of the paper table (or the series of the paper
figure) it regenerates.  :class:`TextTable` keeps that output aligned and easy
to diff against the paper's values recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence


def format_seconds(value: float) -> str:
    """Format a duration in seconds the way the paper prints them (3 decimals)."""
    return f"{value:,.3f} s".replace(",", "'")


def format_count(value: float) -> str:
    """Format a count with thousands separators in the paper's style (1'285'513)."""
    return f"{int(round(value)):,}".replace(",", "'")


@dataclass
class TextTable:
    """A minimal monospaced table builder."""

    headers: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)
    title: Optional[str] = None

    def add_row(self, *cells: object) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(row)

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(list(self.headers)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(fmt(row))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
