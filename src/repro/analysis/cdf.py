"""Empirical cumulative distribution functions.

Fig. 7 of the paper plots two CDFs: the maximum connection duration per PID
(grouped into 30 s intervals) and the number of connections per PID, each split
into "all", "DHT-Server", and "DHT-Client" series.  :class:`EmpiricalCDF`
provides exactly the operations the benchmark harness needs to regenerate those
series and to check the anchor fractions the paper reports (e.g. "around 53 %
are connected less than 1 h").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass
class EmpiricalCDF:
    """Empirical CDF over a numeric sample.

    The CDF is right-continuous: ``fraction_at(x)`` returns
    ``P(X <= x)`` under the empirical distribution.
    """

    values: List[float]

    def __init__(self, values: Iterable[float]):
        self.values = sorted(float(v) for v in values)

    def __len__(self) -> int:
        return len(self.values)

    def fraction_at(self, x: float) -> float:
        """Return the empirical ``P(X <= x)``."""
        if not self.values:
            return 0.0
        idx = bisect.bisect_right(self.values, x)
        return idx / len(self.values)

    def fraction_above(self, x: float) -> float:
        """Return the empirical ``P(X > x)``."""
        return 1.0 - self.fraction_at(x)

    def quantile(self, q: float) -> float:
        """Return the smallest value ``v`` with ``P(X <= v) >= q``."""
        if not self.values:
            raise ValueError("quantile of an empty CDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if q == 0.0:
            return self.values[0]
        idx = max(0, min(len(self.values) - 1, int(q * len(self.values) + 0.5) - 1))
        return self.values[idx]

    def points(self) -> List[Tuple[float, float]]:
        """Return the (value, cumulative fraction) step points of the CDF."""
        n = len(self.values)
        pts: List[Tuple[float, float]] = []
        for i, v in enumerate(self.values, start=1):
            if pts and pts[-1][0] == v:
                pts[-1] = (v, i / n)
            else:
                pts.append((v, i / n))
        return pts

    def sampled(self, xs: Sequence[float]) -> List[Tuple[float, float]]:
        """Evaluate the CDF at each x in ``xs`` (for plotting on a fixed grid)."""
        return [(x, self.fraction_at(x)) for x in xs]


def binned_cdf(values: Iterable[float], bin_width: float) -> Dict[float, float]:
    """Return a CDF evaluated on bin edges ``bin_width, 2*bin_width, ...``.

    The paper groups connection durations into 30 s intervals before plotting;
    this helper reproduces that presentation.  The returned dict maps the upper
    bin edge to the cumulative fraction of values that fall at or below it.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    data = sorted(float(v) for v in values)
    if not data:
        return {}
    max_value = data[-1]
    edges: List[float] = []
    edge = bin_width
    while edge < max_value + bin_width:
        edges.append(edge)
        edge += bin_width
    cdf = EmpiricalCDF(data)
    return {round(e, 9): cdf.fraction_at(e) for e in edges}


def log_spaced_grid(minimum: float, maximum: float, points_per_decade: int = 10) -> List[float]:
    """Return a logarithmically spaced grid covering [minimum, maximum].

    Fig. 7 uses a log-scaled x axis from 10^0 to 10^5 seconds; benchmarks use
    this helper to evaluate CDF series on a comparable grid.
    """
    if minimum <= 0 or maximum <= 0:
        raise ValueError("log grid bounds must be positive")
    if maximum < minimum:
        raise ValueError("maximum must be >= minimum")
    import math

    lo = math.floor(math.log10(minimum))
    hi = math.ceil(math.log10(maximum))
    grid: List[float] = []
    for decade in range(lo, hi + 1):
        for step in range(points_per_decade):
            value = 10 ** (decade + step / points_per_decade)
            if minimum <= value <= maximum:
                grid.append(value)
    if not grid or grid[-1] < maximum:
        grid.append(maximum)
    return grid
