"""Critical-path attribution of a run's causal span traces.

Reduces ``ScenarioResult.spans`` (a
:class:`~repro.obs.trace_export.TraceSummary`) to the ``tracing`` block the
sweep CLI embeds per cell: how much of the traced retrieval latency each
regime spends in the DHT walk vs failed dials vs retry backoff vs transmit
queueing vs serialization vs the exchange itself.  The decomposition is
:func:`~repro.obs.trace_export.leaf_attribution`, shared with the
``repro.obs.critical_path`` CLI, so the embedded shares and the printed
trees always agree.  Deterministic like every report module: same run, same
block, byte for byte.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.trace_export import leaf_attribution

#: slowest traces embedded verbatim as (key, op, seconds, outcome) pointers
#: into the cell's traces.jsonl
EMBED_SLOWEST = 3

#: attribution buckets reported even when empty, so the sweep table and the
#: cell JSON have a stable shape across regimes
CATEGORIES = (
    "walk",
    "dial",
    "backoff",
    "queue",
    "serialization",
    "transfer",
    "other",
)

#: the operation whose latency the critical-path share decomposes
RETRIEVE_OP = "content.retrieve"


def tracing_metrics(result, embed_slowest: int = EMBED_SLOWEST) -> Optional[Dict]:
    """Reduce ``result.spans`` to a plain cell-summary block.

    Returns ``None`` when the run had tracing disabled (``population.trace``
    unset), so cells without ``--trace`` carry ``"tracing": null``.
    """
    summary = getattr(result, "spans", None)
    if summary is None:
        return None
    totals = {category: 0.0 for category in CATEGORIES}
    retrieve_seconds = 0.0
    retrieve_traces = 0
    for payload in summary.traces:
        if payload["op"] != RETRIEVE_OP:
            continue
        retrieve_traces += 1
        retrieve_seconds += payload["seconds"]
        for category, seconds in leaf_attribution(payload["root"]).items():
            totals[category] = totals.get(category, 0.0) + seconds
    if retrieve_seconds > 0.0:
        critical_path = {
            category: round(seconds / retrieve_seconds, 6)
            for category, seconds in sorted(totals.items())
        }
    else:
        critical_path = {category: 0.0 for category in sorted(totals)}
    slowest = sorted(
        summary.traces, key=lambda payload: (-payload["seconds"], payload["key"])
    )[:embed_slowest]
    return {
        "sample": summary.sample,
        "ops": dict(sorted(summary.ops.items())),
        "sampled": dict(sorted(summary.sampled.items())),
        "traces": len(summary.traces),
        "traces_dropped": summary.traces_dropped,
        "retrieve_traces": retrieve_traces,
        "retrieve_seconds": round(retrieve_seconds, 6),
        "critical_path": critical_path,
        "slowest": [
            {
                "key": payload["key"],
                "op": payload["op"],
                "seconds": payload["seconds"],
                "outcome": payload["outcome"],
            }
            for payload in slowest
        ],
    }


def tracing_headline(block: Optional[Dict]) -> str:
    """One cell-table word: the category dominating the retrieval critical
    path, with its share (``-`` when the cell traced no retrievals)."""
    if not block or not block.get("retrieve_traces"):
        return "-"
    critical_path = block["critical_path"]
    category = max(sorted(critical_path), key=lambda name: critical_path[name])
    return f"{category} {critical_path[category]:.0%}"
