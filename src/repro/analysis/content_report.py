"""Content-routing quality metrics: success rates and hop/latency CDFs.

The content scenarios report a :class:`~repro.simulation.content.ContentRoutingStats`
per run; this module reduces it to the deterministic, JSON-serialisable block
the sweep CLI embeds in every cell summary — lookup success rates plus CDF
quantiles of hop counts and simulated lookup latencies — and exposes the raw
:class:`~repro.analysis.cdf.EmpiricalCDF` objects for plotting.

Everything rounds to fixed precision so two identical runs serialise to
byte-identical artifacts.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.cdf import EmpiricalCDF

#: the quantiles every hop/latency series is reported at
QUANTILES = (0.5, 0.9, 0.99)


def quantile_block(values: Sequence[float], precision: int) -> Dict[str, float]:
    """``{"p50": ..., "p90": ..., "p99": ...}`` (zeros for empty series)."""
    if not values:
        return {f"p{int(q * 100)}": 0.0 for q in QUANTILES}
    cdf = EmpiricalCDF(values)
    return {
        f"p{int(q * 100)}": round(cdf.quantile(q), precision) for q in QUANTILES
    }


def hop_cdf(stats, kind: str = "retrieve") -> EmpiricalCDF:
    """The hop-count CDF of a stats object (``kind``: retrieve | provide)."""
    values = stats.retrieve_hops if kind == "retrieve" else stats.provide_hops
    return EmpiricalCDF(values)


def latency_cdf(stats, kind: str = "retrieve") -> EmpiricalCDF:
    """The lookup-latency CDF of a stats object (``kind``: retrieve | provide)."""
    values = stats.retrieve_latencies if kind == "retrieve" else stats.provide_latencies
    return EmpiricalCDF(values)


def content_metrics(stats) -> Optional[Dict]:
    """Reduce a run's content stats to the sweep cell's ``content`` block.

    Returns ``None`` for scenarios that ran no content workload, so the cell
    JSON distinguishes "no workload" from "workload with zero operations".
    """
    if stats is None:
        return None
    return {
        "publishers": stats.publishers,
        "retrievers": stats.retrievers,
        "provides": stats.provides,
        "provide_success_rate": round(stats.provide_success_rate, 6),
        "republishes": stats.republishes,
        "records_stored": stats.records_stored,
        "records_expired": stats.records_expired,
        "records_live_at_end": stats.records_live_at_end,
        "retrievals": stats.retrievals,
        "retrieval_successes": stats.retrieval_successes,
        "retrievals_local": stats.retrievals_local,
        "retrieval_success_rate": round(stats.retrieval_success_rate, 6),
        "first_half_success_rate": round(stats.first_half_success_rate, 6),
        "second_half_success_rate": round(stats.second_half_success_rate, 6),
        "provide_hops": quantile_block(stats.provide_hops, 1),
        "retrieve_hops": quantile_block(stats.retrieve_hops, 1),
        "provide_latency": quantile_block(stats.provide_latencies, 4),
        "retrieve_latency": quantile_block(stats.retrieve_latencies, 4),
    }
