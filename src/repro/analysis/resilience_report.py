"""Resilience metrics: success under faults, retries, recovery, stale records.

Scenarios run with a :mod:`repro.faults` config report a
:class:`~repro.faults.runtime.FaultStats` per run; this module reduces it to
the deterministic, JSON-serialisable ``resilience`` block the sweep CLI
embeds in every cell summary:

* injected-fault volume (RPC/Bitswap loss, duplication, partition drops),
* the crash/restart process and its recovery republishes,
* retry amplification (actual attempts per logical RPC) and how many lost
  RPCs the retries saved,
* time-to-recover percentiles after a partition heal, and
* the stale-provider-record rate retrievers observe (crash leftovers).

Everything rounds to fixed precision and orders deterministically, so the
block embeds into sweep-cell JSON byte-identically across reruns.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.content_report import quantile_block


def resilience_metrics(result) -> Optional[Dict]:
    """Reduce a run's fault-injection ground truth to the sweep cell's
    ``resilience`` block (``None`` for scenarios on the fault-free fabric)."""
    stats = getattr(result, "faults", None)
    if stats is None:
        return None
    block: Dict = {
        "peers": stats.peers,
        "crash_eligible": stats.crash_eligible,
        "slow_nodes": stats.slow_nodes,
        "partition_minority": stats.partition_minority,
        "rpc": {
            "attempts": stats.rpc_attempts,
            "lost": stats.rpc_lost,
            "duplicated": stats.rpc_duplicated,
            "partitioned": stats.rpc_partitioned,
            "loss_rate": round(stats.rpc_loss_rate, 6),
        },
        "bitswap": {
            "attempts": stats.bitswap_attempts,
            "lost": stats.bitswap_lost,
            "partitioned": stats.bitswap_partitioned,
        },
        "crash": {
            "crashes": stats.crashes,
            "restarts": stats.restarts,
            "recovery_republishes": stats.recovery_republishes,
        },
        "retry": {
            "calls": stats.retry_calls,
            "retries": stats.retry_extra,
            "recoveries": stats.retry_recoveries,
            "amplification": round(stats.retry_amplification, 6),
            "recovery_rate": round(stats.retry_recovery_rate, 6),
        },
        "stale": {
            "provider_checks": stats.provider_checks,
            "stale_hits": stats.stale_provider_hits,
            "stale_rate": round(stats.stale_provider_rate, 6),
        },
        "slow": {
            "charges": stats.slow_charges,
            "penalty_total": round(stats.slow_penalty_total, 6),
        },
        "blocked": {
            "contacts": stats.contacts_blocked,
            "dials": stats.dials_blocked,
        },
    }
    content = getattr(result, "content", None)
    if content is not None and content.retrievals:
        # Success-under-faults: the workload's own success rate, repeated here
        # so the resilience block is self-contained for regime comparisons.
        block["retrieval_success_rate"] = round(
            content.retrieval_successes / content.retrievals, 6
        )
    if stats.heal_time is not None:
        block["partition"] = {
            "severed": stats.partition_severed,
            "heal_time": round(stats.heal_time, 6),
            "recovered_peers": stats.recovered_peers,
            "recovery": quantile_block(stats.recovery_delays, 4),
        }
    return block


def resilience_headline(block: Optional[Dict]) -> str:
    """A compact, table-cell-sized summary of the dominant resilience story."""
    if not block:
        return "-"
    retry = block["retry"]
    if retry["calls"] and retry["retries"]:
        return f"rty x{retry['amplification']:.2f}"
    partition = block.get("partition")
    if partition and partition["recovered_peers"]:
        recovery = partition["recovery"] or {}
        p90 = recovery.get("p90")
        if p90 is not None:
            return f"heal {p90:.0f}s"
        return f"heal {partition['recovered_peers']}"
    rpc = block["rpc"]
    if rpc["attempts"] and rpc["loss_rate"] > 0:
        return f"loss {rpc['loss_rate']:.2f}"
    crash = block["crash"]
    if crash["crashes"]:
        return f"cr {crash['crashes']}"
    return "-"
