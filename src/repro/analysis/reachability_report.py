"""Network-conditions metrics: reachability, dial outcomes, RTTs, timeouts.

Scenarios run under a :mod:`repro.netmodel` report a
:class:`~repro.netmodel.runtime.NetModelStats` per run; this module reduces
it to the deterministic, JSON-serialisable ``netmodel`` block the sweep CLI
embeds in every cell summary:

* the ground-truth reachability-class and region composition,
* dial outcomes (attempts, NAT failures, relay dials) and RTT percentiles,
* iterative-walk timeout rates, and
* — when the active crawler ran — the crawler-undercount-vs-passive gap:
  the union of PIDs the crawler discovered vs the subset it could actually
  reach vs what the passive vantage point observed over the same window.

Everything rounds to fixed precision and orders deterministically, so the
block embeds into sweep-cell JSON byte-identically across reruns.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.content_report import quantile_block


def _primary_label(result) -> Optional[str]:
    for label in ("go-ipfs", "hydra"):
        if label in result.datasets:
            return label
    return next(iter(sorted(result.datasets)), None)


def crawler_coverage(result) -> Optional[Dict]:
    """The crawler's coverage over the whole window, against the passive view.

    ``undercount_vs_discovered`` is the share of discovered peers the crawler
    could never reach (NATed or gone); ``undercount_vs_passive`` compares the
    crawler's reachable union with every PID the passive vantage point
    recorded.  Returns ``None`` when no crawls ran.
    """
    snapshots = result.crawls.snapshots
    if not snapshots:
        return None
    discovered = set()
    reachable = set()
    for snapshot in snapshots:
        discovered.update(snapshot.discovered)
        reachable.update(snapshot.reachable)
    label = _primary_label(result)
    passive_pids = result.datasets[label].pid_count() if label is not None else 0
    return {
        "crawls": len(snapshots),
        "union_discovered": len(discovered),
        "union_reachable": len(reachable),
        "undercount_vs_discovered": round(
            1.0 - (len(reachable) / len(discovered)) if discovered else 0.0, 6
        ),
        "passive_pids": passive_pids,
        "undercount_vs_passive": round(
            1.0 - (len(reachable) / passive_pids) if passive_pids else 0.0, 6
        ),
    }


def reachability_metrics(result) -> Optional[Dict]:
    """Reduce a run's netmodel ground truth to the sweep cell's ``netmodel``
    block (``None`` for scenarios that ran on the idealised fabric)."""
    stats = getattr(result, "netmodel", None)
    if stats is None:
        return None
    block: Dict = {
        "peers": stats.peers,
        "classes": dict(sorted(stats.class_counts.items())),
        "regions": dict(sorted(stats.region_counts.items())),
        "unreachable_share": round(stats.unreachable_share, 6),
        "dial_attempts": stats.dial_attempts,
        "dial_failures": stats.dial_failures,
        "relay_dials": stats.relay_dials,
        "dial_failure_rate": round(stats.dial_failure_rate, 6),
        "rpc_messages": stats.rpc_messages,
        "mean_rtt": round(stats.mean_rtt, 6),
        "rtt": quantile_block(stats.rtt_samples, 4),
        "lookups_timed": stats.lookups_timed,
        "lookup_timeouts": stats.lookup_timeouts,
        "lookup_timeout_rate": round(stats.lookup_timeout_rate, 6),
    }
    crawl = crawler_coverage(result)
    if crawl is not None:
        block["crawl"] = crawl
    return block


def reachability_headline(block: Optional[Dict]) -> str:
    """A compact, table-cell-sized summary of the dominant network effect."""
    if not block:
        return "-"
    crawl = block.get("crawl")
    if crawl:
        return f"crawl -{crawl['undercount_vs_discovered']:.0%}"
    if block["lookups_timed"]:
        return f"to {block['lookup_timeout_rate']:.2f}"
    if block["rpc_messages"]:
        return f"rtt {block['mean_rtt']:.2f}s"
    return f"df {block['dial_failure_rate']:.2f}"
