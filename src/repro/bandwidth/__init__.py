"""Data-plane bandwidth model: block sizes, link classes, transmit queues.

See :mod:`repro.bandwidth.config` for the model description.  Attach a
:class:`BandwidthConfig` to ``PopulationConfig.bandwidth`` to activate it;
``None`` (the default) keeps the zero-size fabric byte-identical to earlier
builds.
"""

from repro.bandwidth.config import (
    DEFAULT_CLASSES,
    KB,
    MB,
    BandwidthClass,
    BandwidthConfig,
)
from repro.bandwidth.runtime import (
    BandwidthRuntime,
    BandwidthStats,
    PeerLink,
    TransferPlan,
)

__all__ = [
    "DEFAULT_CLASSES",
    "KB",
    "MB",
    "BandwidthClass",
    "BandwidthConfig",
    "BandwidthRuntime",
    "BandwidthStats",
    "PeerLink",
    "TransferPlan",
]
