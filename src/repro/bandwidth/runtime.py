"""Runtime side of the data-plane bandwidth model.

:class:`BandwidthRuntime` is built by the network fabric when a
:class:`~repro.bandwidth.config.BandwidthConfig` is attached to the
population.  It draws each peer's access class from its own salted RNG
stream (one draw per peer, in peer-index order — the same stream discipline
:mod:`repro.netmodel` and :mod:`repro.faults` use), charges control traffic
against walk clocks and the event heap through the
:class:`~repro.simulation.fabric.FabricRuntime` hooks, and serializes Bitswap
transfers through per-peer FIFO transmit queues.

The queue model is a per-link ``busy_until`` frontier: a transfer starting at
``now`` waits ``max(0, busy_until - now)`` (queueing delay), then occupies the
link for ``size / rate`` (serialization delay).  Events are processed in
simulated-time order, so the scalar frontier *is* a FIFO queue — no second
event queue is spun up, and the ``bandwidth=None`` hot path stays empty.

Transfers are planned, then committed: the content behaviours ask for a
:class:`TransferPlan` first (a timeout-bound retriever abandons a hopeless
fetch before occupying anyone's uplink), run the Bitswap exchange, and commit
the plan only when a block actually came back — so failed fetches never
charge the queues.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.bandwidth.config import BandwidthConfig
from repro.simulation.fabric import FabricRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netmodel.runtime import WalkClock
    from repro.simulation.network import SimPeer
    from repro.simulation.population import PeerProfile


class PeerLink:
    """The drawn link of one peer: rates plus the FIFO queue frontiers."""

    __slots__ = (
        "cls",
        "up",
        "down",
        "up_busy_until",
        "down_busy_until",
        "up_busy_seconds",
    )

    def __init__(self, cls: int, up: float, down: float) -> None:
        #: index into ``BandwidthConfig.classes``
        self.cls = cls
        self.up = up
        self.down = down
        #: FIFO transmit/receive queue frontiers (simulated seconds)
        self.up_busy_until = 0.0
        self.down_busy_until = 0.0
        #: total seconds the uplink spent serializing (utilization accounting)
        self.up_busy_seconds = 0.0


@dataclass
class TransferPlan:
    """One planned Bitswap transfer, split into its latency components."""

    src: PeerLink
    dst: PeerLink
    size: int
    rtt: float
    queueing: float
    serialization: float

    @property
    def total(self) -> float:
        return self.rtt + self.queueing + self.serialization


@dataclass
class BandwidthStats:
    """What a scenario reports about its data plane.

    Compact and picklable: the process-parallel sweep runner ships these back
    from worker processes instead of whole scenario results.
    """

    peers: int = 0
    #: ground-truth access-class composition
    class_counts: Dict[str, int] = field(default_factory=dict)

    #: control plane: DHT RPC payloads and identify records
    control_rpcs: int = 0
    control_bytes: int = 0
    identify_payloads: int = 0
    identify_bytes: int = 0

    #: data plane: committed Bitswap transfers
    transfers: int = 0
    transfers_timed_out: int = 0
    bytes_transferred: int = 0
    rtt_total: float = 0.0
    serialization_total: float = 0.0
    queueing_total: float = 0.0

    #: per-transfer samples for the percentile report (first N kept)
    transfer_sizes: List[int] = field(default_factory=list)
    transfer_rtts: List[float] = field(default_factory=list)
    transfer_serializations: List[float] = field(default_factory=list)
    transfer_queueings: List[float] = field(default_factory=list)
    transfer_samples_dropped: int = 0
    max_transfer_samples: int = 10_000

    #: per-node uplink utilization (busy share of the window), recorded at
    #: finalize for every node whose uplink carried any transfer
    utilization_samples: List[float] = field(default_factory=list)
    utilization_samples_dropped: int = 0
    max_utilization_samples: int = 10_000

    @property
    def transfer_attempts(self) -> int:
        return self.transfers + self.transfers_timed_out

    @property
    def timeout_rate(self) -> float:
        attempts = self.transfer_attempts
        return self.transfers_timed_out / attempts if attempts else 0.0

    @property
    def latency_total(self) -> float:
        return self.rtt_total + self.serialization_total + self.queueing_total

    @property
    def queueing_share(self) -> float:
        """Queueing delay's share of total transfer latency."""
        total = self.latency_total
        return self.queueing_total / total if total else 0.0

    @property
    def mean_transfer_time(self) -> float:
        return self.latency_total / self.transfers if self.transfers else 0.0


class BandwidthRuntime(FabricRuntime):
    """Per-run state: link assignments, queue frontiers, and stats."""

    slot = "link"
    name = "bandwidth"

    def __init__(self, config: BandwidthConfig, seed: int) -> None:
        self.config = config
        self.rng = random.Random(seed + config.seed_salt)
        self.stats = BandwidthStats()
        self.stats.class_counts = {cls.name: 0 for cls in config.classes}
        self._cum_shares: List[float] = []
        total = 0.0
        for cls in config.classes:
            total += cls.share
            self._cum_shares.append(total)
        #: the class exempt (vantage-point-like) peers are forced into: the
        #: fastest uplink, so the instruments never bottleneck the experiment
        self._fastest = max(
            range(len(config.classes)), key=lambda i: config.classes[i].up
        )
        self._links: List[PeerLink] = []

    # -- assignment (construction time, deterministic in peer order) ---------------

    def _draw_class(self) -> int:
        roll = self.rng.random()
        for index, cumulative in enumerate(self._cum_shares):
            if roll <= cumulative:
                return index
        return len(self._cum_shares) - 1

    def assign_peer(
        self, profile: Optional["PeerProfile"] = None, *, exempt: bool = False
    ) -> PeerLink:
        """Draw one peer's link (always one draw, so the stream is a pure
        function of the assignment order).

        ``exempt`` peers (hydra heads, crawlers — derived from ``profile`` in
        the :class:`FabricRuntime` hook form) still draw — keeping the stream
        aligned — but are forced into the fastest class.
        """
        if profile is not None:
            exempt = profile.is_hydra_head or profile.is_crawler
        index = self._draw_class()
        if exempt:
            index = self._fastest
        cls = self.config.classes[index]
        link = PeerLink(
            index,
            up=cls.up * self.config.uplink_scale,
            down=cls.down * self.config.downlink_scale,
        )
        self.stats.peers += 1
        self.stats.class_counts[cls.name] += 1
        self._links.append(link)
        return link

    # -- control plane ---------------------------------------------------------------

    def _count_control_rpc(self) -> int:
        total = self.config.rpc_request_bytes + self.config.rpc_response_bytes
        self.stats.control_rpcs += 1
        self.stats.control_bytes += total
        return total

    def on_rpc(self, src: Optional["SimPeer"], dst: "SimPeer") -> bool:
        # No walk clock on this path: the bytes are counted, no simulated
        # time can be charged anywhere.
        self._count_control_rpc()
        return True

    def on_timed_rpc(
        self, clock: "WalkClock", src: Optional["SimPeer"], dst: "SimPeer"
    ) -> bool:
        # The reply serializes on the responder's uplink, the request on the
        # querier's (a vantage point / crawler source pays nothing).  Control
        # messages are small enough to skip the queue frontier.
        self._count_control_rpc()
        elapsed = self.config.rpc_response_bytes / dst.link.up
        if src is not None and src.link is not None:
            elapsed += self.config.rpc_request_bytes / src.link.up
        clock.elapsed += elapsed
        return True

    def identify_delay(self, label: str, peer: "SimPeer") -> float:
        """Serialization of the identify record on the peer's uplink."""
        self.stats.identify_payloads += 1
        self.stats.identify_bytes += self.config.identify_bytes
        return self.config.identify_bytes / peer.link.up

    # -- data plane ------------------------------------------------------------------

    def plan_transfer(
        self, now: float, src: PeerLink, dst: PeerLink, size: int, rtt: float = 0.0
    ) -> Optional[TransferPlan]:
        """Plan one block transfer from ``src`` (provider) to ``dst``.

        Returns ``None`` — and counts a timeout — when the would-be latency
        (RTT + queueing behind both frontiers + serialization at the
        bottleneck rate) exceeds ``transfer_timeout``: the retriever abandons
        the fetch without occupying anyone's link.
        """
        rate = min(src.up, dst.down)
        serialization = size / rate
        start = max(now, src.up_busy_until, dst.down_busy_until)
        plan = TransferPlan(
            src=src,
            dst=dst,
            size=size,
            rtt=rtt,
            queueing=start - now,
            serialization=serialization,
        )
        timeout = self.config.transfer_timeout
        if timeout is not None and plan.total > timeout:
            self.stats.transfers_timed_out += 1
            return None
        return plan

    def commit_transfer(self, now: float, plan: TransferPlan) -> float:
        """The block came back: occupy both links and record the sample.

        Returns the transfer's total latency (RTT + queueing + serialization).
        """
        end = now + plan.queueing + plan.serialization
        plan.src.up_busy_until = end
        plan.src.up_busy_seconds += plan.serialization
        plan.dst.down_busy_until = end
        stats = self.stats
        stats.transfers += 1
        stats.bytes_transferred += plan.size
        stats.rtt_total += plan.rtt
        stats.serialization_total += plan.serialization
        stats.queueing_total += plan.queueing
        if len(stats.transfer_sizes) < stats.max_transfer_samples:
            stats.transfer_sizes.append(plan.size)
            stats.transfer_rtts.append(plan.rtt)
            stats.transfer_serializations.append(plan.serialization)
            stats.transfer_queueings.append(plan.queueing)
        else:
            stats.transfer_samples_dropped += 1
        return plan.total

    # -- finalize --------------------------------------------------------------------

    def finalize(self, duration: float) -> BandwidthStats:
        """Close the books: per-node uplink utilization over the window."""
        stats = self.stats
        for link in self._links:
            if link.up_busy_seconds <= 0.0:
                continue
            sample = min(1.0, link.up_busy_seconds / duration)
            if len(stats.utilization_samples) < stats.max_utilization_samples:
                stats.utilization_samples.append(sample)
            else:
                stats.utilization_samples_dropped += 1
        return stats
