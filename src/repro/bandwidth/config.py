"""Configuration of the data-plane bandwidth model.

Until this subsystem existed a Bitswap "fetch" was a zero-size token riding
the netmodel RTT: heavy-traffic scenarios could not saturate anything.  The
bandwidth model gives every peer an up/down link drawn from a small set of
access classes (datacenter / fiber / cable / DSL / mobile), charges control
traffic (DHT RPCs, identify payloads) realistic byte counts, and serializes
Bitswap block transfers through per-peer FIFO transmit queues — so retrieval
latency decomposes into RTT + serialization (size / bandwidth) + queueing
delay.

Attach a :class:`BandwidthConfig` to ``PopulationConfig.bandwidth`` to
activate it; ``None`` (the default) keeps the zero-size fabric, draws nothing
from any RNG, and leaves every pre-existing fixed-seed golden byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: kilo/mega bytes per second, for readable class definitions
KB = 1_000.0
MB = 1_000_000.0


@dataclass(frozen=True)
class BandwidthClass:
    """One access class: a name, link rates in bytes/second, and its share."""

    name: str
    #: uplink rate (bytes/second) — the side that saturates first in practice
    up: float
    #: downlink rate (bytes/second)
    down: float
    #: share of the population drawn into this class (shares sum to 1)
    share: float


#: default access-class mix, loosely following consumer access-technology
#: surveys: a thin datacenter head, a broad cable/DSL middle, a mobile tail.
#: Uplinks are asymmetric (cable/DSL/mobile upload ≪ download), which is what
#: makes provider hotspots saturate.
DEFAULT_CLASSES: Tuple[BandwidthClass, ...] = (
    BandwidthClass("datacenter", up=125 * MB, down=125 * MB, share=0.08),
    BandwidthClass("fiber", up=12.5 * MB, down=37.5 * MB, share=0.22),
    BandwidthClass("cable", up=2.5 * MB, down=25 * MB, share=0.35),
    BandwidthClass("dsl", up=750 * KB, down=6.25 * MB, share=0.25),
    BandwidthClass("mobile", up=300 * KB, down=2.5 * MB, share=0.10),
)


@dataclass(frozen=True)
class BandwidthConfig:
    """Knobs of the data-plane model.

    ``uplink_scale`` / ``downlink_scale`` multiply every class's rates —
    the sweepable "tighten all uplinks" knob regime benchmarks turn.
    """

    classes: Tuple[BandwidthClass, ...] = DEFAULT_CLASSES
    uplink_scale: float = 1.0
    downlink_scale: float = 1.0

    #: control-plane payload sizes (bytes): one DHT RPC's request and reply
    #: (a FIND_NODE reply carries ~20 peers with multiaddrs), and one
    #: identify record (agent, protocols, listen addrs)
    rpc_request_bytes: int = 256
    rpc_response_bytes: int = 2048
    identify_bytes: int = 2500

    #: a retriever abandons a fetch whose RTT + queueing + serialization
    #: would exceed this many seconds (``None``: wait forever); this is what
    #: turns a saturated provider uplink into retrieval *failures*
    transfer_timeout: Optional[float] = 120.0

    #: offsets this subsystem's RNG stream from the base seed (netmodel uses
    #: 7000, faults use 8000)
    seed_salt: int = 9000

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("classes must not be empty")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"class names must be unique, got {names}")
        for cls in self.classes:
            if cls.up <= 0 or cls.down <= 0:
                raise ValueError(
                    f"class {cls.name!r} rates must be positive, got "
                    f"up={cls.up}/down={cls.down}"
                )
            if cls.share < 0:
                raise ValueError(
                    f"class {cls.name!r} share must be >= 0, got {cls.share}"
                )
        share_sum = sum(cls.share for cls in self.classes)
        if abs(share_sum - 1.0) > 1e-6:
            raise ValueError(f"class shares must sum to 1, got {share_sum}")
        for name in ("uplink_scale", "downlink_scale"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("rpc_request_bytes", "rpc_response_bytes", "identify_bytes"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.transfer_timeout is not None and self.transfer_timeout <= 0:
            raise ValueError(
                f"transfer_timeout must be positive or None, got {self.transfer_timeout}"
            )
