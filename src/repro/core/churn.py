"""Connection churn statistics (Table II, Section IV.A).

The paper reports, per measurement client and period, connection-duration
statistics in two flavours:

* **All** — every recorded connection contributes one duration value; the
  "Sum" column is the number of connections.
* **Peer** — each peer contributes the *average* duration of its connections,
  so every peer counts exactly once; "Sum" is the number of peers.

It additionally discusses the inbound/outbound split: inbound connections are
far more numerous and last longer, which is the evidence for connection
trimming (rather than node churn) being the dominant close reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.stats import median
from repro.core.records import MeasurementDataset


@dataclass(frozen=True)
class ConnectionStats:
    """One row of Table II."""

    kind: str                 # "all" | "peer"
    count: int                # number of connections (all) or peers (peer)
    average: float            # seconds
    median_value: float       # seconds

    def as_row(self) -> tuple:
        return (self.kind, self.count, self.average, self.median_value)


@dataclass(frozen=True)
class DirectionStats:
    """Statistics of one connection direction."""

    direction: str
    count: int
    average: float
    median_value: float
    total_duration: float


@dataclass(frozen=True)
class PeriodChurnReport:
    """Full churn analysis of one dataset (one client, one period)."""

    label: str
    all_stats: ConnectionStats
    peer_stats: ConnectionStats
    inbound: DirectionStats
    outbound: DirectionStats
    close_reasons: Dict[str, int]

    @property
    def inbound_outbound_count_ratio(self) -> float:
        if self.outbound.count == 0:
            return float("inf") if self.inbound.count else 0.0
        return self.inbound.count / self.outbound.count

    def rows(self) -> List[tuple]:
        return [self.all_stats.as_row(), self.peer_stats.as_row()]


def _direction_stats(durations: List[float], direction: str) -> DirectionStats:
    if not durations:
        return DirectionStats(direction, 0, 0.0, 0.0, 0.0)
    return DirectionStats(
        direction=direction,
        count=len(durations),
        average=sum(durations) / len(durations),
        median_value=median(durations),
        total_duration=sum(durations),
    )


def connection_statistics(dataset: MeasurementDataset) -> PeriodChurnReport:
    """Compute the Table II statistics for one dataset.

    Only peers with recorded connection information contribute (peers known
    solely from the peerstore are ignored), matching the paper's methodology.
    Connections still open at the end of the measurement were already closed at
    ``dataset.ended_at`` by the recorder, so they are included.

    Single pass over the connection list: durations, the per-direction
    buckets, and the close-reason histogram are collected together, so a
    sharded million-connection dataset is walked once instead of four times.
    The per-bucket lists preserve record order, which keeps every float
    reduction identical to the multi-pass version.
    """
    connections = dataset.connections
    durations: List[float] = []
    inbound_durations: List[float] = []
    outbound_durations: List[float] = []
    close_reasons: Dict[str, int] = {}
    for conn in connections:
        duration = conn.duration
        durations.append(duration)
        if conn.direction == "inbound":
            inbound_durations.append(duration)
        elif conn.direction == "outbound":
            outbound_durations.append(duration)
        reason = conn.close_reason or "unknown"
        close_reasons[reason] = close_reasons.get(reason, 0) + 1
    if durations:
        all_stats = ConnectionStats(
            kind="all",
            count=len(durations),
            average=sum(durations) / len(durations),
            median_value=median(durations),
        )
    else:
        all_stats = ConnectionStats(kind="all", count=0, average=0.0, median_value=0.0)

    per_peer = dataset.connections_by_peer()
    peer_averages = [
        sum(c.duration for c in conns) / len(conns) for conns in per_peer.values() if conns
    ]
    if peer_averages:
        peer_stats = ConnectionStats(
            kind="peer",
            count=len(peer_averages),
            average=sum(peer_averages) / len(peer_averages),
            median_value=median(peer_averages),
        )
    else:
        peer_stats = ConnectionStats(kind="peer", count=0, average=0.0, median_value=0.0)

    return PeriodChurnReport(
        label=dataset.label,
        all_stats=all_stats,
        peer_stats=peer_stats,
        inbound=_direction_stats(inbound_durations, "inbound"),
        outbound=_direction_stats(outbound_durations, "outbound"),
        close_reasons=close_reasons,
    )


def churn_reports(datasets: Dict[str, MeasurementDataset]) -> Dict[str, PeriodChurnReport]:
    """Compute churn reports for every dataset of a scenario."""
    return {label: connection_statistics(ds) for label, ds in datasets.items()}


def trim_share(report: PeriodChurnReport) -> float:
    """Fraction of closes attributable to trimming (local or remote).

    The paper argues that "more connections are closed due to connection
    trimming than due to nodes leaving the network"; this helper quantifies
    that claim for a report.
    """
    total = sum(report.close_reasons.values())
    if total == 0:
        return 0.0
    trimmed = report.close_reasons.get("local-trim", 0) + report.close_reasons.get("remote-trim", 0)
    return trimmed / total
