"""The measurement record schema.

The paper's modified clients periodically export JSON files with, per PID, the
agent version, supported protocols and multiaddresses (plus timestamped
changes), and per connection the direction, multiaddress, open time and
connectedness.  :class:`MeasurementDataset` is the in-memory form of that
export; every analysis function in :mod:`repro.core` consumes it.

The records deliberately use plain strings for peer IDs and multiaddresses so a
dataset round-trips through JSON and could equally be loaded from a real
go-ipfs measurement export with a thin adapter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.libp2p.protocols import KAD_DHT, supports_bitswap

#: sentinel agent value for peers whose identify never completed
MISSING_AGENT = None


@dataclass
class ConnectionRecord:
    """One observed connection of the measurement node."""

    peer: str
    direction: str              # "inbound" | "outbound"
    opened_at: float
    closed_at: float
    remote_addr: Optional[str] = None
    remote_ip: Optional[str] = None
    close_reason: Optional[str] = None
    connection_id: Optional[int] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.closed_at - self.opened_at)

    def as_dict(self) -> dict:
        return {
            "peer": self.peer,
            "direction": self.direction,
            "opened_at": self.opened_at,
            "closed_at": self.closed_at,
            "remote_addr": self.remote_addr,
            "remote_ip": self.remote_ip,
            "close_reason": self.close_reason,
            "connection_id": self.connection_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConnectionRecord":
        return cls(**data)


@dataclass
class MetaChangeRecord:
    """A timestamped change to a peer's announced meta data."""

    timestamp: float
    peer: str
    kind: str                   # "agent" | "protocols" | "addrs" | "first-seen"
    old_value: Optional[object] = None
    new_value: Optional[object] = None

    def as_dict(self) -> dict:
        return {
            "timestamp": self.timestamp,
            "peer": self.peer,
            "kind": self.kind,
            "old_value": _jsonable(self.old_value),
            "new_value": _jsonable(self.new_value),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetaChangeRecord":
        return cls(
            timestamp=data["timestamp"],
            peer=data["peer"],
            kind=data["kind"],
            old_value=data.get("old_value"),
            new_value=data.get("new_value"),
        )


@dataclass
class PeerRecord:
    """Everything the measurement node learned about one PID."""

    peer: str
    first_seen: float
    last_seen: float
    agent_version: Optional[str] = MISSING_AGENT
    protocols: Set[str] = field(default_factory=set)
    addrs: List[str] = field(default_factory=list)
    observed_ip: Optional[str] = None
    #: whether the peer announced /ipfs/kad/1.0.0 at any point
    ever_dht_server: bool = False

    def is_dht_server(self) -> bool:
        """Role as determined from exchanged protocol information."""
        return self.ever_dht_server or KAD_DHT in self.protocols

    def has_bitswap(self) -> bool:
        return supports_bitswap(self.protocols)

    def role_known(self) -> bool:
        """True when we received protocol information for this peer at all."""
        return bool(self.protocols)

    def as_dict(self) -> dict:
        return {
            "peer": self.peer,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "agent_version": self.agent_version,
            "protocols": sorted(self.protocols),
            "addrs": list(self.addrs),
            "observed_ip": self.observed_ip,
            "ever_dht_server": self.ever_dht_server,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PeerRecord":
        return cls(
            peer=data["peer"],
            first_seen=data["first_seen"],
            last_seen=data["last_seen"],
            agent_version=data.get("agent_version"),
            protocols=set(data.get("protocols", ())),
            addrs=list(data.get("addrs", ())),
            observed_ip=data.get("observed_ip"),
            ever_dht_server=data.get("ever_dht_server", False),
        )


@dataclass
class SnapshotRecord:
    """One periodic poll of the measurement node's state."""

    timestamp: float
    simultaneous_connections: int
    known_pids: int
    connected_pids: int

    def as_dict(self) -> dict:
        return {
            "timestamp": self.timestamp,
            "simultaneous_connections": self.simultaneous_connections,
            "known_pids": self.known_pids,
            "connected_pids": self.connected_pids,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SnapshotRecord":
        return cls(**data)


@dataclass
class MeasurementDataset:
    """The full export of one measurement client over one period."""

    label: str                               # e.g. "go-ipfs", "hydra-H0"
    started_at: float
    ended_at: float
    measurement_role: str = "server"         # role of the *measurement node*
    peers: Dict[str, PeerRecord] = field(default_factory=dict)
    connections: List[ConnectionRecord] = field(default_factory=list)
    changes: List[MetaChangeRecord] = field(default_factory=list)
    snapshots: List[SnapshotRecord] = field(default_factory=list)

    # -- basic accessors -----------------------------------------------------------

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at

    def pids(self) -> List[str]:
        return list(self.peers.keys())

    def pid_count(self) -> int:
        return len(self.peers)

    def connection_count(self) -> int:
        return len(self.connections)

    def peers_with_connections(self) -> List[str]:
        """PIDs for which at least one connection was recorded.

        The paper's connection statistics "consider only peers with recorded
        connection information"; peers that only ever appeared in the peerstore
        (e.g. learned via the DHT but never connected) are excluded.
        """
        seen: Set[str] = set()
        for conn in self.connections:
            seen.add(conn.peer)
        return [pid for pid in self.peers if pid in seen] + [
            pid for pid in seen if pid not in self.peers
        ]

    def connections_by_peer(self) -> Dict[str, List[ConnectionRecord]]:
        grouped: Dict[str, List[ConnectionRecord]] = {}
        for conn in self.connections:
            grouped.setdefault(conn.peer, []).append(conn)
        return grouped

    def dht_server_pids(self) -> List[str]:
        """Peers identified as DHT-Servers from exchanged protocol information."""
        return [pid for pid, record in self.peers.items() if record.is_dht_server()]

    def dht_client_pids(self) -> List[str]:
        """Peers whose protocols are known and do not include the kad protocol."""
        return [
            pid
            for pid, record in self.peers.items()
            if record.role_known() and not record.is_dht_server()
        ]

    def changes_of_kind(self, kind: str) -> List[MetaChangeRecord]:
        return [c for c in self.changes if c.kind == kind]

    def merge_peer(self, record: PeerRecord) -> None:
        """Merge a peer record (union of knowledge) into the dataset."""
        existing = self.peers.get(record.peer)
        if existing is None:
            self.peers[record.peer] = record
            return
        existing.first_seen = min(existing.first_seen, record.first_seen)
        existing.last_seen = max(existing.last_seen, record.last_seen)
        if record.agent_version is not None:
            existing.agent_version = record.agent_version
        existing.protocols |= record.protocols
        for addr in record.addrs:
            if addr not in existing.addrs:
                existing.addrs.append(addr)
        if record.observed_ip is not None:
            existing.observed_ip = record.observed_ip
        existing.ever_dht_server = existing.ever_dht_server or record.ever_dht_server

    # -- serialisation ----------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "measurement_role": self.measurement_role,
            "peers": {pid: record.as_dict() for pid, record in self.peers.items()},
            "connections": [c.as_dict() for c in self.connections],
            "changes": [c.as_dict() for c in self.changes],
            "snapshots": [s.as_dict() for s in self.snapshots],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "MeasurementDataset":
        dataset = cls(
            label=data["label"],
            started_at=data["started_at"],
            ended_at=data["ended_at"],
            measurement_role=data.get("measurement_role", "server"),
        )
        dataset.peers = {
            pid: PeerRecord.from_dict(rec) for pid, rec in data.get("peers", {}).items()
        }
        dataset.connections = [
            ConnectionRecord.from_dict(c) for c in data.get("connections", ())
        ]
        dataset.changes = [MetaChangeRecord.from_dict(c) for c in data.get("changes", ())]
        dataset.snapshots = [SnapshotRecord.from_dict(s) for s in data.get("snapshots", ())]
        return dataset

    @classmethod
    def from_json(cls, text: str) -> "MeasurementDataset":
        return cls.from_dict(json.loads(text))

    # -- dataset combination ---------------------------------------------------------------

    @classmethod
    def union(cls, datasets: Sequence["MeasurementDataset"], label: str) -> "MeasurementDataset":
        """Union several datasets (e.g. all hydra heads) into one view.

        Fig. 2 reports "the union of all heads" for the hydra; connection and
        change lists are concatenated, peer records merged.
        """
        if not datasets:
            raise ValueError("union of zero datasets")
        merged = cls(
            label=label,
            started_at=min(d.started_at for d in datasets),
            ended_at=max(d.ended_at for d in datasets),
            measurement_role=datasets[0].measurement_role,
        )
        for dataset in datasets:
            for record in dataset.peers.values():
                merged.merge_peer(
                    PeerRecord.from_dict(record.as_dict())
                )
            merged.connections.extend(dataset.connections)
            merged.changes.extend(dataset.changes)
            merged.snapshots.extend(dataset.snapshots)
        merged.connections.sort(key=lambda c: c.opened_at)
        merged.changes.sort(key=lambda c: c.timestamp)
        merged.snapshots.sort(key=lambda s: s.timestamp)
        return merged


def _jsonable(value: object) -> object:
    """Convert frozensets/tuples from the peerstore change log into JSON lists."""
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(str(v) for v in value)
    return value
