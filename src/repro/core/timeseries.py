"""Time-series views of a measurement (Fig. 5 and Fig. 6).

Fig. 5 plots the number of simultaneous peer connections over the first 24 h
of each period — the sawtooth of the node's own connection trimming in the
low-watermark periods, the ~15k–16k plateau in P2, and the tiny counts of the
DHT-Client vantage point in P3.

Fig. 6 plots, over a ~14 day measurement, the total number of PIDs ever seen
and the number of PIDs that have been disconnected for more than three days
and never returned — the gap between the two is the paper's argument that PIDs
overcount peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.records import MeasurementDataset

DAY = 86_400.0

Series = List[Tuple[float, float]]


def connections_over_time(
    dataset: MeasurementDataset,
    limit: Optional[float] = DAY,
    relative_time: bool = True,
) -> Series:
    """Simultaneous connections per snapshot, optionally limited to the first day.

    Fig. 5 shows "only the connections of the first 24 h" for comparability;
    pass ``limit=None`` for the full period.
    """
    series: Series = []
    for snapshot in dataset.snapshots:
        t = snapshot.timestamp - dataset.started_at
        if limit is not None and t > limit:
            break
        x = t if relative_time else snapshot.timestamp
        series.append((x, float(snapshot.simultaneous_connections)))
    return series


def connected_peers_over_time(
    dataset: MeasurementDataset,
    limit: Optional[float] = DAY,
    relative_time: bool = True,
) -> Series:
    """Simultaneously connected PIDs per snapshot (Fig. 5's y axis says "Peers")."""
    series: Series = []
    for snapshot in dataset.snapshots:
        t = snapshot.timestamp - dataset.started_at
        if limit is not None and t > limit:
            break
        x = t if relative_time else snapshot.timestamp
        series.append((x, float(snapshot.connected_pids)))
    return series


def pids_over_time(dataset: MeasurementDataset, step: float = 3_600.0) -> Series:
    """Cumulative number of distinct PIDs seen up to each time step (Fig. 6 'all')."""
    if step <= 0:
        raise ValueError("step must be positive")
    first_seen = sorted(record.first_seen for record in dataset.peers.values())
    series: Series = []
    t = dataset.started_at
    idx = 0
    while t <= dataset.ended_at + 1e-9:
        while idx < len(first_seen) and first_seen[idx] <= t:
            idx += 1
        series.append((t - dataset.started_at, float(idx)))
        t += step
    return series


def gone_pids_over_time(
    dataset: MeasurementDataset,
    gone_threshold: float = 3 * DAY,
    step: float = 3_600.0,
) -> Series:
    """PIDs disconnected for more than ``gone_threshold`` and never seen again.

    This is the second series of Fig. 6: for each point in time ``t``, the
    number of PIDs whose *final* disappearance happened more than three days
    before ``t``.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    last_seen = sorted(record.last_seen for record in dataset.peers.values())
    series: Series = []
    t = dataset.started_at
    idx = 0
    while t <= dataset.ended_at + 1e-9:
        cutoff = t - gone_threshold
        while idx < len(last_seen) and last_seen[idx] <= cutoff:
            idx += 1
        series.append((t - dataset.started_at, float(idx)))
        t += step
    return series


@dataclass(frozen=True)
class TimeSeriesSummary:
    """Headline numbers of the Fig. 5 / Fig. 6 views for one dataset."""

    label: str
    peak_simultaneous_connections: int
    final_simultaneous_connections: int
    total_pids: int
    gone_pids: int
    plateau_connected_pids: int

    @property
    def pids_per_simultaneous_connection(self) -> float:
        """The paper's "every peer has around two PIDs" indicator."""
        if self.peak_simultaneous_connections == 0:
            return 0.0
        return self.total_pids / self.peak_simultaneous_connections


def summarize_timeseries(
    dataset: MeasurementDataset, gone_threshold: float = 3 * DAY
) -> TimeSeriesSummary:
    """Compute the summary indicators used by the Fig. 5 / Fig. 6 benchmarks."""
    connections = [s.simultaneous_connections for s in dataset.snapshots]
    connected = [s.connected_pids for s in dataset.snapshots]
    gone = gone_pids_over_time(
        dataset,
        gone_threshold=gone_threshold,
        step=max(3600.0, dataset.duration / 50 or 3600.0),
    )
    return TimeSeriesSummary(
        label=dataset.label,
        peak_simultaneous_connections=max(connections) if connections else 0,
        final_simultaneous_connections=connections[-1] if connections else 0,
        total_pids=dataset.pid_count(),
        gone_pids=int(gone[-1][1]) if gone else 0,
        plateau_connected_pids=int(sorted(connected)[len(connected) // 2]) if connected else 0,
    )
