"""Measurement-horizon comparison (Section III.C, Fig. 2).

Fig. 2 compares, per measurement period, the number of PIDs observed by the
passive vantage points (total, and the subset identified as DHT-Servers) with
the min/max node counts reported by the active crawler.  The key qualitative
findings the figure supports:

* a passive node also sees DHT-Clients, which a crawler structurally cannot;
* over multi-day periods, the passive node's *historic* peerstore accumulates
  more DHT-Servers than any single crawl snapshot contains;
* a hydra with more heads sees more of the network than a single-identity
  go-ipfs node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.records import MeasurementDataset
from repro.crawler.monitor import CrawlRange


@dataclass(frozen=True)
class HorizonEntry:
    """One bar of Fig. 2: a vantage point's observed PID counts."""

    label: str
    total_pids: int
    dht_server_pids: int
    dht_client_pids: int
    role_unknown_pids: int

    @property
    def client_share(self) -> float:
        return self.dht_client_pids / self.total_pids if self.total_pids else 0.0


@dataclass
class HorizonComparison:
    """Passive horizons side by side with the crawler's min/max range."""

    entries: List[HorizonEntry] = field(default_factory=list)
    crawler: Optional[CrawlRange] = None

    def entry(self, label: str) -> HorizonEntry:
        for entry in self.entries:
            if entry.label == label:
                return entry
        raise KeyError(label)

    def passive_sees_clients(self) -> bool:
        """True when at least one passive vantage point observed DHT-Clients."""
        return any(e.dht_client_pids > 0 for e in self.entries)

    def passive_servers_exceed_crawler_min(self, label: str) -> Optional[bool]:
        """Does the passive node's historic DHT-Server count beat a single crawl?"""
        if self.crawler is None or self.crawler.crawls == 0:
            return None
        return self.entry(label).dht_server_pids > self.crawler.min_discovered


def horizon_entry(dataset: MeasurementDataset) -> HorizonEntry:
    """Summarise one dataset into a Fig. 2 bar."""
    total = dataset.pid_count()
    servers = len(dataset.dht_server_pids())
    clients = len(dataset.dht_client_pids())
    return HorizonEntry(
        label=dataset.label,
        total_pids=total,
        dht_server_pids=servers,
        dht_client_pids=clients,
        role_unknown_pids=max(0, total - servers - clients),
    )


def compare_horizons(
    datasets: Dict[str, MeasurementDataset],
    crawler_range: Optional[CrawlRange] = None,
    labels: Optional[List[str]] = None,
) -> HorizonComparison:
    """Build the Fig. 2 comparison for the given datasets.

    ``labels`` selects and orders the vantage points; by default every dataset
    is included in sorted label order.
    """
    selected = labels if labels is not None else sorted(datasets)
    comparison = HorizonComparison(crawler=crawler_range)
    for label in selected:
        comparison.entries.append(horizon_entry(datasets[label]))
    return comparison
