"""The paper's contribution: passive measurement and its offline analysis.

``repro.core`` contains two kinds of code:

* **Recording** (:mod:`repro.core.measurement`): the passive measurement hooks
  that observe a node's swarm and peerstore and produce a
  :class:`~repro.core.records.MeasurementDataset` — the JSON-exportable record
  structure the paper's modified go-ipfs / hydra-booster clients write.
* **Analysis** (everything else): pure functions over datasets that reproduce
  the paper's tables and figures — connection churn statistics (Table II),
  meta-data analysis (Fig. 3/4, Table III), horizon comparison (Fig. 2),
  time series (Fig. 5/6), and the two network-size estimators (Section V,
  Fig. 7, Table IV).
"""

from repro.core.records import (
    ConnectionRecord,
    MeasurementDataset,
    MetaChangeRecord,
    PeerRecord,
    SnapshotRecord,
)
from repro.core.measurement import MeasurementRecorder, PassiveMeasurement
from repro.core.churn import ConnectionStats, PeriodChurnReport, connection_statistics
from repro.core.metadata import (
    AgentBreakdown,
    MetadataReport,
    ProtocolBreakdown,
    VersionChangeReport,
    analyze_metadata,
)
from repro.core.horizon import HorizonComparison, compare_horizons
from repro.core.timeseries import connections_over_time, pids_over_time
from repro.core.classification import ClassificationThresholds, PeerClassLabel, classify_peer
from repro.core.netsize import (
    ClassificationEstimate,
    MultiaddrEstimate,
    NetworkSizeReport,
    classify_peers,
    estimate_by_multiaddress,
    estimate_network_size,
)

__all__ = [
    "ConnectionRecord",
    "PeerRecord",
    "MetaChangeRecord",
    "SnapshotRecord",
    "MeasurementDataset",
    "MeasurementRecorder",
    "PassiveMeasurement",
    "ConnectionStats",
    "PeriodChurnReport",
    "connection_statistics",
    "AgentBreakdown",
    "ProtocolBreakdown",
    "VersionChangeReport",
    "MetadataReport",
    "analyze_metadata",
    "HorizonComparison",
    "compare_horizons",
    "connections_over_time",
    "pids_over_time",
    "ClassificationThresholds",
    "PeerClassLabel",
    "classify_peer",
    "MultiaddrEstimate",
    "ClassificationEstimate",
    "NetworkSizeReport",
    "classify_peers",
    "estimate_by_multiaddress",
    "estimate_network_size",
]
