"""Passive measurement recording.

The paper instruments its clients minimally: a listener on connection events
plus a periodic task that dumps the peerstore.  :class:`MeasurementRecorder`
implements exactly that against the :class:`~repro.ipfs.swarm.Swarm` /
:class:`~repro.ipfs.peerstore.Peerstore` interfaces (go-ipfs node and hydra
head expose the same surface), and :class:`PassiveMeasurement` wires a recorder
to a node plus a polling schedule and produces the final
:class:`~repro.core.records.MeasurementDataset`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.core.records import (
    ConnectionRecord,
    MeasurementDataset,
    MetaChangeRecord,
    PeerRecord,
    SnapshotRecord,
)
from repro.ipfs.peerstore import Peerstore
from repro.ipfs.swarm import Swarm
from repro.libp2p.connection import CloseReason, Connection
from repro.libp2p.protocols import KAD_DHT


class MeasuredNode(Protocol):
    """The node surface the recorder needs (IpfsNode and HydraHead provide it)."""

    swarm: Swarm
    peerstore: Peerstore


class MeasurementRecorder:
    """Collects connection events and periodic peerstore snapshots."""

    def __init__(self, label: str, measurement_role: str = "server") -> None:
        self.label = label
        self.measurement_role = measurement_role
        self.started_at: Optional[float] = None
        self._open: Dict[int, Connection] = {}
        self._closed: List[ConnectionRecord] = []
        self._snapshots: List[SnapshotRecord] = []

    # -- SwarmListener interface ---------------------------------------------------

    def on_connected(self, conn: Connection, now: float) -> None:
        if self.started_at is None:
            self.started_at = now
        self._open[conn.connection_id] = conn

    def on_disconnected(self, conn: Connection, now: float) -> None:
        self._open.pop(conn.connection_id, None)
        self._closed.append(self._to_record(conn, closed_at=now))

    # -- periodic polling ------------------------------------------------------------

    def poll(self, now: float, node: MeasuredNode) -> SnapshotRecord:
        """Record one periodic snapshot (every 30 s for go-ipfs, 1 min for hydra)."""
        snapshot = SnapshotRecord(
            timestamp=now,
            simultaneous_connections=node.swarm.connection_count(),
            known_pids=len(node.peerstore),
            connected_pids=node.swarm.connected_peer_count(),
        )
        self._snapshots.append(snapshot)
        return snapshot

    # -- finalisation ------------------------------------------------------------------

    def finalize(self, now: float, node: MeasuredNode) -> MeasurementDataset:
        """Produce the dataset; still-open connections count as closed at ``now``."""
        started = self.started_at if self.started_at is not None else now
        dataset = MeasurementDataset(
            label=self.label,
            started_at=started,
            ended_at=now,
            measurement_role=self.measurement_role,
        )
        dataset.connections = list(self._closed)
        for conn in self._open.values():
            dataset.connections.append(self._to_record(conn, closed_at=now, still_open=True))
        dataset.connections.sort(key=lambda c: c.opened_at)
        dataset.snapshots = list(self._snapshots)

        # The peerstore tracks server announcements as they happen, so later
        # retractions (role flips) do not erase the fact the peer once was a
        # server.
        ever_servers = node.peerstore.ever_dht_servers()
        for entry in node.peerstore.entries():
            dataset.peers[str(entry.peer)] = PeerRecord(
                peer=str(entry.peer),
                first_seen=entry.first_seen,
                last_seen=entry.last_seen,
                agent_version=entry.agent_version,
                protocols=set(entry.protocols),
                addrs=[str(a) for a in entry.addrs],
                observed_ip=entry.observed_addr.ip() if entry.observed_addr else None,
                ever_dht_server=entry.peer in ever_servers or KAD_DHT in entry.protocols,
            )

        for change in node.peerstore.changes():
            dataset.changes.append(
                MetaChangeRecord(
                    timestamp=change.timestamp,
                    peer=str(change.peer),
                    kind=change.kind.value,
                    old_value=_render(change.old_value),
                    new_value=_render(change.new_value),
                )
            )
        dataset.changes.sort(key=lambda c: c.timestamp)
        return dataset

    # -- helpers ---------------------------------------------------------------------------

    @staticmethod
    def _to_record(
        conn: Connection, closed_at: float, still_open: bool = False
    ) -> ConnectionRecord:
        reason = conn.close_reason.value if conn.close_reason else None
        if still_open:
            reason = CloseReason.STILL_OPEN.value
        return ConnectionRecord(
            peer=str(conn.remote_peer),
            direction=conn.direction.value,
            opened_at=conn.opened_at,
            closed_at=closed_at,
            remote_addr=str(conn.remote_addr),
            remote_ip=conn.remote_addr.ip(),
            close_reason=reason,
            connection_id=conn.connection_id,
        )


class PassiveMeasurement:
    """Binds a recorder to a node: subscribe, poll, finalise.

    The polling schedule itself is owned by the scenario (a
    :class:`~repro.simulation.engine.PeriodicTask` calling :meth:`poll`), so
    this class stays usable without the simulation engine — e.g. in unit tests
    that drive the node directly.
    """

    def __init__(
        self,
        node: MeasuredNode,
        label: str,
        measurement_role: str = "server",
        poll_interval: float = 30.0,
    ) -> None:
        self.node = node
        self.poll_interval = poll_interval
        self.recorder = MeasurementRecorder(label, measurement_role)
        node.swarm.add_listener(self.recorder)

    def poll(self, now: float) -> SnapshotRecord:
        return self.recorder.poll(now, self.node)

    def finalize(self, now: float) -> MeasurementDataset:
        return self.recorder.finalize(now, self.node)


def _render(value: object) -> object:
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(str(v) for v in value)
    return value
