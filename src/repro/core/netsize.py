"""Network-size estimation (Section V, Fig. 7, Table IV).

The paper explores two estimators on top of the passive measurement data:

* **Multiaddress grouping** (Section V.A): PIDs that connected from the same
  IP address are grouped into one "participant".  This collapses PID-rotating
  peers and hydra heads but is confounded by NAT, shared cloud IPs, and
  one-time users.
* **Connection-behaviour classification** (Section V.B, Table IV): peers are
  classified as heavy / normal / light / one-time from their maximum
  connection duration and connection count; heavy peers form the core network
  (the paper: "at least 10k nodes").

Fig. 7's CDFs (maximum connection duration per PID, number of connections per
PID, split by DHT role) are also produced here because the classification is a
direct coarse-graining of those distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cdf import EmpiricalCDF
from repro.core.classification import (
    ClassificationThresholds,
    PeerClassLabel,
    classify_peer,
)
from repro.core.records import MeasurementDataset


# ------------------------------------------------------------ per-peer observables


@dataclass(frozen=True)
class PeerConnectionSummary:
    """The two observables of Section V.B for one PID."""

    peer: str
    connection_count: int
    max_duration: float
    total_duration: float
    is_dht_server: bool
    role_known: bool


def peer_connection_summaries(dataset: MeasurementDataset) -> Dict[str, PeerConnectionSummary]:
    """Summarise every PID with recorded connections."""
    summaries: Dict[str, PeerConnectionSummary] = {}
    for peer, connections in dataset.connections_by_peer().items():
        durations = [c.duration for c in connections]
        record = dataset.peers.get(peer)
        is_server = record.is_dht_server() if record else False
        role_known = record.role_known() if record else False
        summaries[peer] = PeerConnectionSummary(
            peer=peer,
            connection_count=len(connections),
            max_duration=max(durations) if durations else 0.0,
            total_duration=sum(durations),
            is_dht_server=is_server,
            role_known=role_known,
        )
    return summaries


# ------------------------------------------------------------------- Fig. 7 CDFs


@dataclass
class ConnectionCDFs:
    """The Fig. 7 CDFs for one peer subset ("all", "DHT-Server", "DHT-Client")."""

    subset: str
    max_duration: EmpiricalCDF
    connection_count: EmpiricalCDF

    def fraction_connected_less_than(self, seconds: float) -> float:
        return self.max_duration.fraction_at(seconds)

    def fraction_connected_more_than(self, seconds: float) -> float:
        return self.max_duration.fraction_above(seconds)

    def fraction_with_at_most_connections(self, count: int) -> float:
        return self.connection_count.fraction_at(count)


def connection_cdfs(
    dataset: MeasurementDataset,
    bin_width: float = 30.0,
) -> Dict[str, ConnectionCDFs]:
    """Build the Fig. 7 CDFs for "all", "dht-server", and "dht-client" subsets.

    Durations are grouped into ``bin_width`` (30 s) intervals like the paper's
    presentation; grouping only affects plotting granularity, not fractions at
    the anchor points used in the analysis.
    """
    summaries = peer_connection_summaries(dataset)

    def build(subset: str, selected: List[PeerConnectionSummary]) -> ConnectionCDFs:
        durations = [
            round(s.max_duration / bin_width) * bin_width if bin_width > 0 else s.max_duration
            for s in selected
        ]
        counts = [float(s.connection_count) for s in selected]
        return ConnectionCDFs(
            subset=subset,
            max_duration=EmpiricalCDF(durations),
            connection_count=EmpiricalCDF(counts),
        )

    all_peers = list(summaries.values())
    servers = [s for s in all_peers if s.role_known and s.is_dht_server]
    clients = [s for s in all_peers if s.role_known and not s.is_dht_server]
    return {
        "all": build("all", all_peers),
        "dht-server": build("dht-server", servers),
        "dht-client": build("dht-client", clients),
    }


# ------------------------------------------- neighbourhood-density estimator


@dataclass(frozen=True)
class DensityEstimate:
    """Network size inferred from keyspace density around a target key.

    Kademlia keys are uniform, so the ordered distances ``d_1 < … < d_k`` of
    the ``k`` closest observed peers to any target satisfy
    ``E[d_i / 2^256] = i / (N + 1)``; regressing the observed distances on
    their ranks (through the origin) recovers ``N``.  This is the estimator
    family live DHT crawlers and hydra deployments use — and the one a Sybil
    flood mined into the target's neighbourhood inflates without bound,
    because packed mined IDs make the whole keyspace look that dense.
    """

    k: int
    sample_size: int
    estimate: float

    def inflation_over(self, ground_truth: int) -> float:
        if ground_truth <= 0:
            return 0.0
        return self.estimate / ground_truth


def estimate_by_neighborhood_density(
    keys: Sequence[int], target: int, k: int = 20
) -> DensityEstimate:
    """Estimate the network size from the ``k`` observed keys closest to
    ``target`` (``keys``: Kademlia keys of every observed PID)."""
    from repro.kademlia.keys import KEY_BITS, xor_distance

    span = float(1 << KEY_BITS)
    distances = sorted(xor_distance(key, target) for key in keys)[:k]
    if not distances:
        return DensityEstimate(k=k, sample_size=0, estimate=0.0)
    # Least-squares fit of d_i = i / (N + 1) through the origin:
    # N + 1 = sum(i^2) / sum(i * d_i).
    numerator = sum((i + 1) ** 2 for i in range(len(distances)))
    denominator = sum((i + 1) * (d / span) for i, d in enumerate(distances))
    if denominator <= 0.0:
        return DensityEstimate(k=k, sample_size=len(distances), estimate=float("inf"))
    return DensityEstimate(
        k=k,
        sample_size=len(distances),
        estimate=numerator / denominator - 1.0,
    )


# --------------------------------------------------- multiaddress estimator (V.A)


@dataclass
class MultiaddrEstimate:
    """Result of grouping PIDs by the IP they connected from."""

    connected_pids: int
    distinct_ips: int
    groups: int
    singleton_groups: int
    pids_with_unique_ip: int
    largest_group_size: int
    largest_group_ip: Optional[str] = None
    group_sizes: Dict[str, int] = field(default_factory=dict)

    @property
    def estimated_participants(self) -> int:
        """The network-size estimate this method yields (number of IP groups)."""
        return self.groups


def estimate_by_multiaddress(dataset: MeasurementDataset) -> MultiaddrEstimate:
    """Group connected PIDs by source IP address (Section V.A).

    Each PID is assigned to exactly one group — the IP address it connected
    from most often (ties broken by the most recent connection) — so the groups
    partition the connected PIDs and the group count is a network-size
    estimate.  PIDs whose connections carry no resolvable IP are counted as
    connected but belong to no group.
    """
    ip_counts: Dict[str, Dict[str, int]] = {}
    last_ip: Dict[str, str] = {}
    connected_pids: Set[str] = set()
    observed_ips: Set[str] = set()
    for conn in dataset.connections:
        connected_pids.add(conn.peer)
        ip = conn.remote_ip
        if ip is None and conn.remote_addr:
            ip = conn.remote_addr.split("/")[2] if conn.remote_addr.count("/") >= 2 else None
        if ip is None:
            continue
        observed_ips.add(ip)
        per_peer = ip_counts.setdefault(conn.peer, {})
        per_peer[ip] = per_peer.get(ip, 0) + 1
        last_ip[conn.peer] = ip

    pids_by_ip: Dict[str, Set[str]] = {}
    for peer, counts in ip_counts.items():
        best = max(counts, key=lambda ip: (counts[ip], ip == last_ip.get(peer)))
        pids_by_ip.setdefault(best, set()).add(peer)

    group_sizes = {ip: len(pids) for ip, pids in pids_by_ip.items()}
    singleton = sum(1 for size in group_sizes.values() if size == 1)
    largest_ip = max(group_sizes, key=group_sizes.get) if group_sizes else None
    return MultiaddrEstimate(
        connected_pids=len(connected_pids),
        distinct_ips=len(observed_ips),
        groups=len(group_sizes),
        singleton_groups=singleton,
        pids_with_unique_ip=singleton,
        largest_group_size=group_sizes.get(largest_ip, 0) if largest_ip else 0,
        largest_group_ip=largest_ip,
        group_sizes=group_sizes,
    )


# ---------------------------------------------- classification estimator (V.B)


@dataclass
class ClassCount:
    """One row of Table IV."""

    label: PeerClassLabel
    peers: int
    dht_servers: int

    @property
    def dht_clients(self) -> int:
        return self.peers - self.dht_servers


@dataclass
class ClassificationEstimate:
    """Result of the connection-behaviour classification (Table IV)."""

    thresholds: ClassificationThresholds
    counts: Dict[PeerClassLabel, ClassCount]
    classified_peers: int

    def count(self, label: PeerClassLabel) -> ClassCount:
        return self.counts[label]

    @property
    def core_size(self) -> int:
        """Heavy peers: the paper's lower bound for the core network."""
        return self.counts[PeerClassLabel.HEAVY].peers

    @property
    def core_user_base(self) -> int:
        """Heavy DHT-Clients ("the core user base" in the paper's wording)."""
        heavy = self.counts[PeerClassLabel.HEAVY]
        return heavy.peers - heavy.dht_servers

    def rows(self) -> List[Tuple[str, int, int]]:
        ordered = [
            PeerClassLabel.HEAVY,
            PeerClassLabel.NORMAL,
            PeerClassLabel.LIGHT,
            PeerClassLabel.ONE_TIME,
        ]
        return [
            (label.value, self.counts[label].peers, self.counts[label].dht_servers)
            for label in ordered
        ]


def classify_peers(
    dataset: MeasurementDataset,
    thresholds: ClassificationThresholds = ClassificationThresholds(),
) -> ClassificationEstimate:
    """Classify every PID with recorded connections (Table IV)."""
    summaries = peer_connection_summaries(dataset)
    counts: Dict[PeerClassLabel, ClassCount] = {
        label: ClassCount(label=label, peers=0, dht_servers=0) for label in PeerClassLabel
    }
    for summary in summaries.values():
        label = classify_peer(summary.max_duration, summary.connection_count, thresholds)
        bucket = counts[label]
        bucket.peers += 1
        if summary.is_dht_server:
            bucket.dht_servers += 1
    return ClassificationEstimate(
        thresholds=thresholds, counts=counts, classified_peers=len(summaries)
    )


# ------------------------------------------------------------------ combined report


@dataclass
class NetworkSizeReport:
    """Both estimators side by side, plus the headline quantities."""

    label: str
    total_pids: int
    multiaddr: MultiaddrEstimate
    classification: ClassificationEstimate
    peak_simultaneous_connections: int

    @property
    def pids_per_simultaneous_connection(self) -> float:
        if self.peak_simultaneous_connections == 0:
            return 0.0
        return self.total_pids / self.peak_simultaneous_connections

    @property
    def estimated_network_size(self) -> int:
        """The paper's headline "roughly 48k peers" figure (IP groups)."""
        return self.multiaddr.estimated_participants

    @property
    def core_network_size(self) -> int:
        """The paper's "core network of at least ~10k nodes" (heavy peers)."""
        return self.classification.core_size


def estimate_network_size(
    dataset: MeasurementDataset,
    thresholds: ClassificationThresholds = ClassificationThresholds(),
) -> NetworkSizeReport:
    """Run both Section V estimators on one dataset."""
    peak = max((s.simultaneous_connections for s in dataset.snapshots), default=0)
    return NetworkSizeReport(
        label=dataset.label,
        total_pids=dataset.pid_count(),
        multiaddr=estimate_by_multiaddress(dataset),
        classification=classify_peers(dataset, thresholds),
        peak_simultaneous_connections=peak,
    )
