"""Peer classification by connection behaviour (Table IV).

The paper defines four classes from two observables per PID — the maximum
connection duration and the number of connections with the measurement node:

* **heavy**:   maximum connection duration > 24 h,
* **normal**:  maximum connection duration > 2 h (but not heavy),
* **light**:   short connections (≤ 2 h) but at least 3 of them,
* **one-time**: short connections (< 2 h) and fewer than 3 of them.

Heavy and normal peers make up the stable "core" of the network; light
captures recurring/experimental/faulty/malicious peers; one-time peers appear
briefly and never return.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

HOUR = 3_600.0


class PeerClassLabel(enum.Enum):
    """The four connection-behaviour classes of Table IV."""

    HEAVY = "heavy"
    NORMAL = "normal"
    LIGHT = "light"
    ONE_TIME = "one-time"


@dataclass(frozen=True)
class ClassificationThresholds:
    """The cut-offs of the classification (defaults: the paper's Table IV)."""

    heavy_duration: float = 24 * HOUR
    normal_duration: float = 2 * HOUR
    light_min_connections: int = 3

    def __post_init__(self) -> None:
        if self.heavy_duration <= self.normal_duration:
            raise ValueError("heavy threshold must exceed the normal threshold")
        if self.light_min_connections < 1:
            raise ValueError("light_min_connections must be at least 1")


def classify_peer(
    max_duration: float,
    connection_count: int,
    thresholds: ClassificationThresholds = ClassificationThresholds(),
) -> PeerClassLabel:
    """Classify one peer from its maximum connection duration and connection count."""
    if max_duration > thresholds.heavy_duration:
        return PeerClassLabel.HEAVY
    if max_duration > thresholds.normal_duration:
        return PeerClassLabel.NORMAL
    if connection_count >= thresholds.light_min_connections:
        return PeerClassLabel.LIGHT
    return PeerClassLabel.ONE_TIME
