"""Meta-data analysis (Section IV.B: Fig. 3, Fig. 4, Table III, role flips).

Everything here is computed from a :class:`~repro.core.records.MeasurementDataset`:
agent and protocol occurrence histograms, the agent composition counts
(go-ipfs / hydra / crawler / other / missing), version-change classification
(upgrade / downgrade / change and the main/dirty transition matrix), protocol
flapping (DHT role flips, autonat flips), and the anomaly checks the paper
highlights (go-ipfs agents without Bitswap, storm nodes announcing /sbptp/).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.records import MeasurementDataset
from repro.libp2p.agent import (
    goipfs_release_group,
    is_crawler_agent,
    is_goipfs_agent,
    is_hydra_agent,
    parse_goipfs_agent,
)
from repro.libp2p.protocols import AUTONAT, KAD_DHT, SBPTP, supports_bitswap


# ------------------------------------------------------------------ agents (Fig. 3)


@dataclass
class AgentBreakdown:
    """Occurrence counts of agent strings and the composition totals."""

    histogram: Dict[str, int] = field(default_factory=dict)       # full agent string -> peers
    grouped: Dict[str, int] = field(default_factory=dict)         # go-ipfs grouped by release
    distinct_agents: int = 0
    distinct_goipfs_versions: int = 0
    goipfs_peers: int = 0
    hydra_peers: int = 0
    crawler_peers: int = 0
    other_peers: int = 0
    missing_peers: int = 0

    @property
    def total_peers(self) -> int:
        return (
            self.goipfs_peers
            + self.hydra_peers
            + self.crawler_peers
            + self.other_peers
            + self.missing_peers
        )

    def top_agents(self, n: int = 10) -> List[Tuple[str, int]]:
        return sorted(self.grouped.items(), key=lambda kv: kv[1], reverse=True)[:n]


def agent_breakdown(dataset: MeasurementDataset, group_threshold: int = 0) -> AgentBreakdown:
    """Compute the Fig. 3 histogram and Section IV.B composition totals.

    ``group_threshold`` mirrors the paper's presentation: agents used by that
    many peers or fewer are folded into an "other" bar in ``grouped``.
    """
    breakdown = AgentBreakdown()
    for record in dataset.peers.values():
        agent = record.agent_version
        if agent is None:
            breakdown.missing_peers += 1
            breakdown.grouped["missing"] = breakdown.grouped.get("missing", 0) + 1
            continue
        breakdown.histogram[agent] = breakdown.histogram.get(agent, 0) + 1
        if is_goipfs_agent(agent):
            breakdown.goipfs_peers += 1
            group = goipfs_release_group(agent) or agent
        elif is_hydra_agent(agent):
            breakdown.hydra_peers += 1
            group = agent
        elif is_crawler_agent(agent):
            breakdown.crawler_peers += 1
            group = agent
        else:
            breakdown.other_peers += 1
            group = agent
        breakdown.grouped[group] = breakdown.grouped.get(group, 0) + 1

    breakdown.distinct_agents = len(breakdown.histogram)
    breakdown.distinct_goipfs_versions = len(
        {a for a in breakdown.histogram if is_goipfs_agent(a)}
    )
    if group_threshold > 0:
        folded: Dict[str, int] = {}
        other = 0
        for group, count in breakdown.grouped.items():
            if count <= group_threshold and group != "missing":
                other += count
            else:
                folded[group] = count
        if other:
            folded["other"] = folded.get("other", 0) + other
        breakdown.grouped = folded
    return breakdown


# --------------------------------------------------------------- protocols (Fig. 4)


@dataclass
class ProtocolBreakdown:
    """Occurrence counts of supported protocols plus the paper's key subsets."""

    histogram: Dict[str, int] = field(default_factory=dict)
    distinct_protocols: int = 0
    peers_with_protocols: int = 0
    bitswap_support: int = 0
    kad_support: int = 0
    goipfs_without_bitswap: int = 0
    sbptp_support: int = 0
    goipfs_with_sbptp: int = 0

    def top_protocols(self, n: int = 10) -> List[Tuple[str, int]]:
        return sorted(self.histogram.items(), key=lambda kv: kv[1], reverse=True)[:n]


def protocol_breakdown(dataset: MeasurementDataset) -> ProtocolBreakdown:
    """Compute the Fig. 4 histogram and the Bitswap/kad/sbptp counts."""
    breakdown = ProtocolBreakdown()
    for record in dataset.peers.values():
        if not record.protocols:
            continue
        breakdown.peers_with_protocols += 1
        for protocol in record.protocols:
            breakdown.histogram[protocol] = breakdown.histogram.get(protocol, 0) + 1
        has_bitswap = supports_bitswap(record.protocols)
        if has_bitswap:
            breakdown.bitswap_support += 1
        if KAD_DHT in record.protocols:
            breakdown.kad_support += 1
        if SBPTP in record.protocols:
            breakdown.sbptp_support += 1
        if is_goipfs_agent(record.agent_version):
            if not has_bitswap:
                breakdown.goipfs_without_bitswap += 1
            if SBPTP in record.protocols:
                breakdown.goipfs_with_sbptp += 1
    breakdown.distinct_protocols = len(breakdown.histogram)
    return breakdown


# ------------------------------------------------------- version changes (Table III)


@dataclass
class VersionChangeReport:
    """Classification of go-ipfs agent-version changes (Table III)."""

    upgrades: int = 0
    downgrades: int = 0
    changes: int = 0                  # same release, different commit
    main_to_main: int = 0
    dirty_to_main: int = 0
    main_to_dirty: int = 0
    dirty_to_dirty: int = 0
    non_goipfs_changes: int = 0
    agent_switches_to_goipfs: int = 0

    @property
    def total(self) -> int:
        return self.upgrades + self.downgrades + self.changes

    def as_dict(self) -> dict:
        return {
            "upgrade": self.upgrades,
            "downgrade": self.downgrades,
            "change": self.changes,
            "main-main": self.main_to_main,
            "dirty-main": self.dirty_to_main,
            "main-dirty": self.main_to_dirty,
            "dirty-dirty": self.dirty_to_dirty,
        }


def version_changes(dataset: MeasurementDataset) -> VersionChangeReport:
    """Classify every recorded agent change of a dataset."""
    report = VersionChangeReport()
    for change in dataset.changes_of_kind("agent"):
        old_agent = change.old_value if isinstance(change.old_value, str) else None
        new_agent = change.new_value if isinstance(change.new_value, str) else None
        if old_agent is None:
            # first time we learned the agent; not a change of the agent itself
            continue
        old = parse_goipfs_agent(old_agent)
        new = parse_goipfs_agent(new_agent)
        if old is None and new is not None:
            report.agent_switches_to_goipfs += 1
            continue
        if old is None or new is None:
            report.non_goipfs_changes += 1
            continue
        if new.release > old.release:
            report.upgrades += 1
        elif new.release < old.release:
            report.downgrades += 1
        elif new.commit != old.commit or new.dirty != old.dirty:
            report.changes += 1
        else:
            continue
        if old.dirty and new.dirty:
            report.dirty_to_dirty += 1
        elif old.dirty and not new.dirty:
            report.dirty_to_main += 1
        elif not old.dirty and new.dirty:
            report.main_to_dirty += 1
        else:
            report.main_to_main += 1
    return report


# -------------------------------------------------------------- protocol flapping


@dataclass
class ProtocolFlapReport:
    """Peers that repeatedly change the announcement of one protocol."""

    protocol: str
    peers: int = 0
    changes: int = 0

    @property
    def changes_per_peer(self) -> float:
        return self.changes / self.peers if self.peers else 0.0


def protocol_flaps(dataset: MeasurementDataset, protocol: str) -> ProtocolFlapReport:
    """Count peers and announcement changes of ``protocol`` (role/autonat flips)."""
    report = ProtocolFlapReport(protocol=protocol)
    flappers: Set[str] = set()
    for change in dataset.changes_of_kind("protocols"):
        old_protocols = set(change.old_value or ())
        new_protocols = set(change.new_value or ())
        if not old_protocols and not new_protocols:
            continue
        had = protocol in old_protocols
        has = protocol in new_protocols
        if had != has and old_protocols:
            report.changes += 1
            flappers.add(change.peer)
    report.peers = len(flappers)
    return report


# --------------------------------------------------------------------- full report


@dataclass
class MetadataReport:
    """The combined Section IV.B analysis of one dataset."""

    label: str
    agents: AgentBreakdown
    protocols: ProtocolBreakdown
    versions: VersionChangeReport
    kad_flaps: ProtocolFlapReport
    autonat_flaps: ProtocolFlapReport

    def anomalies(self) -> Dict[str, int]:
        """The anomaly indicators the paper calls out."""
        return {
            "goipfs_without_bitswap": self.protocols.goipfs_without_bitswap,
            "goipfs_with_sbptp": self.protocols.goipfs_with_sbptp,
            "missing_agent": self.agents.missing_peers,
        }


def analyze_metadata(dataset: MeasurementDataset, group_threshold: int = 0) -> MetadataReport:
    """Run the full meta-data analysis for one dataset."""
    return MetadataReport(
        label=dataset.label,
        agents=agent_breakdown(dataset, group_threshold=group_threshold),
        protocols=protocol_breakdown(dataset),
        versions=version_changes(dataset),
        kad_flaps=protocol_flaps(dataset, KAD_DHT),
        autonat_flaps=protocol_flaps(dataset, AUTONAT),
    )
