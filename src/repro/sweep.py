"""Cartesian scenario sweeps: ``python -m repro.sweep``.

Runs every combination of the requested scenarios × seeds × population sizes
through the registry, one simulation per cell, optionally fanned out over
worker processes (the same pool the parallel period runner uses).  Each cell
writes one JSON summary; the sweep writes an aggregate JSON plus a rendered
table.  A cell that raises does not abort the sweep: the remaining cells
still run, the failure is reported in the artifacts and on stderr, and the
CLI exits nonzero.  All artifacts are deterministic — no timestamps, no
wall-clock fields — so two sweeps with the same flags produce byte-identical
files.

Sweeps checkpoint as they go: a manifest of content-addressed cells
(``sweep_manifest.json``) is written before any simulation and every cell
summary lands on disk the moment it completes.  ``--resume`` continues an
interrupted sweep — completed cells whose key still matches are loaded from
disk instead of re-simulated, and the aggregate artifacts come out
byte-identical to an uninterrupted run.

Examples::

    python -m repro.sweep --list
    python -m repro.sweep --scenarios p1,flash-crowd --seeds 7,8 \\
        --peers 50 --duration 0.02d
    REPRO_BENCH_WORKERS=4 python -m repro.sweep \\
        --scenarios p0,p1,p2,p3,p4,p14 --seeds 7 --peers 400 --duration 0.1d
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.attack_report import attack_metrics
from repro.analysis.content_report import content_metrics
from repro.analysis.metrics_report import metrics_metrics
from repro.analysis.reachability_report import reachability_metrics
from repro.analysis.resilience_report import resilience_metrics
from repro.analysis.sweep_report import (
    CELL_SCHEMA,
    aggregate_payload,
    render_aggregate,
)
from repro.analysis.tables import TextTable, format_count
from repro.analysis.trace_report import tracing_metrics
from repro.analysis.transfer_report import transfer_metrics
from repro.core.churn import connection_statistics, trim_share
from repro.experiments.runner import run_cells
from repro.obs.config import ObsConfig
from repro.obs.spans import TraceConfig
from repro.obs.trace import PROGRESS_ENV
from repro.perf import dataset_counts
from repro.scenarios import run_scenario_by_name, scenario, scenarios
from repro.scenarios.registry import UnknownOverrideError, build_scenario_config
from repro.simulation.scenario import run_scenario

#: default output directory of sweep artifacts
DEFAULT_OUT_DIR = "sweep_out"


class SweepOutputError(RuntimeError):
    """Raised when the output directory already holds artifacts (no --force).

    A re-run into a non-empty directory would silently mix old and new cell
    JSON (stale cells from a previous flag set survive alongside fresh ones),
    so the sweep refuses before simulating anything.
    """


def parse_duration_days(text: str) -> float:
    """Parse a duration flag: ``0.02d`` (days), ``12h``, ``1800s``, or a bare
    number of days."""
    raw = text.strip().lower()
    factor = 1.0
    if raw.endswith("d"):
        raw = raw[:-1]
    elif raw.endswith("h"):
        raw, factor = raw[:-1], 1.0 / 24.0
    elif raw.endswith("s"):
        raw, factor = raw[:-1], 1.0 / 86_400.0
    try:
        days = float(raw) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid duration {text!r} (expected e.g. 0.02d, 12h, 1800s)"
        ) from None
    if days <= 0:
        raise argparse.ArgumentTypeError(f"duration must be positive, got {text!r}")
    return days


def _parse_int_list(text: str, flag: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid {flag} list: {text!r}") from None


def parse_override(text: str) -> Tuple[str, object]:
    """Parse one ``--set key=value`` pair.

    Values are coerced ``int`` → ``float`` → ``bool`` (``true``/``false``) →
    string, in that order, so ``--set uplink_scale=0.25`` reaches the builder
    as a float and ``--set retry=false`` as a bool.
    """
    key, separator, raw = text.partition("=")
    key = key.strip()
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"invalid --set {text!r} (expected key=value, e.g. uplink_scale=0.25)"
        )
    raw = raw.strip()
    for cast in (int, float):
        try:
            return key, cast(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return key, raw.lower() == "true"
    return key, raw


def summarize_cell(
    name: str,
    n_peers: Optional[int],
    duration_days: Optional[float],
    seed: int,
    overrides: Optional[Dict] = None,
    metrics_window: Optional[float] = None,
    metrics_path: Optional[str] = None,
    trace_sample: Optional[float] = None,
    trace_path: Optional[str] = None,
) -> Dict:
    """Run one sweep cell and reduce it to a deterministic summary dict.

    With ``metrics_window`` set the cell runs with the streaming-metrics
    runtime attached: the windowed time series goes to ``metrics_path``
    (one JSONL line per closed window) and the summary gains a ``metrics``
    block.  ``trace_sample`` likewise attaches the causal span tracer: the
    sampled trace trees go to ``trace_path`` and the summary gains a
    ``tracing`` block with critical-path attribution.  Module-level so the
    process pool can ship cells to workers by reference; the full
    :class:`ScenarioResult` stays in the worker, only the summary comes back.
    """
    spec = scenario(name)
    peers = n_peers if n_peers is not None else spec.default_peers
    days = duration_days if duration_days is not None else spec.default_duration_days
    if metrics_window is None and trace_sample is None:
        result = run_scenario_by_name(
            name, n_peers=peers, duration_days=days, seed=seed, overrides=overrides
        )
    else:
        config = build_scenario_config(
            name, n_peers=peers, duration_days=days, seed=seed, overrides=overrides
        )
        population = config.population
        if metrics_window is not None:
            obs = ObsConfig(window=metrics_window, jsonl_path=metrics_path)
            population = dataclasses.replace(population, obs=obs)
        if trace_sample is not None:
            trace = TraceConfig(sample=trace_sample, jsonl_path=trace_path)
            population = dataclasses.replace(population, trace=trace)
        config = dataclasses.replace(config, population=population)
        result = run_scenario(config)
    return summarize_result(spec.name, peers, days, seed, result, overrides=overrides)


def summarize_result(
    name: str,
    n_peers: int,
    duration_days: float,
    seed: int,
    result,
    overrides: Optional[Dict] = None,
) -> Dict:
    """Reduce an already-run :class:`ScenarioResult` to a cell summary dict
    (benchmarks reuse this so cached results are not re-simulated)."""
    churn: Dict[str, Dict[str, float]] = {}
    for label in sorted(result.datasets):
        dataset = result.datasets[label]
        if not dataset.connections:
            churn[label] = {"avg_duration": 0.0, "median_duration": 0.0, "trim_share": 0.0}
            continue
        report = connection_statistics(dataset)
        churn[label] = {
            "avg_duration": round(report.all_stats.average, 6),
            "median_duration": round(report.all_stats.median_value, 6),
            "trim_share": round(trim_share(report), 6),
        }

    return {
        "schema": CELL_SCHEMA,
        "scenario": name,
        "n_peers": n_peers,
        "duration_days": duration_days,
        "seed": seed,
        "overrides": dict(sorted(overrides.items())) if overrides else {},
        "events_processed": result.events_processed,
        "version_changes": result.version_changes,
        "role_flips": result.role_flips,
        "autonat_flips": result.autonat_flips,
        "queries_sent": sum(s.queries_sent for s in result.crawls.snapshots),
        "crawls": len(result.crawls.snapshots),
        "datasets": dataset_counts(result),
        "churn": churn,
        "content": content_metrics(result.content),
        "adversary": attack_metrics(result),
        "netmodel": reachability_metrics(result),
        "resilience": resilience_metrics(result),
        "bandwidth": transfer_metrics(result),
        "metrics": metrics_metrics(result),
        "tracing": tracing_metrics(result),
    }


def summarize_cell_safe(
    name: str,
    n_peers: Optional[int],
    duration_days: Optional[float],
    seed: int,
    overrides: Optional[Dict] = None,
    metrics_window: Optional[float] = None,
    metrics_path: Optional[str] = None,
    trace_sample: Optional[float] = None,
    trace_path: Optional[str] = None,
) -> Dict:
    """Run one cell, catching failures so one bad cell cannot sink a sweep.

    Returns either a regular cell summary or a failure record carrying the
    exception; the sweep reports failures and exits nonzero.  Module-level so
    the process pool can ship it to workers by reference.
    """
    try:
        if metrics_window is None and trace_sample is None:
            # Legacy call shape, kept so callers (and tests) that stub
            # summarize_cell with the five-argument signature still work.
            return summarize_cell(name, n_peers, duration_days, seed, overrides)
        return summarize_cell(
            name, n_peers, duration_days, seed, overrides,
            metrics_window, metrics_path, trace_sample, trace_path,
        )
    except Exception as exc:  # noqa: BLE001 - any cell failure must be reported
        return {
            "scenario": name,
            "n_peers": n_peers,
            "duration_days": duration_days,
            "seed": seed,
            "error": f"{type(exc).__name__}: {exc}",
        }


def cell_filename(summary: Dict) -> str:
    return f"{summary['scenario']}__n{summary['n_peers']}__s{summary['seed']}.json"


#: per-sweep manifest: the planned cells with their content-address keys
MANIFEST_NAME = "sweep_manifest.json"
MANIFEST_SCHEMA = "repro-sweep-manifest/1"


def cell_key(
    name: str,
    n_peers: int,
    duration_days: float,
    seed: int,
    overrides: Optional[Dict] = None,
    metrics_window: Optional[float] = None,
    trace_sample: Optional[float] = None,
) -> str:
    """Content address of one sweep cell.

    A hash over everything that determines the cell's result: the resolved
    scenario coordinates, the builder overrides, the metrics and tracing
    configuration, plus the cell schema version, so cells written by an older
    summary format (or under different ``--set`` / ``--metrics`` / ``--trace``
    values) are never reused by ``--resume``.
    """
    payload = {
        "schema": CELL_SCHEMA,
        "scenario": name,
        "n_peers": n_peers,
        "duration_days": duration_days,
        "seed": seed,
        "overrides": dict(sorted(overrides.items())) if overrides else {},
        "obs": {"window": metrics_window} if metrics_window is not None else None,
        "trace": {"sample": trace_sample} if trace_sample is not None else None,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def _resolve_cell(
    name: str,
    n_peers: Optional[int],
    duration_days: Optional[float],
    seed: int,
    overrides: Optional[Dict] = None,
    metrics_window: Optional[float] = None,
    trace_sample: Optional[float] = None,
) -> Dict:
    """One planned cell with its defaults resolved, filename, and key."""
    spec = scenario(name)
    peers = n_peers if n_peers is not None else spec.default_peers
    days = duration_days if duration_days is not None else spec.default_duration_days
    cell = {
        "scenario": spec.name,
        "n_peers": peers,
        "duration_days": days,
        "seed": seed,
        "overrides": dict(sorted(overrides.items())) if overrides else {},
        "file": f"{spec.name}__n{peers}__s{seed}.json",
        "key": cell_key(
            spec.name, peers, days, seed, overrides, metrics_window, trace_sample
        ),
    }
    if metrics_window is not None:
        cell["metrics_file"] = f"{spec.name}__n{peers}__s{seed}__metrics.jsonl"
    if trace_sample is not None:
        cell["trace_file"] = f"{spec.name}__n{peers}__s{seed}__traces.jsonl"
    return cell


def _manifest_payload(planned: Sequence[Dict]) -> Dict:
    return {"schema": MANIFEST_SCHEMA, "cells": list(planned)}


def _load_completed_cells(out_dir: str, planned: Sequence[Dict]) -> Dict[int, Dict]:
    """Map planned-cell index -> previously written summary, for ``--resume``.

    A cell is reused only when the old manifest recorded the same content
    address for its file *and* the file parses as a non-failure summary;
    anything else (missing file, key mismatch from changed flags or schema,
    truncated JSON from the kill) is simply re-run.
    """
    manifest_path = os.path.join(out_dir, MANIFEST_NAME)
    old_keys: Dict[str, str] = {}
    if os.path.isfile(manifest_path):
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
            old_keys = {
                cell["file"]: cell["key"] for cell in manifest.get("cells", [])
            }
        except (ValueError, KeyError, TypeError):
            old_keys = {}
    completed: Dict[int, Dict] = {}
    for index, cell in enumerate(planned):
        if old_keys.get(cell["file"]) != cell["key"]:
            continue
        path = os.path.join(out_dir, cell["file"])
        if not os.path.isfile(path):
            continue
        try:
            with open(path) as handle:
                summary = json.load(handle)
        except ValueError:
            continue
        if not isinstance(summary, dict) or "error" in summary:
            continue
        completed[index] = summary
    return completed


def _write_json(path: str, payload: Dict) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def run_sweep(
    scenario_names: Sequence[str],
    seeds: Sequence[int],
    peers_list: Sequence[Optional[int]],
    duration_days: Optional[float],
    out_dir: str,
    workers: Optional[int] = None,
    force: bool = False,
    resume: bool = False,
    overrides: Optional[Dict] = None,
    metrics_window: Optional[float] = None,
    trace_sample: Optional[float] = None,
    progress: Optional[bool] = None,
) -> Tuple[List[Dict], List[Dict]]:
    """Run the cartesian sweep and write all artifacts into ``out_dir``.

    Returns ``(summaries, failures)``.  Cell order (and therefore aggregate
    order) is scenarios × populations × seeds as given — deterministic for a
    given flag set even when the cells themselves run in parallel workers.
    A non-empty ``out_dir`` is refused unless ``force`` or ``resume`` is set:
    ``force`` deletes the previous run's artifacts (``*.json``, ``*.jsonl``,
    ``sweep_table.txt``) up front, so a re-run can never silently mix stale
    and fresh cell JSON; ``resume`` instead reuses every completed cell whose
    content address matches the manifest of the interrupted run and only
    simulates the rest.  Cell summaries are written to disk as they complete
    (checkpointing), and the aggregate artifacts are rebuilt from the full
    reused + fresh set, so an interrupted sweep resumed with the same flags
    produces byte-identical artifacts to an uninterrupted one.

    ``metrics_window`` attaches the streaming-metrics runtime to every cell:
    each cell writes a ``*__metrics.jsonl`` time series next to its summary
    and the summary gains a ``metrics`` block.  ``trace_sample`` attaches the
    causal span tracer: each cell writes a ``*__traces.jsonl`` of sampled
    trace trees and the summary gains a ``tracing`` block with critical-path
    attribution.  ``progress`` (default: on
    when stderr is a TTY) prints a heartbeat to stderr as cells complete —
    cells done/total, cumulative events/sec, ETA — and enables the per-cell
    engine tracer (:mod:`repro.obs.trace`) inside the workers.  Neither knob
    touches the artifacts' bytes beyond the metrics block itself.
    """
    for name in scenario_names:
        # Fail fast on unknown names and unknown override keys (the shared
        # ScenarioSpec validation), before any simulation.
        scenario(name).validate_overrides(overrides)
    planned = [
        _resolve_cell(
            name, peers, duration_days, seed, overrides, metrics_window, trace_sample
        )
        for name in scenario_names
        for peers in peers_list
        for seed in seeds
    ]
    completed: Dict[int, Dict] = {}
    if os.path.isdir(out_dir) and os.listdir(out_dir):
        if resume:
            completed = _load_completed_cells(out_dir, planned)
        elif not force:
            raise SweepOutputError(
                f"output directory {out_dir!r} is not empty; pass --force to "
                "overwrite (stale cells from a previous run would otherwise "
                "survive alongside the new ones) or --resume to continue an "
                "interrupted sweep"
            )
        else:
            for name in os.listdir(out_dir):
                if (
                    name.endswith(".json")
                    or name.endswith(".jsonl")
                    or name == "sweep_table.txt"
                ):
                    os.remove(os.path.join(out_dir, name))
    os.makedirs(out_dir, exist_ok=True)
    # The manifest goes down before any cell runs: a killed sweep leaves
    # exactly the state --resume needs (planned cells + their keys).
    _write_json(os.path.join(out_dir, MANIFEST_NAME), _manifest_payload(planned))

    todo = [index for index in range(len(planned)) if index not in completed]
    cells = [
        (
            planned[index]["scenario"],
            planned[index]["n_peers"],
            planned[index]["duration_days"],
            planned[index]["seed"],
            planned[index]["overrides"],
            metrics_window,
            os.path.join(out_dir, planned[index]["metrics_file"])
            if metrics_window is not None
            else None,
            trace_sample,
            os.path.join(out_dir, planned[index]["trace_file"])
            if trace_sample is not None
            else None,
        )
        for index in todo
    ]

    show_progress = sys.stderr.isatty() if progress is None else progress
    started = time.perf_counter()
    heartbeat = {"cells": 0, "events": 0}

    def _checkpoint(position: int, outcome: Dict) -> None:
        heartbeat["cells"] += 1
        heartbeat["events"] += int(outcome.get("events_processed", 0) or 0)
        if "error" not in outcome:
            _write_json(os.path.join(out_dir, cell_filename(outcome)), outcome)
        if show_progress:
            # Heartbeat only — wall-clock never reaches the artifacts.
            elapsed = max(time.perf_counter() - started, 1e-9)
            remaining = len(todo) - heartbeat["cells"]
            eta = elapsed / heartbeat["cells"] * remaining
            print(
                f"sweep: {heartbeat['cells'] + len(completed)}/{len(planned)} cells  "
                f"{format_count(heartbeat['events'])} events  "
                f"{format_count(int(heartbeat['events'] / elapsed))} ev/s  "
                f"ETA {eta:.0f}s",
                file=sys.stderr,
            )
            sys.stderr.flush()

    # With progress on, the workers (fork-based, so they inherit the env)
    # also trace per-cell engine progress once per simulated hour.
    env_before = os.environ.get(PROGRESS_ENV)
    if show_progress:
        os.environ[PROGRESS_ENV] = "1"
    try:
        outcomes: List[Dict] = run_cells(
            summarize_cell_safe, cells, workers, on_result=_checkpoint
        )
    finally:
        if show_progress:
            if env_before is None:
                os.environ.pop(PROGRESS_ENV, None)
            else:
                os.environ[PROGRESS_ENV] = env_before
    merged: List[Optional[Dict]] = [None] * len(planned)
    for index, summary in completed.items():
        merged[index] = summary
    for index, outcome in zip(todo, outcomes):
        merged[index] = outcome
    summaries = [o for o in merged if o is not None and "error" not in o]
    failures = [o for o in merged if o is not None and "error" in o]

    _write_json(
        os.path.join(out_dir, "sweep_summary.json"),
        aggregate_payload(summaries, failures),
    )
    with open(os.path.join(out_dir, "sweep_table.txt"), "w") as handle:
        handle.write(render_aggregate(summaries, failures))
    return summaries, failures


def catalog_table(tag: Optional[str] = None) -> TextTable:
    """The ``--list`` output: registered scenarios (optionally one tag) and
    their knobs."""
    title = "Registered scenarios" if tag is None else f"Registered scenarios [{tag}]"
    table = TextTable(
        headers=["Name", "Tags", "Peers", "Days", "Description", "Knobs"],
        title=title,
    )
    for spec in scenarios(tag):
        knobs = ", ".join(f"{k}={v}" for k, v in spec.knobs.items())
        table.add_row(
            spec.name,
            ",".join(spec.tags),
            spec.default_peers,
            f"{spec.default_duration_days:g}",
            spec.description,
            knobs,
        )
    return table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run a cartesian sweep of registered scenarios × seeds × populations.",
    )
    parser.add_argument(
        "--scenarios",
        help="comma-separated registered scenario names (see --list)",
    )
    parser.add_argument(
        "--seeds", default="7",
        help="comma-separated simulation seeds (default: 7)",
    )
    parser.add_argument(
        "--peers", default=None,
        help="comma-separated population sizes (default: each scenario's own)",
    )
    parser.add_argument(
        "--duration", type=parse_duration_days, default=None,
        help=(
            "simulated duration per cell, e.g. 0.02d, 12h, 1800s "
            "(default: each scenario's own)"
        ),
    )
    parser.add_argument(
        "--set", dest="overrides", action="append", type=parse_override,
        default=[], metavar="KEY=VALUE",
        help=(
            "override a scenario builder knob (repeatable), e.g. "
            "--set uplink_scale=0.25 --set size_scale=4; unknown keys are "
            "rejected with the scenario's known keys"
        ),
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT_DIR,
        help=f"output directory for the JSON/table artifacts (default: {DEFAULT_OUT_DIR})",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite a non-empty --out directory (refused otherwise)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help=(
            "continue an interrupted sweep: reuse completed cells whose "
            "content-address key matches the manifest, simulate only the rest"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: REPRO_BENCH_WORKERS or 1)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help=(
            "stream per-cell metrics: each cell writes a *__metrics.jsonl "
            "time series (one line per closed window) next to its summary, "
            "and the summary gains a 'metrics' block"
        ),
    )
    parser.add_argument(
        "--metrics-window", type=float, default=None, metavar="SECONDS",
        help=(
            "metrics window length in simulated seconds (implies --metrics; "
            "default with bare --metrics: 300)"
        ),
    )
    parser.add_argument(
        "--trace", action="store_true",
        help=(
            "trace per-cell causal spans: each cell writes a *__traces.jsonl "
            "of sampled operation trace trees next to its summary, and the "
            "summary gains a 'tracing' block with critical-path attribution"
        ),
    )
    parser.add_argument(
        "--trace-sample", type=float, default=None, metavar="RATE",
        help=(
            "deterministic per-operation trace sampling rate in (0, 1] "
            "(implies --trace; default with bare --trace: 1.0; failed and "
            "timed-out operations are always sampled)"
        ),
    )
    parser.add_argument(
        "--progress", action=argparse.BooleanOptionalAction, default=None,
        help=(
            "heartbeat to stderr as cells complete (done/total, events/sec, "
            "ETA) plus per-cell engine tracing; default: on when stderr is "
            "a TTY"
        ),
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the registered scenarios and exit",
    )
    parser.add_argument(
        "--tag", default=None,
        help="with --list: only scenarios carrying this tag (paper, stress, "
             "content, adversary, ...)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        if args.tag is not None and not scenarios(args.tag):
            known = sorted({tag for spec in scenarios() for tag in spec.tags})
            print(
                f"no scenarios tagged {args.tag!r}; known tags: {', '.join(known)}",
                file=sys.stderr,
            )
            return 1
        print(catalog_table(args.tag).render())
        return 0
    if args.tag is not None:
        parser.error("--tag only filters --list; pass --scenarios by name to run")
    if not args.scenarios:
        parser.error("--scenarios is required (or use --list)")

    names = [part.strip().lower() for part in args.scenarios.split(",") if part.strip()]
    seeds = _parse_int_list(args.seeds, "--seeds")
    peers_list: List[Optional[int]] = (
        list(_parse_int_list(args.peers, "--peers")) if args.peers else [None]
    )
    if not names or not seeds:
        parser.error("need at least one scenario and one seed")
    if args.force and args.resume:
        parser.error("--force and --resume are mutually exclusive")
    overrides: Dict[str, object] = dict(args.overrides)
    metrics_window: Optional[float] = None
    if args.metrics or args.metrics_window is not None:
        metrics_window = args.metrics_window if args.metrics_window is not None else 300.0
        if metrics_window <= 0:
            # Rejected up front, before anything simulates: exit 2, no cells.
            parser.error(f"--metrics-window must be positive, got {metrics_window}")
    trace_sample: Optional[float] = None
    if args.trace or args.trace_sample is not None:
        trace_sample = args.trace_sample if args.trace_sample is not None else 1.0
        if not (0.0 < trace_sample <= 1.0):
            parser.error(f"--trace-sample must be within (0, 1], got {trace_sample}")

    try:
        summaries, failures = run_sweep(
            names, seeds, peers_list, args.duration, args.out,
            workers=args.workers, force=args.force, resume=args.resume,
            overrides=overrides, metrics_window=metrics_window,
            trace_sample=trace_sample, progress=args.progress,
        )
    except (SweepOutputError, UnknownOverrideError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_aggregate(summaries, failures), end="")
    print(f"\nwrote {len(summaries)} cell summaries to {args.out}/")
    if failures:
        for failure in failures:
            print(
                f"sweep cell failed: {failure['scenario']} "
                f"(peers={failure['n_peers']}, seed={failure['seed']}): "
                f"{failure['error']}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
