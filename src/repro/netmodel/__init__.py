"""Network-realism subsystem: regions, latency, NAT/reachability, timeouts.

See :mod:`repro.netmodel.config` for the model description.  Attach a
:class:`NetModelConfig` to ``PopulationConfig.netmodel`` to activate it;
``None`` (the default) keeps the idealised zero-latency, fully-dialable
fabric byte-identical to earlier builds.
"""

from repro.netmodel.config import (
    ALL_CLASSES,
    NAT,
    PUBLIC,
    RELAYED,
    NetModelConfig,
    ReachabilityConfig,
    RegionModelConfig,
)
from repro.netmodel.runtime import NetModelRuntime, NetModelStats, PeerNet, WalkClock

__all__ = [
    "ALL_CLASSES",
    "NAT",
    "PUBLIC",
    "RELAYED",
    "NetModelConfig",
    "NetModelRuntime",
    "NetModelStats",
    "PeerNet",
    "ReachabilityConfig",
    "RegionModelConfig",
    "WalkClock",
]
