"""Configuration of the network-realism subsystem.

The paper's passive measurements ran against the real Internet: every RPC
paid a region-dependent round trip, a large share of peers sat behind NATs
the crawler could not dial, and some were reachable only through relays.
The simulator idealised all of that away — every peer instantly dialable,
every RPC free — which makes crawler coverage, connection durations, and
retrieval latencies structurally too good.

A :class:`NetModelConfig` attached to
:class:`~repro.simulation.population.PopulationConfig.netmodel` drops that
idealisation.  It has two parts:

* a **region/latency model** — peers are assigned to geographic regions with
  an inter-region RTT matrix and per-peer jitter, so every DHT RPC, identify
  exchange, and Bitswap fetch accrues simulated latency;
* a **reachability model** — each peer is drawn as ``public`` (dialable),
  ``nat`` (inbound-only: it can dial the vantage point but nobody can dial
  it), or ``relayed`` (dialable at a relay-latency penalty).  Dial attempts
  to NATed peers fail after ``dial_timeout`` simulated seconds, and
  iterative walks give up once ``lookup_timeout`` of simulated time is
  spent — which is what bounds crawls and lookups the way real deployments
  are bounded.

Everything is identity-by-default: ``netmodel=None`` (the default) assigns
nothing, draws nothing from any RNG, and leaves every pre-existing
fixed-seed golden byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: reachability class labels (PeerNet.reachability / NetModelStats keys)
PUBLIC = "public"
NAT = "nat"
RELAYED = "relayed"

ALL_CLASSES = (PUBLIC, NAT, RELAYED)

#: default region set, weighted roughly like the live network's continents
DEFAULT_REGIONS: Tuple[str, ...] = ("eu", "na", "ap", "sa", "af")
DEFAULT_REGION_WEIGHTS: Tuple[float, ...] = (0.35, 0.30, 0.22, 0.08, 0.05)

#: symmetric base round-trip times between regions (seconds)
DEFAULT_RTT_MATRIX: Tuple[Tuple[float, ...], ...] = (
    # eu     na     ap     sa     af
    (0.030, 0.090, 0.160, 0.120, 0.100),  # eu
    (0.090, 0.040, 0.130, 0.100, 0.150),  # na
    (0.160, 0.130, 0.050, 0.180, 0.170),  # ap
    (0.120, 0.100, 0.180, 0.040, 0.190),  # sa
    (0.100, 0.150, 0.170, 0.190, 0.060),  # af
)


@dataclass(frozen=True)
class RegionModelConfig:
    """The region set and its inter-region RTT structure."""

    #: region labels; index order keys the weight vector and the RTT matrix
    names: Tuple[str, ...] = DEFAULT_REGIONS
    #: probability of a peer landing in each region (sums to 1)
    weights: Tuple[float, ...] = DEFAULT_REGION_WEIGHTS
    #: symmetric base RTT between regions, seconds
    rtt_matrix: Tuple[Tuple[float, ...], ...] = DEFAULT_RTT_MATRIX
    #: per-peer multiplicative jitter amplitude: each peer draws a personal
    #: factor in [1 - jitter, 1 + jitter] applied to every RTT it is part of
    jitter: float = 0.25
    #: global RTT multiplier (high-latency scenarios crank this)
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("the region model needs at least one region")
        if len(self.weights) != len(self.names):
            raise ValueError(
                f"region weights ({len(self.weights)}) must match the "
                f"region count ({len(self.names)})"
            )
        if any(w < 0 for w in self.weights):
            raise ValueError(f"region weights must be non-negative, got {self.weights}")
        total = sum(self.weights)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"region weights must sum to 1, got {total}")
        n = len(self.names)
        if len(self.rtt_matrix) != n or any(len(row) != n for row in self.rtt_matrix):
            raise ValueError(f"rtt_matrix must be {n}x{n}")
        for i in range(n):
            for j in range(n):
                if self.rtt_matrix[i][j] <= 0:
                    raise ValueError("rtt_matrix entries must be positive")
                if self.rtt_matrix[i][j] != self.rtt_matrix[j][i]:
                    raise ValueError(
                        f"rtt_matrix must be symmetric, differs at "
                        f"({self.names[i]}, {self.names[j]})"
                    )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be within [0, 1), got {self.jitter}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")


@dataclass(frozen=True)
class ReachabilityConfig:
    """NAT/relay composition and dial semantics."""

    #: share of peers behind a NAT (inbound-only; direct dials to them fail).
    #: Peers whose ground-truth profile already says ``behind_nat`` are NATed
    #: regardless; this share applies on top, to everyone else.
    nat_share: float = 0.30
    #: share of peers reachable only via a circuit relay (dialable, slower)
    relay_share: float = 0.10
    #: simulated seconds a failed dial burns before giving up
    dial_timeout: float = 5.0
    #: RTT multiplier of any path with a relayed endpoint
    relay_penalty: float = 2.2

    def __post_init__(self) -> None:
        for name in ("nat_share", "relay_share"):
            share = getattr(self, name)
            if not 0.0 <= share <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {share}")
        if self.nat_share + self.relay_share > 1.0:
            raise ValueError(
                "nat_share + relay_share must be <= 1, got "
                f"{self.nat_share} + {self.relay_share}"
            )
        if self.dial_timeout <= 0:
            raise ValueError(f"dial_timeout must be positive, got {self.dial_timeout}")
        if self.relay_penalty < 1.0:
            raise ValueError(f"relay_penalty must be >= 1, got {self.relay_penalty}")


@dataclass(frozen=True)
class NetModelConfig:
    """The full network-conditions model a scenario runs under."""

    regions: RegionModelConfig = field(default_factory=RegionModelConfig)
    reachability: ReachabilityConfig = field(default_factory=ReachabilityConfig)
    #: simulated-time budget of one iterative walk; a walk stops expanding
    #: once it has spent this much accrued RTT/dial time (``None``: unbounded)
    lookup_timeout: Optional[float] = 45.0
    #: decouples the netmodel RNG stream from every honest stream, so
    #: attaching a netmodel never perturbs honest draws
    seed_salt: int = 7000

    def __post_init__(self) -> None:
        if self.lookup_timeout is not None and self.lookup_timeout <= 0:
            raise ValueError(
                f"lookup_timeout must be positive or None, got {self.lookup_timeout}"
            )
