"""Runtime side of the network-realism subsystem.

:class:`NetModelRuntime` is built by the network fabric when a
:class:`~repro.netmodel.config.NetModelConfig` is attached to the population.
It draws each peer's network conditions (region, reachability class, jitter)
from its own RNG stream, answers the fabric's dial/RTT questions, and keeps
the :class:`NetModelStats` a scenario reports.

Delays ride the **existing** event heap: the fabric adds the computed RTT to
the delays of events it already schedules (identify delivery etc.), and
iterative walks accrue latency on a :class:`WalkClock` instead of spinning a
second queue — so the ``netmodel=None`` hot path stays a single ``is None``
check and the perf gate holds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.netmodel.config import NAT, PUBLIC, RELAYED, NetModelConfig
from repro.simulation.fabric import FabricRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.network import SimPeer
    from repro.simulation.population import PeerProfile


class PeerNet:
    """The drawn network conditions of one peer (or measurement identity)."""

    __slots__ = ("region", "reachability", "jitter")

    def __init__(self, region: int, reachability: str, jitter: float) -> None:
        self.region = region
        self.reachability = reachability
        self.jitter = jitter

    @property
    def dialable(self) -> bool:
        return self.reachability is not NAT


@dataclass
class NetModelStats:
    """What a scenario reports about its network conditions.

    Compact and picklable: the process-parallel sweep runner ships these back
    from worker processes instead of whole scenario results.
    """

    peers: int = 0
    #: ground-truth reachability class and region composition
    class_counts: Dict[str, int] = field(default_factory=dict)
    region_counts: Dict[str, int] = field(default_factory=dict)
    #: dial/RPC attempts against simulated peers (a failed one hit a NAT)
    dial_attempts: int = 0
    dial_failures: int = 0
    relay_dials: int = 0
    #: RPC round trips that accrued latency, and their total simulated time
    rpc_messages: int = 0
    rpc_latency_total: float = 0.0
    #: iterative walks run under a clock, and how many hit the time budget
    lookups_timed: int = 0
    lookup_timeouts: int = 0
    #: per-message RTT samples for the percentile report (first N kept)
    rtt_samples: List[float] = field(default_factory=list)
    rtt_samples_dropped: int = 0
    max_rtt_samples: int = 10_000

    @property
    def unreachable_share(self) -> float:
        return self.class_counts.get(NAT, 0) / self.peers if self.peers else 0.0

    @property
    def dial_failure_rate(self) -> float:
        return self.dial_failures / self.dial_attempts if self.dial_attempts else 0.0

    @property
    def lookup_timeout_rate(self) -> float:
        return self.lookup_timeouts / self.lookups_timed if self.lookups_timed else 0.0

    @property
    def mean_rtt(self) -> float:
        return self.rpc_latency_total / self.rpc_messages if self.rpc_messages else 0.0


class WalkClock:
    """Accrues the simulated time one iterative walk spends on the wire.

    The content behaviours create one per PROVIDE / FIND_PROVIDERS operation:
    every RPC charges a round trip, every dial to a NATed peer burns the dial
    timeout, and the walk's ``give_up`` hook reads :meth:`expired` so lookups
    are bounded in simulated time, not only in query count.
    """

    __slots__ = ("runtime", "source", "elapsed", "last_rtt")

    def __init__(self, runtime: "NetModelRuntime", source: PeerNet) -> None:
        self.runtime = runtime
        self.source = source
        self.elapsed = 0.0
        #: RTT of the most recent charge(); downstream runtimes (slow-node
        #: penalties) scale it without re-deriving the endpoints
        self.last_rtt = 0.0

    def dial(self, target: PeerNet) -> bool:
        """Attempt a dial; a NATed target burns the timeout and fails."""
        if self.runtime.dial(target):
            return True
        self.elapsed += self.runtime.config.reachability.dial_timeout
        return False

    def charge(self, target: PeerNet) -> float:
        """Charge one RPC round trip against the clock."""
        rtt = self.runtime.rtt(self.source, target)
        self.elapsed += rtt
        self.last_rtt = rtt
        self.runtime.record_rtt(rtt)
        return rtt

    def expired(self) -> bool:
        timeout = self.runtime.config.lookup_timeout
        return timeout is not None and self.elapsed >= timeout

    def finish(self) -> float:
        """Close the walk's books; returns the accrued simulated latency."""
        stats = self.runtime.stats
        stats.lookups_timed += 1
        if self.expired():
            stats.lookup_timeouts += 1
        return self.elapsed


class NetModelRuntime(FabricRuntime):
    """Per-run state: peer assignments, RTT arithmetic, and stats."""

    slot = "net"
    name = "netmodel"

    def __init__(self, config: NetModelConfig, seed: int) -> None:
        self.config = config
        self.rng = random.Random(seed + config.seed_salt)
        self.stats = NetModelStats()
        self.stats.class_counts = {label: 0 for label in (PUBLIC, NAT, RELAYED)}
        self.stats.region_counts = {name: 0 for name in config.regions.names}
        #: measurement identities' conditions, keyed by dataset label
        self.identity_net: Dict[str, PeerNet] = {}
        regions = config.regions
        self._cum_weights: List[float] = []
        total = 0.0
        for weight in regions.weights:
            total += weight
            self._cum_weights.append(total)
        #: rtt_matrix rows pre-scaled so rtt() is two lookups and a multiply
        self._scaled_matrix = [
            [value * regions.scale for value in row] for row in regions.rtt_matrix
        ]

    # -- assignment (construction time, deterministic in peer order) ---------------

    def _draw_region(self) -> int:
        roll = self.rng.random()
        for index, cumulative in enumerate(self._cum_weights):
            if roll <= cumulative:
                return index
        return len(self._cum_weights) - 1

    def assign_peer(
        self,
        profile: Optional["PeerProfile"] = None,
        *,
        behind_nat: bool = False,
        force_public: bool = False,
    ) -> PeerNet:
        """Draw one peer's conditions (always three draws, so the stream is a
        pure function of the assignment order).

        The fabric passes the peer's ``profile`` (the :class:`FabricRuntime`
        hook form); the keyword form spells the relevant facts out directly.
        Vantage-point-like peers (hydra heads, crawlers) are forced public —
        they run the study and must stay dialable.
        """
        if profile is not None:
            behind_nat = profile.behind_nat
            force_public = profile.is_hydra_head or profile.is_crawler
        regions = self.config.regions
        reach = self.config.reachability
        region = self._draw_region()
        roll = self.rng.random()
        jitter = self.rng.uniform(1.0 - regions.jitter, 1.0 + regions.jitter)
        if force_public:
            reachability = PUBLIC
        elif behind_nat or roll < reach.nat_share:
            reachability = NAT
        elif roll < reach.nat_share + reach.relay_share:
            reachability = RELAYED
        else:
            reachability = PUBLIC
        net = PeerNet(region, reachability, jitter)
        stats = self.stats
        stats.peers += 1
        stats.class_counts[reachability] += 1
        stats.region_counts[regions.names[region]] += 1
        return net

    def assign_identity(self, label: str) -> PeerNet:
        """Assign a measurement identity (always public; it runs the study)."""
        region = self._draw_region()
        jitter = self.rng.uniform(
            1.0 - self.config.regions.jitter, 1.0 + self.config.regions.jitter
        )
        net = PeerNet(region, PUBLIC, jitter)
        self.identity_net[label] = net
        return net

    # -- dial / latency arithmetic ---------------------------------------------------

    def dial(self, target: PeerNet) -> bool:
        """Attempt to dial ``target``; counts the attempt in the stats."""
        stats = self.stats
        stats.dial_attempts += 1
        if target.reachability is NAT:
            stats.dial_failures += 1
            return False
        if target.reachability is RELAYED:
            stats.relay_dials += 1
        return True

    def rtt(self, a: PeerNet, b: PeerNet) -> float:
        """One round trip between two endpoints (jitter and relay included)."""
        base = self._scaled_matrix[a.region][b.region] * 0.5 * (a.jitter + b.jitter)
        if a.reachability is RELAYED or b.reachability is RELAYED:
            base *= self.config.reachability.relay_penalty
        return base

    def identity_rtt(self, label: str, peer: PeerNet) -> float:
        """RTT between a measurement identity and a simulated peer."""
        return self.rtt(self.identity_net[label], peer)

    def record_rtt(self, value: float) -> None:
        stats = self.stats
        stats.rpc_messages += 1
        stats.rpc_latency_total += value
        if len(stats.rtt_samples) < stats.max_rtt_samples:
            stats.rtt_samples.append(value)
        else:
            stats.rtt_samples_dropped += 1

    def clock(self, source: PeerNet) -> WalkClock:
        return WalkClock(self, source)

    # -- FabricRuntime hooks ---------------------------------------------------------

    def on_dial(self, peer: "SimPeer") -> bool:
        return self.dial(peer.net)

    def on_rpc(self, src: Optional["SimPeer"], dst: "SimPeer") -> bool:
        # An RPC against a NATed peer fails exactly like a real dial does
        # (the crawler-undercount mechanism); src pays nothing extra here.
        return self.dial(dst.net)

    def on_timed_rpc(
        self, clock: WalkClock, src: Optional["SimPeer"], dst: "SimPeer"
    ) -> bool:
        # A failed dial burns the timeout on the walk clock; a successful one
        # is charged a round trip (stashed as clock.last_rtt for runtimes
        # later in the dispatch order).
        if not clock.dial(dst.net):
            return False
        clock.charge(dst.net)
        return True

    def identify_delay(self, label: str, peer: "SimPeer") -> float:
        # Identify is a request/response exchange: one round trip on top of
        # the processing delay (riding the same event heap).
        return self.identity_rtt(label, peer.net)
