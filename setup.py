"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` keeps working on offline machines that lack the
``wheel`` package (pip then falls back to the legacy ``setup.py develop``
code path, which does not need to build a wheel).
"""

from setuptools import setup

setup()
