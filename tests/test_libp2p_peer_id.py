"""Tests for peer identifiers and base58 encoding."""

import random

import pytest

from repro.libp2p.crypto import ED25519, KeyPair, generate_keypair
from repro.libp2p.peer_id import PeerId, base58btc_decode, base58btc_encode


class TestBase58:
    def test_round_trip(self):
        data = bytes(range(0, 40))
        assert base58btc_decode(base58btc_encode(data)) == data

    def test_leading_zeros_preserved(self):
        data = b"\x00\x00\x01\x02"
        encoded = base58btc_encode(data)
        assert encoded.startswith("11")
        assert base58btc_decode(encoded) == data

    def test_empty_bytes(self):
        assert base58btc_encode(b"") == ""
        assert base58btc_decode("") == b""

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError):
            base58btc_decode("0OIl")  # characters excluded from the alphabet


class TestPeerId:
    def test_from_keypair_is_deterministic(self):
        rng = random.Random(42)
        keypair = generate_keypair(rng)
        assert PeerId.from_keypair(keypair) == PeerId.from_keypair(keypair)

    def test_different_keys_yield_different_ids(self):
        rng = random.Random(42)
        a = PeerId.from_keypair(generate_keypair(rng))
        b = PeerId.from_keypair(generate_keypair(rng))
        assert a != b

    def test_base58_round_trip(self):
        pid = PeerId.random(random.Random(1))
        assert PeerId.from_base58(pid.to_base58()) == pid

    def test_base58_starts_with_qm(self):
        # sha2-256 multihashes encode to the familiar "Qm..." prefix
        pid = PeerId.random(random.Random(2))
        assert pid.to_base58().startswith("Qm")

    def test_digest_must_be_32_bytes(self):
        with pytest.raises(ValueError):
            PeerId(digest=b"\x00" * 16)

    def test_kad_key_matches_digest(self):
        pid = PeerId.random(random.Random(3))
        assert pid.kad_key() == int.from_bytes(pid.digest, "big")

    def test_ordering_is_consistent_with_digest(self):
        pids = [PeerId.random(random.Random(i)) for i in range(10)]
        assert sorted(pids) == sorted(pids, key=lambda p: p.digest)

    def test_hashable_and_usable_in_sets(self):
        rng = random.Random(4)
        pid = PeerId.random(rng)
        clone = PeerId(digest=pid.digest)
        assert len({pid, clone}) == 1

    def test_short_form_contains_prefix_and_suffix(self):
        pid = PeerId.random(random.Random(5))
        short = pid.short()
        b58 = pid.to_base58()
        assert short.startswith(b58[:6])
        assert short.endswith(b58[-4:])

    def test_from_base58_rejects_non_multihash(self):
        with pytest.raises(ValueError):
            PeerId.from_base58(base58btc_encode(b"\x01\x02\x03"))

    def test_random_with_same_rng_sequence_differs(self):
        rng = random.Random(6)
        assert PeerId.random(rng) != PeerId.random(rng)


class TestKeyPair:
    def test_generate_ed25519(self):
        keypair = generate_keypair(random.Random(1), key_type=ED25519)
        assert len(keypair.public_key) == 32

    def test_generate_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(random.Random(1), key_type="dsa")

    def test_public_digest_is_stable(self):
        keypair = KeyPair(key_type=ED25519, public_key=b"a" * 32, private_key=b"b" * 32)
        assert keypair.public_digest() == keypair.public_digest()
        assert len(keypair.public_digest()) == 32

    def test_short_id_is_hex(self):
        keypair = generate_keypair(random.Random(7))
        short = keypair.short_id()
        assert len(short) == 12
        int(short, 16)  # must parse as hex
