"""Sharded scenario execution: determinism, merge correctness, guard rails."""

import dataclasses

import pytest

from repro.core.records import (
    ConnectionRecord,
    MeasurementDataset,
    PeerRecord,
    SnapshotRecord,
)
from repro.faults.runtime import FaultStats
from repro.netmodel.runtime import NetModelStats
from repro.scenarios import build_scenario_config
from repro.simulation.equivalence import result_fingerprint
from repro.simulation.scenario import ScenarioConfig, run_scenario
from repro.simulation.sharded import (
    SHARD_SEED_STRIDE,
    merge_datasets,
    merge_stats,
    run_sharded_scenario,
    shard_configs,
    shard_seed,
    shard_sizes,
)


def micro_sharded_config(shards=3, n_peers=60, seed=11) -> ScenarioConfig:
    config = build_scenario_config("p2", n_peers=n_peers, duration_days=0.02, seed=seed)
    return dataclasses.replace(config, engine="sharded", engine_shards=shards)


class TestShardPlanning:
    def test_sizes_are_near_equal_and_sum(self):
        assert shard_sizes(10, 3) == [4, 3, 3]
        assert shard_sizes(9, 3) == [3, 3, 3]
        assert sum(shard_sizes(101, 4)) == 101

    def test_more_shards_than_peers_drops_empty_shards(self):
        assert shard_sizes(2, 5) == [1, 1]

    def test_seed_stride_is_disjoint_across_shards(self):
        seeds = [shard_seed(7, i) for i in range(8)]
        assert len(set(seeds)) == len(seeds)
        assert all(b - a == SHARD_SEED_STRIDE for a, b in zip(seeds, seeds[1:]))

    def test_shard_configs_are_single_fabric_and_cover_population(self):
        configs = shard_configs(micro_sharded_config())
        assert all(cfg.engine == "vectorized" for cfg in configs)
        assert sum(cfg.population.n_peers for cfg in configs) == 60
        # Population seed must follow the scenario seed: netmodel/faults
        # runtimes derive their RNG from it.
        assert all(cfg.seed == cfg.population.seed for cfg in configs)

    def test_adversarial_configs_are_rejected(self):
        config = build_scenario_config(
            "sybil-netsize-inflation", n_peers=60, duration_days=0.02, seed=11
        )
        config = dataclasses.replace(config, engine="sharded")
        with pytest.raises(ValueError, match="adversaries"):
            run_scenario(config)


class TestShardedDeterminism:
    def test_rerun_is_byte_identical(self):
        config = micro_sharded_config()
        first = run_sharded_scenario(config)
        second = run_sharded_scenario(config)
        assert result_fingerprint(first) == result_fingerprint(second)

    def test_worker_count_never_changes_the_result(self):
        config = micro_sharded_config()
        sequential = run_sharded_scenario(config, workers=1)
        pooled = run_sharded_scenario(config, workers=2)
        assert result_fingerprint(sequential) == result_fingerprint(pooled)

    def test_run_scenario_dispatches_sharded(self):
        config = micro_sharded_config()
        via_dispatch = run_scenario(config)
        direct = run_sharded_scenario(config)
        assert result_fingerprint(via_dispatch) == result_fingerprint(direct)

    def test_merged_result_shape(self):
        config = micro_sharded_config()
        result = run_sharded_scenario(config)
        assert len(result.population.profiles) == 60
        assert result.events_processed > 0
        assert "go-ipfs" in result.datasets
        # Per-timestamp snapshot sums: one merged snapshot per poll tick, not
        # one per shard per tick.
        timestamps = [s.timestamp for s in result.datasets["go-ipfs"].snapshots]
        assert timestamps == sorted(set(timestamps))


class TestMergeUnits:
    def _dataset(self, label, conn_times, snap_conns):
        ds = MeasurementDataset(label=label, started_at=0.0, ended_at=100.0)
        for i, t in enumerate(conn_times):
            pid = f"{label}-peer-{i}"
            ds.peers[pid] = PeerRecord(peer=pid, first_seen=t, last_seen=t + 1)
            ds.connections.append(
                ConnectionRecord(peer=pid, direction="inbound", opened_at=t, closed_at=t + 1)
            )
        for ts, conns in snap_conns:
            ds.snapshots.append(
                SnapshotRecord(
                    timestamp=ts,
                    simultaneous_connections=conns,
                    known_pids=conns,
                    connected_pids=conns,
                )
            )
        return ds

    def test_connections_sorted_and_peers_unioned(self):
        a = self._dataset("a", [5.0, 1.0], [])
        b = self._dataset("b", [3.0], [])
        merged = merge_datasets([a, b], "go-ipfs")
        assert [c.opened_at for c in merged.connections] == [1.0, 3.0, 5.0]
        assert len(merged.peers) == 3

    def test_snapshots_sum_per_timestamp(self):
        a = self._dataset("a", [], [(10.0, 4), (20.0, 6)])
        b = self._dataset("b", [], [(10.0, 1), (30.0, 2)])
        merged = merge_datasets([a, b], "go-ipfs")
        by_ts = {s.timestamp: s.simultaneous_connections for s in merged.snapshots}
        assert by_ts == {10.0: 5, 20.0: 6, 30.0: 2}

    def test_stats_counters_sum_and_dicts_merge(self):
        a = NetModelStats(peers=10, dial_attempts=5, class_counts={"public": 6, "nat": 4})
        b = NetModelStats(peers=20, dial_attempts=7, class_counts={"nat": 20})
        merged = merge_stats([a, b])
        assert merged.peers == 30
        assert merged.dial_attempts == 12
        assert merged.class_counts == {"public": 6, "nat": 24}

    def test_stats_bound_fields_keep_first_value(self):
        a = NetModelStats(rtt_samples=[1.0], max_rtt_samples=10_000)
        b = NetModelStats(rtt_samples=[2.0, 3.0], max_rtt_samples=10_000)
        merged = merge_stats([a, b])
        assert merged.rtt_samples == [1.0, 2.0, 3.0]
        assert merged.max_rtt_samples == 10_000

    def test_optional_float_takes_latest_heal_time(self):
        a = FaultStats(heal_time=50.0)
        b = FaultStats(heal_time=None)
        c = FaultStats(heal_time=80.0)
        assert merge_stats([a, b, c]).heal_time == 80.0
        assert merge_stats([b, b]).heal_time is None

    def test_all_none_stats_merge_to_none(self):
        assert merge_stats([None, None]) is None
