"""Tests for Kademlia keyspace arithmetic."""

import random

import pytest

from repro.kademlia.keys import (
    KEY_BITS,
    bucket_index,
    common_prefix_length,
    key_for_content,
    key_for_peer,
    random_key,
    random_key_in_bucket,
    xor_distance,
)
from repro.libp2p.peer_id import PeerId


class TestXorDistance:
    def test_distance_to_self_is_zero(self):
        key = random_key(random.Random(1))
        assert xor_distance(key, key) == 0

    def test_symmetry(self):
        rng = random.Random(2)
        a, b = random_key(rng), random_key(rng)
        assert xor_distance(a, b) == xor_distance(b, a)

    def test_triangle_inequality_xor_form(self):
        # XOR metric satisfies d(a,c) <= d(a,b) ^ ... actually d(a,c) = d(a,b) XOR d(b,c)
        rng = random.Random(3)
        a, b, c = (random_key(rng) for _ in range(3))
        assert xor_distance(a, c) == xor_distance(a, b) ^ xor_distance(b, c)


class TestPrefixAndBuckets:
    def test_common_prefix_of_identical_keys(self):
        key = random_key(random.Random(4))
        assert common_prefix_length(key, key) == KEY_BITS

    def test_common_prefix_of_complementary_keys(self):
        key = (1 << KEY_BITS) - 1
        assert common_prefix_length(key, 0) == 0

    def test_bucket_index_relationship_with_cpl(self):
        rng = random.Random(5)
        local, remote = random_key(rng), random_key(rng)
        if local != remote:
            assert bucket_index(local, remote) == KEY_BITS - 1 - common_prefix_length(local, remote)

    def test_bucket_index_of_self_rejected(self):
        key = random_key(random.Random(6))
        with pytest.raises(ValueError):
            bucket_index(key, key)

    def test_random_key_in_bucket_lands_in_that_bucket(self):
        rng = random.Random(7)
        local = random_key(rng)
        for index in (0, 1, 10, 100, KEY_BITS - 1):
            target = random_key_in_bucket(local, index, rng)
            assert bucket_index(local, target) == index

    def test_random_key_in_bucket_rejects_bad_index(self):
        with pytest.raises(ValueError):
            random_key_in_bucket(0, KEY_BITS)
        with pytest.raises(ValueError):
            random_key_in_bucket(0, -1)


class TestKeyDerivation:
    def test_key_for_peer_matches_peer_id(self):
        pid = PeerId.random(random.Random(8))
        assert key_for_peer(pid) == pid.kad_key()

    def test_key_for_content_is_deterministic(self):
        assert key_for_content(b"hello") == key_for_content(b"hello")
        assert key_for_content(b"hello") != key_for_content(b"world")

    def test_keys_fit_in_keyspace(self):
        rng = random.Random(9)
        for _ in range(20):
            assert 0 <= random_key(rng) < (1 << KEY_BITS)
