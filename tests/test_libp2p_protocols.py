"""Tests for protocol sets and the protocol registry."""

from repro.libp2p.protocols import (
    BITSWAP_120,
    KAD_DHT,
    SBPTP,
    ProtocolRegistry,
    baseline_protocols,
    crawler_protocols,
    goipfs_protocols,
    hydra_protocols,
    storm_protocols,
    supports_bitswap,
    supports_dht_server,
)


class TestProtocolSets:
    def test_goipfs_server_announces_kad(self):
        assert KAD_DHT in goipfs_protocols(dht_server=True)

    def test_goipfs_client_does_not_announce_kad(self):
        assert KAD_DHT not in goipfs_protocols(dht_server=False)

    def test_goipfs_default_supports_bitswap(self):
        assert supports_bitswap(goipfs_protocols())

    def test_goipfs_without_bitswap(self):
        protocols = goipfs_protocols(bitswap=False)
        assert not supports_bitswap(protocols)

    def test_hydra_serves_dht_but_no_bitswap(self):
        protocols = hydra_protocols()
        assert supports_dht_server(protocols)
        assert not supports_bitswap(protocols)

    def test_crawler_protocols_minimal(self):
        protocols = crawler_protocols()
        assert not supports_dht_server(protocols)
        assert not supports_bitswap(protocols)

    def test_storm_announces_sbptp_instead_of_bitswap(self):
        # The anomaly the paper highlights: go-ipfs 0.8.0 agents without
        # Bitswap but with /sbptp/, matching IPStorm botnet nodes.
        protocols = storm_protocols()
        assert SBPTP in protocols
        assert not supports_bitswap(protocols)
        assert supports_dht_server(protocols)

    def test_baseline_is_subset_of_goipfs(self):
        assert baseline_protocols() <= goipfs_protocols()


class TestProtocolRegistry:
    def test_counts_each_peer_once_per_protocol(self):
        registry = ProtocolRegistry()
        registry.add_peer([KAD_DHT, KAD_DHT, BITSWAP_120])
        registry.add_peer([KAD_DHT])
        counts = registry.counts()
        assert counts[KAD_DHT] == 2
        assert counts[BITSWAP_120] == 1

    def test_grouping_folds_rare_protocols(self):
        registry = ProtocolRegistry()
        for _ in range(10):
            registry.add_peer([KAD_DHT])
        registry.add_peer(["/exotic/1.0.0"])
        grouped = registry.grouped(threshold=1)
        assert "/exotic/1.0.0" not in grouped
        assert grouped["other"] == 1
        assert grouped[KAD_DHT] == 10

    def test_top_orders_by_count(self):
        registry = ProtocolRegistry()
        for _ in range(3):
            registry.add_peer([KAD_DHT])
        registry.add_peer([BITSWAP_120])
        assert registry.top(2) == [KAD_DHT, BITSWAP_120]
