"""Tests for the statistics helpers."""

import math

import pytest

from repro.analysis.stats import (
    StreamingStats,
    SummaryStats,
    median,
    percentile,
    ratio,
    summarize,
)


class TestMedianAndPercentile:
    def test_median_odd_and_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_of_single_value(self):
        assert median([7.0]) == 7.0

    def test_median_of_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_percentile_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 5.0
        assert percentile(data, 50) == 3.0

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_summary_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.total == 10.0
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.stdev == pytest.approx(math.sqrt(1.25))

    def test_summary_of_empty_is_zero(self):
        assert summarize([]) == SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_as_dict(self):
        assert summarize([2.0]).as_dict()["mean"] == 2.0


class TestStreamingStats:
    def test_matches_batch_summary(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        stream = StreamingStats()
        stream.extend(data)
        batch = summarize(data)
        assert stream.count == batch.count
        assert stream.mean == pytest.approx(batch.mean)
        assert stream.stdev == pytest.approx(batch.stdev)
        assert stream.minimum == batch.minimum
        assert stream.maximum == batch.maximum
        assert stream.total == pytest.approx(batch.total)

    def test_merge_equivalent_to_concatenation(self):
        a_data, b_data = [1.0, 2.0, 3.0], [10.0, 20.0]
        a, b = StreamingStats(), StreamingStats()
        a.extend(a_data)
        b.extend(b_data)
        merged = a.merge(b)
        batch = summarize(a_data + b_data)
        assert merged.count == batch.count
        assert merged.mean == pytest.approx(batch.mean)
        assert merged.stdev == pytest.approx(batch.stdev)

    def test_merge_with_empty(self):
        a = StreamingStats()
        a.extend([1.0, 2.0])
        assert a.merge(StreamingStats()).mean == pytest.approx(1.5)
        assert StreamingStats().merge(a).count == 2

    def test_empty_stream_properties(self):
        stream = StreamingStats()
        assert stream.mean == 0.0
        assert stream.variance == 0.0

    def test_as_summary_with_median(self):
        stream = StreamingStats()
        stream.extend([1.0, 2.0, 3.0])
        summary = stream.as_summary(median_value=2.0)
        assert summary.median == 2.0
        assert summary.count == 3


class TestRatio:
    def test_ratio(self):
        assert ratio(10, 4) == 2.5

    def test_ratio_by_zero_returns_default(self):
        assert ratio(10, 0) == 0.0
        assert ratio(10, 0, default=math.inf) == math.inf
