"""The vectorized engine is order-equivalent to the legacy engine.

Property tests drive both engines through identical schedule interleavings —
single events, fire-and-forget drops, bulk timer columns, mid-drain cascades,
cancellations — and assert the fired ``(time, tag)`` streams are *identical*,
including the order of timestamp ties.  Times are drawn from a tiny integer
pool precisely to force tie collisions, which is where batched sequencing
would first go wrong.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.engine import Engine, PeriodicTask
from repro.simulation.vectorized import _COMPACT_THRESHOLD, VectorizedEngine

ENGINES = [Engine, VectorizedEngine]

#: tiny time pool → many (time, seq) ties
tie_times = st.integers(min_value=0, max_value=5).map(float)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("drop"), tie_times),
        st.tuples(st.just("at"), tie_times),
        st.tuples(st.just("bulk"), st.lists(tie_times, max_size=6)),
    ),
    max_size=30,
)


def _apply(engine_cls, ops, end_time=10.0):
    """Run one interleaving on a fresh engine; return the fired event stream."""
    engine = engine_cls()
    log = []
    tags = iter(range(10**9))

    def fire(tag):
        log.append((engine.now, tag))

    for kind, arg in ops:
        if kind == "drop":
            engine.schedule_drop(arg, fire, next(tags))
        elif kind == "at":
            engine.schedule_at(arg, fire, next(tags))
        else:
            engine.schedule_bulk(arg, fire, [next(tags) for _ in arg])
    engine.run_until(end_time)
    return log, engine


@given(operations)
def test_interleavings_fire_in_identical_order(ops):
    legacy, _ = _apply(Engine, ops)
    vectorized, _ = _apply(VectorizedEngine, ops)
    assert legacy == vectorized


@given(operations)
def test_events_processed_and_pending_agree(ops):
    _, legacy = _apply(Engine, ops, end_time=3.0)
    _, vectorized = _apply(VectorizedEngine, ops, end_time=3.0)
    assert legacy.events_processed == vectorized.events_processed
    assert legacy.pending() == vectorized.pending()


@given(st.lists(st.tuples(tie_times, st.integers(0, 2)), min_size=1, max_size=8))
def test_mid_drain_bulk_cascades_match(seeds):
    """Callbacks that bulk-schedule children mid-drain interleave identically."""
    logs = []
    for engine_cls in ENGINES:
        engine = engine_cls()
        log = []
        tags = iter(range(10**9))

        def fire(payload, engine=engine, log=log, tags=tags):
            tag, depth = payload
            log.append((engine.now, tag, depth))
            if depth > 0:
                engine.schedule_bulk(
                    [engine.now, engine.now + 1.0],
                    fire,
                    [(next(tags), depth - 1), (next(tags), depth - 1)],
                )

        for time, depth in seeds:
            engine.schedule_at(time, fire, (next(tags), depth))
        engine.run_until(20.0)
        logs.append(log)
    assert logs[0] == logs[1]


@given(operations, st.lists(st.integers(0, 20), max_size=5))
def test_cancellations_among_drops_match(ops, cancel_picks):
    """Cancellable events mixed into the drop/bulk stream behave identically."""
    logs = []
    for engine_cls in ENGINES:
        engine = engine_cls()
        log = []
        tags = iter(range(10**9))

        def fire(tag, engine=engine, log=log):
            log.append((engine.now, tag))

        handles = []
        for kind, arg in ops:
            if kind == "drop":
                engine.schedule_drop(arg, fire, next(tags))
            elif kind == "at":
                handles.append(engine.schedule_at(arg, fire, next(tags)))
            else:
                engine.schedule_bulk(arg, fire, [next(tags) for _ in arg])
        for pick in cancel_picks:
            if handles:
                handles[pick % len(handles)].cancel()
        engine.run_until(10.0)
        logs.append(log)
    assert logs[0] == logs[1]


class TestVectorizedEngineUnits:
    def test_pending_counts_bulk_remainder(self):
        engine = VectorizedEngine()
        engine.schedule_bulk([1.0, 2.0, 3.0], lambda _: None, ["a", "b", "c"])
        engine.schedule_drop(1.5, lambda: None)
        assert engine.pending() == 4
        engine.run_until(1.6)
        assert engine.pending() == 2

    def test_bulk_length_mismatch_rejected(self):
        for engine_cls in ENGINES:
            with pytest.raises(ValueError):
                engine_cls().schedule_bulk([1.0], lambda _: None, ["a", "b"])

    def test_bulk_past_time_rejected(self):
        for engine_cls in ENGINES:
            engine = engine_cls(start_time=10.0)
            with pytest.raises(ValueError):
                engine.schedule_bulk([5.0], lambda _: None, ["a"])

    def test_drop_negative_delay_rejected(self):
        for engine_cls in ENGINES:
            with pytest.raises(ValueError):
                engine_cls().schedule_drop(-1.0, lambda: None)

    def test_empty_bulk_is_a_no_op(self):
        engine = VectorizedEngine()
        engine.schedule_bulk([], lambda _: None, [])
        assert engine.pending() == 0

    def test_consumed_column_prefix_compacts(self):
        engine = VectorizedEngine()
        n = _COMPACT_THRESHOLD + 500
        engine.schedule_bulk(
            [float(i) for i in range(n)], lambda _: None, list(range(n))
        )
        engine.run_until(float(n))
        assert engine.pending() == 0
        # The consumed prefix was dropped at least once mid-run.
        assert len(engine._bulk_times) < n

    def test_consumed_entries_release_references(self):
        engine = VectorizedEngine()
        engine.schedule_bulk([1.0, 2.0], lambda _: None, ["a", "b"])
        engine.run_until(1.5)
        assert engine._bulk_payloads[engine._bulk_pos - 1] is None
        assert engine._bulk_callbacks[engine._bulk_pos - 1] is None

    def test_periodic_task_runs_and_stops_on_vectorized_engine(self):
        engine = VectorizedEngine()
        ticks = []
        task = PeriodicTask(engine, 1.0, ticks.append)
        engine.run_until(3.5)
        task.stop()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_events_processed_counts_all_representations(self):
        engine = VectorizedEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule_drop(2.0, lambda: None)
        engine.schedule_bulk([3.0], lambda _: None, ["x"])
        engine.run_until(5.0)
        assert engine.events_processed == 3
