"""End-to-end integration tests: scenario → datasets → every analysis.

These tests exercise the full pipeline the benchmarks use and check the
*qualitative* findings of the paper on a small simulated network:
churn dominated by trimming, passive horizons that include clients, PID counts
exceeding simultaneous connections, and a classification whose heavy class is a
small core.
"""


from repro.core.churn import connection_statistics, trim_share
from repro.core.horizon import compare_horizons
from repro.core.metadata import analyze_metadata
from repro.core.netsize import connection_cdfs, estimate_network_size
from repro.core.records import MeasurementDataset
from repro.core.timeseries import connections_over_time, pids_over_time, summarize_timeseries


class TestEndToEndPipeline:
    def test_every_analysis_runs_on_every_dataset(self, small_scenario_result):
        for label, dataset in small_scenario_result.datasets.items():
            churn = connection_statistics(dataset)
            meta = analyze_metadata(dataset)
            sizes = estimate_network_size(dataset)
            cdfs = connection_cdfs(dataset)
            assert churn.all_stats.count >= 0
            assert meta.agents.total_peers == dataset.pid_count()
            assert sizes.total_pids == dataset.pid_count()
            assert set(cdfs) == {"all", "dht-server", "dht-client"}

    def test_trimming_dominates_connection_closes(self, small_scenario_result):
        report = connection_statistics(small_scenario_result.dataset("go-ipfs"))
        # The paper's headline churn finding: connection churn is driven by
        # trimming, not by node churn.
        assert trim_share(report) > 0.3

    def test_passive_horizon_includes_clients_crawler_does_not(self, small_scenario_result):
        comparison = compare_horizons(
            {
                "go-ipfs": small_scenario_result.dataset("go-ipfs"),
                "hydra": small_scenario_result.dataset("hydra"),
            },
            crawler_range=small_scenario_result.crawls.range(),
        )
        assert comparison.passive_sees_clients()
        assert comparison.crawler is not None
        assert comparison.crawler.crawls >= 1

    def test_hydra_union_at_least_matches_best_head(self, small_scenario_result):
        union = small_scenario_result.dataset("hydra")
        heads = small_scenario_result.hydra_heads()
        assert union.pid_count() >= max(h.pid_count() for h in heads)

    def test_pids_exceed_simultaneous_connections(self, small_scenario_result):
        summary = summarize_timeseries(small_scenario_result.dataset("go-ipfs"))
        assert summary.pids_per_simultaneous_connection > 1.0

    def test_pid_growth_is_monotone(self, small_scenario_result):
        series = pids_over_time(small_scenario_result.dataset("go-ipfs"), step=1800.0)
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_connection_series_has_expected_sampling(self, small_scenario_result):
        series = connections_over_time(small_scenario_result.dataset("go-ipfs"), limit=None)
        assert len(series) == len(small_scenario_result.dataset("go-ipfs").snapshots)

    def test_heavy_class_is_a_minority_core(self, small_scenario_result):
        report = estimate_network_size(small_scenario_result.dataset("go-ipfs"))
        heavy = report.classification.core_size
        classified = report.classification.classified_peers
        # a quarter-day run cannot produce >24 h connections, so heavy must be 0;
        # the classes still partition the classified peers
        assert heavy == 0
        assert sum(c.peers for c in report.classification.counts.values()) == classified

    def test_multiaddr_grouping_collapses_shared_ips(self, small_scenario_result):
        report = estimate_network_size(small_scenario_result.dataset("hydra"))
        assert report.multiaddr.groups <= report.multiaddr.connected_pids
        assert report.multiaddr.largest_group_size >= 1

    def test_dataset_json_round_trip_preserves_analysis(self, small_scenario_result):
        dataset = small_scenario_result.dataset("go-ipfs")
        restored = MeasurementDataset.from_json(dataset.to_json())
        original = connection_statistics(dataset)
        round_tripped = connection_statistics(restored)
        assert original.all_stats == round_tripped.all_stats
        assert original.peer_stats == round_tripped.peer_stats


class TestClientVantage:
    def test_p3_client_sees_fewer_peers_than_p2_server(
        self, small_scenario_result, small_p3_result
    ):
        server_pids = small_scenario_result.dataset("go-ipfs").pid_count()
        client_pids = small_p3_result.dataset("go-ipfs").pid_count()
        assert client_pids < server_pids

    def test_p3_durations_are_short(self, small_p3_result, small_scenario_result):
        p3 = connection_statistics(small_p3_result.dataset("go-ipfs"))
        p2 = connection_statistics(small_scenario_result.dataset("go-ipfs"))
        assert p3.peer_stats.average < p2.peer_stats.average
