"""Tests for text tables and ASCII charts."""

import pytest

from repro.analysis.plots import ascii_bar_chart, ascii_series, downsample, sparkline
from repro.analysis.tables import TextTable, format_count, format_seconds


class TestFormatting:
    def test_format_seconds_uses_paper_style(self):
        assert format_seconds(3017.252) == "3'017.252 s"
        assert format_seconds(73.732) == "73.732 s"

    def test_format_count(self):
        assert format_count(1285513) == "1'285'513"
        assert format_count(42.0) == "42"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(headers=["Period", "Sum"], title="Table II")
        table.add_row("P0", 123)
        table.add_row("P2", 456789)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "Table II"
        assert "Period" in lines[1]
        assert all("|" in line for line in lines[3:])

    def test_row_arity_checked(self):
        table = TextTable(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_add_rows(self):
        table = TextTable(headers=["a"])
        table.add_rows([["1"], ["2"]])
        assert len(table.rows) == 2


class TestPlots:
    def test_sparkline_length_and_extremes(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == " "
        assert line[-1] == "█"

    def test_sparkline_constant_series(self):
        assert sparkline([5.0, 5.0]) == "▄▄"
        assert sparkline([]) == ""

    def test_bar_chart_contains_labels_and_bars(self):
        chart = ascii_bar_chart({"go-ipfs 0.11.0": 100, "storm": 10})
        lines = chart.splitlines()
        assert lines[0].startswith("go-ipfs 0.11.0")
        assert "#" in lines[1]

    def test_bar_chart_empty(self):
        assert ascii_bar_chart({}) == "(empty)"

    def test_series_renders_one_line_per_series(self):
        output = ascii_series({"a": [(0, 1.0), (1, 2.0)], "b": [(0, 5.0)]})
        assert len(output.splitlines()) == 2

    def test_downsample_keeps_ends(self):
        points = [(float(i), float(i)) for i in range(100)]
        sampled = downsample(points, 10)
        assert len(sampled) == 10
        assert sampled[0] == (0.0, 0.0)
        assert sampled[-1] == (99.0, 99.0)

    def test_downsample_short_series_untouched(self):
        points = [(0.0, 1.0)]
        assert downsample(points, 10) == points

    def test_downsample_requires_positive_samples(self):
        with pytest.raises(ValueError):
            downsample([(0.0, 1.0)], 0)
