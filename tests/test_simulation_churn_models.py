"""Tests for the session/duration distributions and the churn model library."""

import math
import random

import pytest

from repro.simulation.churn_models import (
    DAY,
    HOUR,
    MINUTE,
    DiurnalChurnModel,
    ExponentialDistribution,
    FixedDistribution,
    FlashCrowdChurnModel,
    LogNormalDistribution,
    MassOutageChurnModel,
    ParetoDistribution,
    SessionModel,
    TraceReplayChurnModel,
    UniformDistribution,
    WeibullDistribution,
    always_on_session,
    light_session,
    normal_session,
    one_time_session,
    pareto_session,
)


class TestDistributions:
    def test_fixed(self, rng):
        dist = FixedDistribution(42.0)
        assert dist.sample(rng) == 42.0
        assert dist.mean() == 42.0

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedDistribution(-1.0)

    def test_uniform_within_bounds(self, rng):
        dist = UniformDistribution(10.0, 20.0)
        for _ in range(100):
            assert 10.0 <= dist.sample(rng) <= 20.0
        assert dist.mean() == 15.0

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformDistribution(20.0, 10.0)

    def test_exponential_mean_close_to_parameter(self, rng):
        dist = ExponentialDistribution(100.0)
        samples = [dist.sample(rng) for _ in range(5000)]
        assert abs(sum(samples) / len(samples) - 100.0) < 10.0

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            ExponentialDistribution(0.0)

    def test_weibull_mean_formula(self, rng):
        dist = WeibullDistribution(scale=100.0, shape=1.0)  # reduces to exponential
        assert abs(dist.mean() - 100.0) < 1e-9
        samples = [dist.sample(rng) for _ in range(5000)]
        assert abs(sum(samples) / len(samples) - 100.0) < 10.0

    def test_lognormal_from_median(self, rng):
        dist = LogNormalDistribution.from_median_and_sigma(3600.0, 0.5)
        samples = sorted(dist.sample(rng) for _ in range(5001))
        median = samples[len(samples) // 2]
        assert 0.8 * 3600.0 < median < 1.2 * 3600.0
        assert dist.mean() > 3600.0  # log-normal mean exceeds the median

    def test_pareto_mean(self):
        dist = ParetoDistribution(xm=10.0, alpha=2.0)
        assert dist.mean() == 20.0
        assert ParetoDistribution(xm=10.0, alpha=0.5).mean() == float("inf")

    def test_all_samples_non_negative(self, rng):
        distributions = [
            UniformDistribution(0.0, 5.0),
            ExponentialDistribution(5.0),
            WeibullDistribution(5.0, 0.7),
            LogNormalDistribution(1.0, 1.0),
            ParetoDistribution(1.0, 1.5),
        ]
        for dist in distributions:
            for _ in range(200):
                assert dist.sample(rng) >= 0.0


class TestSessionModels:
    def test_initial_state_respects_probability(self):
        model = SessionModel(
            uptime=FixedDistribution(10.0),
            downtime=FixedDistribution(20.0),
            initially_online_probability=1.0,
        )
        online, duration = model.initial_state(random.Random(0))
        assert online
        assert duration == 10.0

        model_offline = SessionModel(
            uptime=FixedDistribution(10.0),
            downtime=FixedDistribution(20.0),
            initially_online_probability=0.0,
        )
        online, duration = model_offline.initial_state(random.Random(0))
        assert not online
        assert duration == 20.0

    def test_heavy_sessions_outlast_measurements(self, rng):
        model = always_on_session()
        assert model.initially_online_probability == 1.0
        assert model.uptime.mean() > 3 * DAY

    def test_one_time_sessions_are_bounded(self, rng):
        model = one_time_session()
        assert model.max_sessions in (1, 2)
        assert model.uptime.mean() < 2 * HOUR

    def test_class_session_means_are_ordered(self):
        # heavy stays longest, then normal, then light, then one-time
        heavy = always_on_session().uptime.mean()
        normal = normal_session().uptime.mean()
        light = light_session().uptime.mean()
        once = one_time_session().uptime.mean()
        assert heavy > normal > light
        assert normal > once


def _all_churn_models():
    """One instance of every churn model, for the shared property checks."""
    base = SessionModel(
        uptime=ExponentialDistribution(2 * HOUR),
        downtime=ExponentialDistribution(4 * HOUR),
    )
    return [
        base,
        pareto_session(2 * HOUR, 4 * HOUR, alpha=2.5),
        DiurnalChurnModel(base=base, amplitude=0.6),
        FlashCrowdChurnModel(base=base, burst_start=2 * HOUR, burst_duration=1 * HOUR),
        MassOutageChurnModel(base=base, outage_start=6 * HOUR, outage_duration=2 * HOUR),
        TraceReplayChurnModel(
            sessions=[120.0, 3600.0, 900.0], intersessions=[600.0, 7200.0]
        ),
    ]


class TestChurnModelProperties:
    """Seeded-random property checks shared by every model in the library."""

    @pytest.mark.parametrize("model_index", range(len(_all_churn_models())))
    def test_samples_positive_and_finite(self, model_index):
        model = _all_churn_models()[model_index]
        rng = random.Random(1234 + model_index)
        for _ in range(500):
            now = rng.uniform(0.0, 2 * DAY)
            up = model.next_uptime(rng, now)
            down = model.next_downtime(rng, now)
            assert up > 0 and math.isfinite(up)
            assert down > 0 and math.isfinite(down)

    @pytest.mark.parametrize("model_index", range(len(_all_churn_models())))
    def test_initial_state_duration_positive(self, model_index):
        model = _all_churn_models()[model_index]
        rng = random.Random(99 + model_index)
        for _ in range(100):
            online, duration = model.initial_state(rng)
            assert isinstance(online, bool)
            assert duration > 0 and math.isfinite(duration)

    @pytest.mark.parametrize("model_index", range(len(_all_churn_models())))
    def test_max_sessions_exposed(self, model_index):
        model = _all_churn_models()[model_index]
        assert model.max_sessions is None or model.max_sessions >= 1

    def test_pareto_session_matches_configured_means(self):
        model = pareto_session(1000.0, 500.0, alpha=3.0)
        rng = random.Random(42)
        ups = [model.next_uptime(rng) for _ in range(20_000)]
        downs = [model.next_downtime(rng) for _ in range(20_000)]
        assert sum(ups) / len(ups) == pytest.approx(1000.0, rel=0.10)
        assert sum(downs) / len(downs) == pytest.approx(500.0, rel=0.10)

    def test_pareto_session_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            pareto_session(100.0, 100.0, alpha=1.0)
        with pytest.raises(ValueError):
            pareto_session(-1.0, 100.0, alpha=2.0)


class TestDiurnalChurnModel:
    def test_uptime_mean_preserved_over_full_cycle(self):
        base = SessionModel(
            uptime=FixedDistribution(1000.0), downtime=FixedDistribution(1000.0)
        )
        model = DiurnalChurnModel(base=base, amplitude=0.6)
        rng = random.Random(7)
        samples = [model.next_uptime(rng, rng.uniform(0.0, DAY)) for _ in range(8000)]
        assert sum(samples) / len(samples) == pytest.approx(1000.0, rel=0.03)

    def test_downtime_shorter_at_peak_than_trough(self):
        base = SessionModel(
            uptime=FixedDistribution(1000.0), downtime=FixedDistribution(1000.0)
        )
        model = DiurnalChurnModel(base=base, amplitude=0.6, peak_time=18 * HOUR)
        rng = random.Random(7)
        at_peak = model.next_downtime(rng, 18 * HOUR)
        at_trough = model.next_downtime(rng, 6 * HOUR)
        assert at_peak == pytest.approx(1000.0 / 1.6)
        assert at_trough == pytest.approx(1000.0 / 0.4)
        assert model.activity(18 * HOUR) == pytest.approx(1.6)
        assert model.activity(6 * HOUR) == pytest.approx(0.4)

    def test_rejects_amplitude_outside_unit_interval(self):
        base = normal_session()
        with pytest.raises(ValueError):
            DiurnalChurnModel(base=base, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalChurnModel(base=base, amplitude=-0.1)


class TestFlashCrowdChurnModel:
    def _model(self, **kwargs):
        base = SessionModel(
            uptime=FixedDistribution(600.0), downtime=FixedDistribution(1200.0)
        )
        defaults = dict(base=base, burst_start=1 * HOUR, burst_duration=1 * HOUR)
        defaults.update(kwargs)
        return FlashCrowdChurnModel(**defaults)

    def test_downtime_accelerated_only_inside_burst(self):
        model = self._model(intensity=6.0)
        rng = random.Random(3)
        assert model.next_downtime(rng, 0.0) == pytest.approx(1200.0)
        assert model.next_downtime(rng, 1.5 * HOUR) == pytest.approx(200.0)
        assert model.next_downtime(rng, 3 * HOUR) == pytest.approx(1200.0)

    def test_arrivals_concentrate_in_burst(self):
        model = self._model(arrival_share=1.0)
        rng = random.Random(5)
        for _ in range(200):
            arrival = model.arrival_time(rng, duration=4 * HOUR)
            assert 1 * HOUR <= arrival < 2 * HOUR

    def test_arrivals_spread_without_share(self):
        model = self._model(arrival_share=0.0)
        rng = random.Random(5)
        arrivals = [model.arrival_time(rng, duration=4 * HOUR) for _ in range(500)]
        assert min(arrivals) < 1 * HOUR  # some land before the burst
        assert all(0.0 <= a <= 4 * HOUR * 0.95 for a in arrivals)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            self._model(intensity=0.5)
        with pytest.raises(ValueError):
            self._model(burst_duration=0.0)
        with pytest.raises(ValueError):
            self._model(arrival_share=1.5)


class TestMassOutageChurnModel:
    def _model(self, **kwargs):
        base = SessionModel(
            uptime=FixedDistribution(1000.0), downtime=FixedDistribution(100.0)
        )
        defaults = dict(
            base=base, outage_start=500.0, outage_duration=300.0, recovery_spread=50.0
        )
        defaults.update(kwargs)
        return MassOutageChurnModel(**defaults)

    def test_uptime_truncated_at_outage_start(self):
        model = self._model()
        rng = random.Random(1)
        assert model.next_uptime(rng, 0.0) == pytest.approx(500.0)
        # far enough before the outage that the session ends naturally
        assert model.next_uptime(rng, 2000.0) == pytest.approx(1000.0)

    def test_online_mid_outage_only_flaps(self):
        model = self._model()
        rng = random.Random(1)
        assert model.next_uptime(rng, 600.0) == pytest.approx(MINUTE)

    def test_downtime_extended_past_outage_end(self):
        model = self._model()
        rng = random.Random(1)
        # would end at 550, inside the outage: pushed past 800 (+ jitter <= 50)
        extended = model.next_downtime(rng, 450.0)
        assert 350.0 <= extended <= 400.0
        # after the outage everything is back to normal
        assert model.next_downtime(rng, 900.0) == pytest.approx(100.0)

    def test_initial_session_cannot_span_outage_start(self):
        base = SessionModel(
            uptime=FixedDistribution(10_000.0),
            downtime=FixedDistribution(100.0),
            initially_online_probability=1.0,
        )
        model = MassOutageChurnModel(base=base, outage_start=500.0, outage_duration=300.0)
        online, duration = model.initial_state(random.Random(2))
        assert online
        assert duration <= 500.0


class TestTraceReplayChurnModel:
    def test_replays_and_cycles(self):
        model = TraceReplayChurnModel(sessions=[10.0, 20.0], intersessions=[5.0])
        rng = random.Random(0)
        assert [model.next_uptime(rng) for _ in range(4)] == [10.0, 20.0, 10.0, 20.0]
        assert [model.next_downtime(rng) for _ in range(3)] == [5.0, 5.0, 5.0]
        assert model.mean_uptime() == pytest.approx(15.0)
        assert model.mean_downtime() == pytest.approx(5.0)

    def test_spawn_gives_independent_cursors(self):
        trace = TraceReplayChurnModel(sessions=[1.0, 2.0, 3.0], intersessions=[4.0, 5.0])
        rng = random.Random(9)
        spawned = [trace.spawn(rng) for _ in range(20)]
        firsts = {model.next_uptime(rng) for model in spawned}
        assert len(firsts) > 1  # different offsets actually happen
        # the parent's cursor is untouched by spawning
        assert trace.next_uptime(rng) == 1.0

    def test_from_csv_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("session,intersession\n120.5,600\n3600,7200.25\n")
        model = TraceReplayChurnModel.from_csv(str(path))
        rng = random.Random(0)
        assert model.next_uptime(rng) == pytest.approx(120.5)
        assert model.next_uptime(rng) == pytest.approx(3600.0)
        assert model.next_downtime(rng) == pytest.approx(600.0)
        assert model.next_downtime(rng) == pytest.approx(7200.25)

    def test_from_csv_rejects_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("uptime,downtime\n1,2\n")
        with pytest.raises(ValueError, match="'session'.*'intersession'"):
            TraceReplayChurnModel.from_csv(str(path))

    def test_from_csv_names_one_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("session,downtime\n1,2\n")
        with pytest.raises(ValueError, match="missing column.*'intersession'") as excinfo:
            TraceReplayChurnModel.from_csv(str(path))
        assert "'session'" not in str(excinfo.value).split("found")[0]

    def test_from_csv_rejects_an_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            TraceReplayChurnModel.from_csv(str(path))

    def test_from_csv_rejects_a_header_only_file(self, tmp_path):
        path = tmp_path / "headers.csv"
        path.write_text("session,intersession\n")
        with pytest.raises(ValueError, match="no data rows"):
            TraceReplayChurnModel.from_csv(str(path))

    def test_from_csv_names_row_and_column_of_bad_values(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("session,intersession\n120,600\nfast,7200\n")
        with pytest.raises(ValueError, match=r"row 3, column 'session'.*'fast'"):
            TraceReplayChurnModel.from_csv(str(path))

    def test_from_csv_names_row_of_short_rows(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("session,intersession\n120,600\n3600\n")
        with pytest.raises(ValueError, match=r"row 3, column 'intersession'.*None"):
            TraceReplayChurnModel.from_csv(str(path))

    def test_rejects_non_positive_intervals(self):
        with pytest.raises(ValueError):
            TraceReplayChurnModel(sessions=[0.0], intersessions=[5.0])
        with pytest.raises(ValueError):
            TraceReplayChurnModel(sessions=[], intersessions=[5.0])
        with pytest.raises(ValueError):
            TraceReplayChurnModel(sessions=[float("inf")], intersessions=[5.0])
