"""Tests for the session/duration distributions."""

import random

import pytest

from repro.simulation.churn_models import (
    DAY,
    HOUR,
    ExponentialDistribution,
    FixedDistribution,
    LogNormalDistribution,
    ParetoDistribution,
    SessionModel,
    UniformDistribution,
    WeibullDistribution,
    always_on_session,
    light_session,
    normal_session,
    one_time_session,
)


class TestDistributions:
    def test_fixed(self, rng):
        dist = FixedDistribution(42.0)
        assert dist.sample(rng) == 42.0
        assert dist.mean() == 42.0

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedDistribution(-1.0)

    def test_uniform_within_bounds(self, rng):
        dist = UniformDistribution(10.0, 20.0)
        for _ in range(100):
            assert 10.0 <= dist.sample(rng) <= 20.0
        assert dist.mean() == 15.0

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformDistribution(20.0, 10.0)

    def test_exponential_mean_close_to_parameter(self, rng):
        dist = ExponentialDistribution(100.0)
        samples = [dist.sample(rng) for _ in range(5000)]
        assert abs(sum(samples) / len(samples) - 100.0) < 10.0

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            ExponentialDistribution(0.0)

    def test_weibull_mean_formula(self, rng):
        dist = WeibullDistribution(scale=100.0, shape=1.0)  # reduces to exponential
        assert abs(dist.mean() - 100.0) < 1e-9
        samples = [dist.sample(rng) for _ in range(5000)]
        assert abs(sum(samples) / len(samples) - 100.0) < 10.0

    def test_lognormal_from_median(self, rng):
        dist = LogNormalDistribution.from_median_and_sigma(3600.0, 0.5)
        samples = sorted(dist.sample(rng) for _ in range(5001))
        median = samples[len(samples) // 2]
        assert 0.8 * 3600.0 < median < 1.2 * 3600.0
        assert dist.mean() > 3600.0  # log-normal mean exceeds the median

    def test_pareto_mean(self):
        dist = ParetoDistribution(xm=10.0, alpha=2.0)
        assert dist.mean() == 20.0
        assert ParetoDistribution(xm=10.0, alpha=0.5).mean() == float("inf")

    def test_all_samples_non_negative(self, rng):
        distributions = [
            UniformDistribution(0.0, 5.0),
            ExponentialDistribution(5.0),
            WeibullDistribution(5.0, 0.7),
            LogNormalDistribution(1.0, 1.0),
            ParetoDistribution(1.0, 1.5),
        ]
        for dist in distributions:
            for _ in range(200):
                assert dist.sample(rng) >= 0.0


class TestSessionModels:
    def test_initial_state_respects_probability(self):
        model = SessionModel(
            uptime=FixedDistribution(10.0),
            downtime=FixedDistribution(20.0),
            initially_online_probability=1.0,
        )
        online, duration = model.initial_state(random.Random(0))
        assert online
        assert duration == 10.0

        model_offline = SessionModel(
            uptime=FixedDistribution(10.0),
            downtime=FixedDistribution(20.0),
            initially_online_probability=0.0,
        )
        online, duration = model_offline.initial_state(random.Random(0))
        assert not online
        assert duration == 20.0

    def test_heavy_sessions_outlast_measurements(self, rng):
        model = always_on_session()
        assert model.initially_online_probability == 1.0
        assert model.uptime.mean() > 3 * DAY

    def test_one_time_sessions_are_bounded(self, rng):
        model = one_time_session()
        assert model.max_sessions in (1, 2)
        assert model.uptime.mean() < 2 * HOUR

    def test_class_session_means_are_ordered(self):
        # heavy stays longest, then normal, then light, then one-time
        heavy = always_on_session().uptime.mean()
        normal = normal_session().uptime.mean()
        light = light_session().uptime.mean()
        once = one_time_session().uptime.mean()
        assert heavy > normal > light
        assert normal > once
