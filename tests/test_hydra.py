"""Tests for the hydra-booster model."""

import random

import pytest

from repro.hydra.head import HYDRA_AGENT_VERSION, HydraHead
from repro.hydra.hydra import Belly, HydraNode
from repro.libp2p.connection import CloseReason
from repro.libp2p.identify import IdentifyRecord
from repro.libp2p.multiaddr import Multiaddr
from repro.libp2p.peer_id import PeerId
from repro.libp2p.protocols import IPFS_ID, KAD_DHT


class TestHydraHead:
    def test_head_is_dht_server_with_hydra_agent(self):
        head = HydraHead(0, rng=random.Random(1))
        record = head.own_identify_record()
        assert record.agent_version == HYDRA_AGENT_VERSION
        assert record.is_dht_server()
        assert not record.has_bitswap()

    def test_heads_have_distinct_identities_and_ports(self):
        rng = random.Random(2)
        heads = [HydraHead(i, rng=rng) for i in range(3)]
        assert len({h.peer_id for h in heads}) == 3
        assert [h.port for h in heads] == [3001, 3002, 3003]

    def test_head_connection_lifecycle(self, rng):
        head = HydraHead(0, rng=random.Random(3), low_water=2, high_water=3)
        remote = PeerId.random(rng)
        conn = head.handle_inbound_connection(remote, Multiaddr.tcp("5.5.5.5"), 0.0)
        assert head.connection_count() == 1
        head.close_connection(conn, CloseReason.REMOTE_LEFT, 1.0)
        assert head.connection_count() == 0
        assert not head.peerstore.get(remote).connected

    def test_head_identify_updates_routing_table(self, rng):
        head = HydraHead(0, rng=random.Random(4))
        remote = PeerId.random(rng)
        head.handle_inbound_connection(remote, Multiaddr.tcp("5.5.5.5"), 0.0)
        head.receive_identify(
            remote, IdentifyRecord.make("go-ipfs/0.11.0", {IPFS_ID, KAD_DHT}), 1.0
        )
        assert remote in head.dht.routing_table

    def test_head_trim_with_small_watermarks(self, rng):
        head = HydraHead(0, rng=random.Random(5), low_water=2, high_water=3)
        head.swarm.connmgr.config = head.swarm.connmgr.config.__class__(
            low_water=2, high_water=3, grace_period=0.0, silence_period=0.0
        )
        for _ in range(6):
            head.handle_inbound_connection(PeerId.random(rng), Multiaddr.tcp("5.5.5.5"), 0.0)
        assert len(head.tick(now=100.0)) == 4


class TestHydraNode:
    def test_requires_at_least_one_head(self):
        with pytest.raises(ValueError):
            HydraNode(0)

    def test_union_of_heads(self, rng):
        hydra = HydraNode(2, rng=random.Random(6))
        a, b = PeerId.random(rng), PeerId.random(rng)
        hydra.head(0).handle_inbound_connection(a, Multiaddr.tcp("1.1.1.1"), 0.0)
        hydra.head(1).handle_inbound_connection(b, Multiaddr.tcp("2.2.2.2"), 0.0)
        hydra.head(1).handle_inbound_connection(a, Multiaddr.tcp("1.1.1.1"), 0.0)
        assert hydra.union_known_peers() == {a, b}
        assert hydra.total_connections() == 3

    def test_union_dht_servers(self, rng):
        hydra = HydraNode(2, rng=random.Random(7))
        server = PeerId.random(rng)
        hydra.head(0).receive_identify(
            server, IdentifyRecord.make("go-ipfs/0.11.0", {IPFS_ID, KAD_DHT}), 0.0
        )
        assert hydra.union_dht_servers() == {server}

    def test_shared_belly(self, rng):
        hydra = HydraNode(3, rng=random.Random(8))
        provider = PeerId.random(rng)
        hydra.store_provider_record("some-cid", provider)
        assert hydra.belly.providers_for("some-cid") == {provider}
        assert hydra.belly.record_count() == 1

    def test_belly_ipns(self):
        belly = Belly()
        belly.put_ipns("name", b"record")
        assert belly.get_ipns("name") == b"record"
        assert belly.get_ipns("missing") is None

    def test_shutdown_closes_all_heads(self, rng):
        hydra = HydraNode(2, rng=random.Random(9))
        for head in hydra.heads:
            head.handle_inbound_connection(PeerId.random(rng), Multiaddr.tcp("3.3.3.3"), 0.0)
        hydra.shutdown(now=10.0)
        assert hydra.total_connections() == 0

    def test_custom_watermarks_propagate(self):
        hydra = HydraNode(2, rng=random.Random(10), low_water=7, high_water=9)
        for head in hydra.heads:
            assert head.swarm.connmgr.config.low_water == 7
            assert head.swarm.connmgr.config.high_water == 9
