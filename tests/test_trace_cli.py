"""CLI tests: ``repro.obs.critical_path`` and the metrics-report entry point.

Both are pure post-processing over exported JSONL artifacts, so the tests
drive them over handcrafted files (plus one real traced run for the
critical-path tree) and assert the printed shape, the deterministic
ordering, and the exit-2 validation paths.
"""

import json

import pytest

from repro.analysis.metrics_report import main as metrics_main
from repro.obs.critical_path import main as critical_main
from repro.obs.spans import SpanTracer, TraceConfig
from repro.obs.trace_export import write_traces

import types


def traces_file(tmp_path):
    """A small deterministic traces.jsonl: two retrieves and one identify."""
    tracer = SpanTracer(TraceConfig(), types.SimpleNamespace(now=0.0))
    tracer.begin("content.retrieve", 0)
    tracer.push("walk", "walk")
    tracer.rpc("find_node", 1.5, "ok", rtt=1.5)
    tracer.pop(1.5, hops=1)
    tracer.transfer(0.5, 0.25, 0.75, 1.5, 4096)
    tracer.finish_root(3.0, providers=1)
    tracer.begin("content.retrieve", 1)
    tracer.rpc("find_node", 5.0, "dial_fail")
    tracer.finish_root(5.0, failed=True)
    assert tracer.begin_identify("go-ipfs", 2)
    tracer.finish_identify(2.0, 1.5, [("netmodel", 0.5)], "go-ipfs")
    path = tmp_path / "traces.jsonl"
    write_traces(tracer.finalize(0.0).traces, str(path))
    return path


class TestCriticalPathCLI:
    def test_prints_slowest_first_as_indented_trees(self, tmp_path, capsys):
        path = traces_file(tmp_path)
        assert critical_main([str(path)]) == 0
        out = capsys.readouterr().out
        blocks = out.strip().split("\n\n")
        assert len(blocks) == 3
        # Slowest first: the 5s failed retrieve ahead of the 3s one.
        assert blocks[0].startswith(
            "#1 content.retrieve key=content.retrieve:1:1 5.000000s outcome=fail"
        )
        assert "#2 content.retrieve" in blocks[1]
        assert "#3 identify" in blocks[2]
        # The tree is indented, leaves carry categories and annotations.
        assert "  [op] content.retrieve" in blocks[0]
        assert "[dial] find_node  (outcome=dial_fail)" in blocks[0]
        assert "[transfer] transfer  (size=4096)" in blocks[1]
        assert "      " in blocks[1]  # transfer components nest two deep
        # Every block closes with its attribution line.
        for block in blocks:
            assert "critical path: " in block

    def test_attribution_line_sums_the_categories(self, tmp_path, capsys):
        path = traces_file(tmp_path)
        assert critical_main([str(path), "--top", "1", "--op", "identify"]) == 0
        out = capsys.readouterr().out
        assert "critical path: other=1.500000s walk=0.500000s" in out

    def test_top_and_op_filters(self, tmp_path, capsys):
        path = traces_file(tmp_path)
        assert critical_main([str(path), "--top", "1"]) == 0
        assert capsys.readouterr().out.count("#") == 1
        assert critical_main([str(path), "--op", "content.provide"]) == 0
        assert capsys.readouterr().out.strip() == "no matching traces"

    def test_rejects_bad_top_and_missing_file(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            critical_main([str(tmp_path / "traces.jsonl"), "--top", "0"])
        assert excinfo.value.code == 2
        assert "--top must be positive, got 0" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            critical_main([str(tmp_path / "absent.jsonl")])
        assert excinfo.value.code == 2
        assert "cannot read" in capsys.readouterr().err


def metrics_file(tmp_path, n_windows=3):
    """A handcrafted metrics.jsonl in the hub's export shape."""
    from repro.obs.hub import DEFAULT_TIME_BUCKETS

    lines = []
    for index in range(n_windows):
        # 10 observations per window, all inside the (0.1, 0.25] bucket.
        buckets = [0] * (len(DEFAULT_TIME_BUCKETS) + 1)
        buckets[2] = 10
        lines.append({
            "index": index,
            "start": index * 120.0,
            "end": (index + 1) * 120.0,
            "counters": {"rpc.sent": 5 * (index + 1), "rpc.lost": 1},
            "gauges": {},
            "histograms": {
                "walk.seconds": {"count": 10, "sum": 2.0, "buckets": buckets},
            },
        })
    path = tmp_path / "metrics.jsonl"
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))
    return path


class TestMetricsReportCLI:
    def test_summarizes_windows_counters_and_percentiles(self, tmp_path, capsys):
        path = metrics_file(tmp_path)
        assert metrics_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "windows: 3" in out
        assert "window_seconds: 120" in out
        assert "histogram observations: 30" in out
        # Counters rank by run total, descending: 5+10+15 beats 3x1.
        assert out.index("rpc.sent: 30") < out.index("rpc.lost: 3")
        assert "top counters (2 of 2):" in out
        # All mass in (0.1, 0.25]: every percentile interpolates inside it.
        assert "walk.seconds: count=30 p50=0.175 p90=0.235 p99=0.2485" in out

    def test_top_limits_the_counter_list(self, tmp_path, capsys):
        path = metrics_file(tmp_path)
        assert metrics_main([str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "top counters (1 of 2):" in out
        assert "rpc.lost" not in out

    def test_empty_series_prints_zeroes(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        path.write_text("")
        assert metrics_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "windows: 0" in out
        assert "histogram observations: 0" in out

    def test_rejects_bad_top_and_missing_file(self, tmp_path, capsys):
        path = metrics_file(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            metrics_main([str(path), "--top", "0"])
        assert excinfo.value.code == 2
        assert "--top must be positive, got 0" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            metrics_main([str(tmp_path / "absent.jsonl")])
        assert excinfo.value.code == 2
        assert "cannot read" in capsys.readouterr().err
