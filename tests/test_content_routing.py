"""End-to-end tests for the content-routing subsystem.

Three layers, mirroring the real stack:

* the DHT layer — iterative PROVIDE / FIND_PROVIDERS against a mesh of
  :class:`KademliaNode` servers,
* the node layer — :class:`IpfsNode` publishing a block and another node
  resolving the provider, dialling it, and fetching the block through the
  Bitswap ledgers, and
* the simulation layer — the Zipf publish/retrieve workload of the content
  scenarios, including the pinned micro-scale golden for ``provide-churn``
  and the success-decay signature of ``provider-record-expiry``.
"""

import random

import pytest

from repro.kademlia.dht import DHTMode, KademliaNode
from repro.kademlia.keys import key_for_content, key_for_peer, xor_distance
from repro.libp2p.multiaddr import Multiaddr
from repro.libp2p.peer_id import PeerId
from repro.ipfs.node import IpfsNode
from repro.scenarios import run_scenario_by_name
from repro.simulation.content import ContentRoutingConfig, ZipfCatalog

NOW = 1_000.0


def build_server_mesh(n=14, seed=3):
    """A fully-meshed set of DHT servers, keyed by PeerId."""
    rng = random.Random(seed)
    nodes = [KademliaNode(PeerId.random(rng)) for _ in range(n)]
    for node in nodes:
        for other in nodes:
            if other is not node:
                node.routing_table.add_peer(other.peer_id)
    return {node.peer_id: node for node in nodes}


def mesh_query(mesh):
    return lambda remote, target, count: (
        mesh[remote].handle_find_node(target, count) if remote in mesh else None
    )


def mesh_add_provider(mesh):
    return lambda remote, key, provider: (
        mesh[remote].handle_add_provider(key, provider, NOW) if remote in mesh else None
    )


def mesh_get_providers(mesh, now=NOW):
    return lambda remote, key: (
        mesh[remote].handle_get_providers(key, now) if remote in mesh else None
    )


class TestDhtContentRouting:
    def test_provide_stores_on_the_closest_servers(self):
        mesh = build_server_mesh()
        publisher = KademliaNode(PeerId.random(random.Random(99)))
        key = key_for_content(b"some content")
        seeds = list(mesh)[:3]
        result = publisher.provide(
            key, mesh_query(mesh), mesh_add_provider(mesh), NOW,
            replication=4, seeds=seeds,
        )
        assert result.succeeded()
        closest = sorted(mesh, key=lambda p: xor_distance(key_for_peer(p), key))[:4]
        assert result.stored_on == closest
        for pid in closest:
            assert mesh[pid].provider_store.providers(key, NOW) == [publisher.peer_id]
        # the publisher also keeps a local copy of its own record
        assert publisher.provider_store.providers(key, NOW) == [publisher.peer_id]

    def test_find_providers_resolves_a_published_record(self):
        mesh = build_server_mesh()
        publisher = KademliaNode(PeerId.random(random.Random(99)))
        retriever = KademliaNode(PeerId.random(random.Random(77)))
        key = key_for_content(b"some content")
        seeds = list(mesh)[:3]
        publisher.provide(
            key, mesh_query(mesh), mesh_add_provider(mesh), NOW,
            replication=4, seeds=seeds,
        )
        result = retriever.find_providers(
            key, mesh_get_providers(mesh), NOW, seeds=seeds, max_providers=1
        )
        assert result.succeeded()
        assert result.providers == [publisher.peer_id]
        assert result.satisfied
        assert result.hops >= 1

    def test_unpublished_key_resolves_to_nothing(self):
        mesh = build_server_mesh()
        retriever = KademliaNode(PeerId.random(random.Random(77)))
        result = retriever.find_providers(
            key_for_content(b"never published"),
            mesh_get_providers(mesh), NOW, seeds=list(mesh)[:3],
        )
        assert not result.succeeded()
        assert result.providers == []

    def test_records_expire_out_of_resolution(self):
        mesh = build_server_mesh()
        publisher = KademliaNode(PeerId.random(random.Random(99)))
        retriever = KademliaNode(PeerId.random(random.Random(77)))
        key = key_for_content(b"short-lived")
        seeds = list(mesh)[:3]
        publisher.provide(key, mesh_query(mesh), mesh_add_provider(mesh), NOW, seeds=seeds)
        ttl = next(iter(mesh.values())).provider_store.ttl
        late = NOW + ttl + 1.0
        result = retriever.find_providers(
            key, mesh_get_providers(mesh, now=late), late, seeds=seeds
        )
        assert result.providers == []

    def test_clients_refuse_provider_rpcs(self):
        client = KademliaNode(PeerId.random(random.Random(5)), mode=DHTMode.CLIENT)
        other = PeerId.random(random.Random(6))
        assert client.handle_add_provider(1234, other, NOW) is None
        assert client.handle_get_providers(1234, NOW) is None

    def test_local_records_satisfy_the_lookup_without_a_walk(self):
        node = KademliaNode(PeerId.random(random.Random(5)))
        key = key_for_content(b"mine")
        node.provider_store.add(key, node.peer_id, NOW)
        result = node.find_providers(
            key, lambda remote, k: None, NOW, max_providers=1
        )
        assert result.providers == [node.peer_id]
        assert result.hops == 0 and result.satisfied


class TestIpfsNodeContentE2E:
    def build_cluster(self, n=8, seed=11):
        rng = random.Random(seed)
        nodes = [IpfsNode(rng=random.Random(rng.getrandbits(32))) for _ in range(n)]
        registry = {node.peer_id: node for node in nodes}
        addrs = {
            node.peer_id: Multiaddr.tcp(f"10.1.0.{i + 1}", 4001)
            for i, node in enumerate(nodes)
        }
        for node in nodes:
            for other in nodes:
                if other is not node:
                    node.dht.observe_peer(other.peer_id)
        def query(remote, target, count):
            return registry[remote].handle_find_node(target, count) if remote in registry else None

        def add_provider(remote, key, provider):
            if remote not in registry:
                return None
            return registry[remote].handle_add_provider(key, provider, NOW)

        def get_providers(remote, key):
            return registry[remote].handle_get_providers(key, NOW) if remote in registry else None

        def dial_provider(pid):
            return (registry[pid].bitswap, addrs[pid]) if pid in registry else None

        return nodes, registry, query, add_provider, get_providers, dial_provider

    def test_publish_then_fetch_moves_the_block_over_bitswap(self):
        nodes, registry, query, add_provider, get_providers, dial_provider = (
            self.build_cluster()
        )
        publisher, retriever = nodes[0], nodes[-1]
        data = b"x" * 512
        provide = publisher.publish_block("bafytest", data, query, add_provider, NOW)
        assert provide.succeeded()
        assert publisher.bitswap.has_block("bafytest")

        block = retriever.fetch_block("bafytest", get_providers, dial_provider, NOW)
        assert block == data
        assert retriever.bitswap.has_block("bafytest")
        # the Bitswap ledgers on both sides account for the exchange
        ledger = publisher.bitswap.ledger_for(retriever.peer_id)
        assert ledger.blocks_sent == 1 and ledger.bytes_sent == len(data)
        back = retriever.bitswap.ledger_for(publisher.peer_id)
        assert back.blocks_received == 1 and back.bytes_received == len(data)
        # the provider was dialled for the exchange
        assert retriever.swarm.is_connected(publisher.peer_id)

    def test_fetch_of_unpublished_cid_returns_none(self):
        nodes, registry, query, add_provider, get_providers, dial_provider = (
            self.build_cluster()
        )
        assert (
            nodes[0].fetch_block("bafy-missing", get_providers, dial_provider, NOW)
            is None
        )

    def test_fetch_prefers_the_local_blockstore(self):
        nodes, registry, query, add_provider, get_providers, dial_provider = (
            self.build_cluster()
        )
        node = nodes[0]
        node.bitswap.add_block("bafylocal", b"here already")

        def exploding_get_providers(remote, key):  # pragma: no cover - must not run
            raise AssertionError("local block should not trigger a lookup")

        block = node.fetch_block(
            "bafylocal", exploding_get_providers, dial_provider, NOW
        )
        assert block == b"here already"


class TestZipfCatalog:
    def test_head_items_dominate(self):
        catalog = ZipfCatalog(50, exponent=1.1)
        rng = random.Random(1)
        samples = [catalog.sample(rng) for _ in range(4000)]
        head = sum(1 for s in samples if s == 0)
        tail = sum(1 for s in samples if s == 49)
        assert head > 10 * max(tail, 1)
        assert all(0 <= s < 50 for s in samples)

    def test_sampling_is_deterministic(self):
        catalog = ZipfCatalog(20)
        first = [catalog.sample(random.Random(7)) for _ in range(50)]
        second = [catalog.sample(random.Random(7)) for _ in range(50)]
        assert first == second

    def test_cid_key_block_are_pure(self):
        catalog = ZipfCatalog(4)
        other = ZipfCatalog(4)
        for item in range(4):
            assert catalog.cid(item) == other.cid(item)
            assert catalog.key(item) == other.key(item)
            assert catalog.key(item) == key_for_content(catalog.cid(item).encode())
            assert catalog.block(item) == other.block(item)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            ZipfCatalog(0)
        with pytest.raises(ValueError):
            ZipfCatalog(10, exponent=0.0)


class TestContentConfigValidation:
    def test_bad_shares_rejected(self):
        with pytest.raises(ValueError, match="publisher_share"):
            ContentRoutingConfig(publisher_share=1.5)
        with pytest.raises(ValueError, match="retriever_share"):
            ContentRoutingConfig(retriever_share=-0.1)

    def test_bad_intervals_rejected(self):
        with pytest.raises(ValueError, match="publish_interval"):
            ContentRoutingConfig(publish_interval=0.0)
        with pytest.raises(ValueError, match="provider_ttl"):
            ContentRoutingConfig(provider_ttl=-1.0)
        with pytest.raises(ValueError, match="republish_interval"):
            ContentRoutingConfig(republish_interval=0.0)

    def test_none_republish_disables_republishing(self):
        config = ContentRoutingConfig(republish_interval=None)
        assert config.republish_interval is None

    def test_sweep_interval_defaults_to_half_ttl(self):
        config = ContentRoutingConfig(provider_ttl=100.0)
        assert config.sweep_interval() == 50.0
        assert ContentRoutingConfig(expiry_sweep_interval=7.0).sweep_interval() == 7.0


class TestContentScenarios:
    """The simulation-layer workload, pinned at micro scale."""

    #: fixed-seed fingerprint of provide-churn at (60 peers, 0.02 d, seed 11) —
    #: the content-routing counterpart of the catalog's golden event counts
    PROVIDE_CHURN_GOLDEN = {
        "publishers": 1,
        "retrievers": 16,
        "provides": 11,
        "provide_successes": 11,
        "republishes": 14,
        "records_stored": 157,
        "records_expired": 5,
        "records_live_at_end": 66,
        "retrievals": 118,
        "retrieval_successes": 28,
        "retrievals_local": 32,
    }

    def micro(self, name):
        return run_scenario_by_name(name, n_peers=60, duration_days=0.02, seed=11)

    def test_provide_churn_micro_golden(self):
        stats = self.micro("provide-churn").content
        observed = {k: getattr(stats, k) for k in self.PROVIDE_CHURN_GOLDEN}
        assert observed == self.PROVIDE_CHURN_GOLDEN

    def test_rerun_is_fully_deterministic_including_samples(self):
        first = self.micro("provide-churn").content
        second = self.micro("provide-churn").content
        assert first == second  # dataclass equality covers the hop/latency lists

    def test_expiry_scenario_decays_and_leaves_no_records(self):
        stats = self.micro("provider-record-expiry").content
        assert stats.republishes == 0
        assert stats.records_expired > 0
        assert stats.records_live_at_end == 0
        assert stats.first_half_retrievals > 0 and stats.second_half_retrievals > 0
        assert stats.second_half_success_rate < stats.first_half_success_rate

    def test_scenarios_without_content_report_none(self):
        assert self.micro("p1").content is None

    def test_retrieval_flash_crowd_serves_hot_items_locally(self):
        stats = self.micro("retrieval-flash-crowd").content
        # the steep Zipf head means repeat requests hit the local blockstore
        assert stats.retrievals_local > 0
        assert stats.retrievals + stats.retrievals_local > stats.retrievals
