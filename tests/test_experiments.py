"""Tests for the experiment definitions (periods, paper values, runner)."""

import pytest

from repro.experiments.paper_values import PAPER
from repro.experiments.periods import PERIODS, period
from repro.experiments.runner import clear_cache, run_period_cached
from repro.kademlia.dht import DHTMode
from repro.simulation.churn_models import DAY


class TestPaperValues:
    def test_agent_composition_sums_to_total(self):
        total = (
            PAPER.goipfs_pids
            + PAPER.hydra_pids
            + PAPER.crawler_pids
            + PAPER.other_agent_pids
            + PAPER.missing_agent_pids
        )
        assert total == PAPER.total_pids

    def test_table2_lookup(self):
        row = PAPER.table2_row("P2", "go-ipfs", "peer")
        assert row.count == 42_038
        assert row.average == pytest.approx(19_676.930)
        with pytest.raises(KeyError):
            PAPER.table2_row("P9", "go-ipfs", "all")

    def test_table4_lookup_and_shares(self):
        assert PAPER.table4_row("heavy").peers == 10_540
        shares = PAPER.table4_class_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["one-time"] > shares["heavy"]

    def test_table2_orderings_the_benchmarks_rely_on(self):
        # duration grows with relaxed watermarks: P0 < P1 < P2 (go-ipfs, "all")
        p0 = PAPER.table2_row("P0", "go-ipfs", "all").average
        p1 = PAPER.table2_row("P1", "go-ipfs", "all").average
        p2 = PAPER.table2_row("P2", "go-ipfs", "all").average
        p3 = PAPER.table2_row("P3", "go-ipfs", "all").average
        assert p0 < p1 < p2
        assert p3 < p0  # the DHT-Client vantage point has the shortest durations

    def test_classification_covers_connected_pids(self):
        assert sum(r.peers for r in PAPER.table4) == PAPER.connected_pids


class TestPeriodSpecs:
    def test_all_paper_periods_present(self):
        assert set(PERIODS) == {"P0", "P1", "P2", "P3", "P4", "P14"}

    def test_table_i_values(self):
        assert PERIODS["P0"].low_water == 600 and PERIODS["P0"].high_water == 900
        assert PERIODS["P1"].low_water == 2_000 and PERIODS["P1"].high_water == 4_000
        assert PERIODS["P2"].low_water == 18_000
        assert PERIODS["P3"].go_ipfs_mode is DHTMode.CLIENT
        assert PERIODS["P4"].hydra_heads == 0
        assert PERIODS["P0"].hydra_heads == 3
        assert PERIODS["P14"].duration_days == 14.0

    def test_unknown_period_rejected(self):
        with pytest.raises(KeyError):
            period("P9")

    def test_watermark_scaling_preserves_ordering(self):
        spec = PERIODS["P0"]
        low_small, high_small = spec.scaled_watermarks(600)
        low_large, high_large = spec.scaled_watermarks(6_000)
        assert low_small < high_small
        assert low_large < high_large
        assert low_large > low_small
        # P2's scaled watermarks always exceed P0's at the same population
        p2_low, _ = PERIODS["P2"].scaled_watermarks(600)
        assert p2_low > low_small

    def test_scenario_config_reflects_period(self):
        config = PERIODS["P3"].scenario_config(n_peers=400, duration_days=0.5)
        assert config.duration == pytest.approx(0.5 * DAY)
        assert config.go_ipfs.dht_mode is DHTMode.CLIENT
        assert config.hydra_heads == 0
        config_p0 = PERIODS["P0"].scenario_config(n_peers=400)
        assert config_p0.hydra_heads == 3
        assert config_p0.go_ipfs.low_water < config_p0.go_ipfs.high_water

    def test_duration_seconds(self):
        assert PERIODS["P4"].duration_seconds == pytest.approx(3 * DAY)


class TestRunner:
    def test_cached_runner_returns_same_object(self):
        clear_cache()
        a = run_period_cached("P2", n_peers=120, duration_days=0.05, seed=3)
        b = run_period_cached("P2", n_peers=120, duration_days=0.05, seed=3)
        assert a is b

    def test_different_parameters_are_not_conflated(self):
        a = run_period_cached("P2", n_peers=120, duration_days=0.05, seed=3)
        b = run_period_cached("P2", n_peers=120, duration_days=0.05, seed=4)
        assert a is not b

    def test_runner_respects_period_vantage_points(self):
        result = run_period_cached("P3", n_peers=120, duration_days=0.05, seed=3)
        assert result.go_ipfs() is not None
        assert result.hydra_union() is None
        assert result.dataset("go-ipfs").measurement_role == "client"
