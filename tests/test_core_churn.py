"""Tests for the connection churn statistics (Table II)."""

import pytest

from repro.core.churn import churn_reports, connection_statistics, trim_share
from repro.core.records import ConnectionRecord, MeasurementDataset

HOUR = 3_600.0


class TestConnectionStatistics:
    def test_all_and_peer_statistics_hand_checked(self, tiny_dataset):
        report = connection_statistics(tiny_dataset)
        assert report.all_stats.count == 8
        assert report.peer_stats.count == 5

        durations = [c.duration for c in tiny_dataset.connections]
        assert report.all_stats.average == pytest.approx(sum(durations) / len(durations))

        # per-peer averages: heavy 30 h, normal 3 h, light 600 s, once1 300 s, once2 60 s
        expected_peer_averages = [30 * HOUR, 3 * HOUR, 600.0, 300.0, 60.0]
        assert report.peer_stats.average == pytest.approx(
            sum(expected_peer_averages) / len(expected_peer_averages)
        )
        assert report.peer_stats.median_value == pytest.approx(600.0)

    def test_direction_split(self, tiny_dataset):
        report = connection_statistics(tiny_dataset)
        assert report.inbound.count == 7
        assert report.outbound.count == 1
        assert report.inbound_outbound_count_ratio == pytest.approx(7.0)

    def test_close_reason_histogram(self, tiny_dataset):
        report = connection_statistics(tiny_dataset)
        assert report.close_reasons["remote-trim"] == 7
        assert report.close_reasons["still-open"] == 1

    def test_trim_share(self, tiny_dataset):
        report = connection_statistics(tiny_dataset)
        assert trim_share(report) == pytest.approx(7 / 8)

    def test_empty_dataset(self):
        dataset = MeasurementDataset(label="empty", started_at=0.0, ended_at=1.0)
        report = connection_statistics(dataset)
        assert report.all_stats.count == 0
        assert report.peer_stats.count == 0
        assert report.all_stats.average == 0.0
        assert trim_share(report) == 0.0

    def test_peer_average_weights_every_peer_once(self):
        # One peer with many short connections must not dominate the peer stats.
        dataset = MeasurementDataset(label="x", started_at=0.0, ended_at=1000.0)
        for i in range(100):
            dataset.connections.append(
                ConnectionRecord("busy", "inbound", float(i), float(i) + 1.0)
            )
        dataset.connections.append(ConnectionRecord("calm", "inbound", 0.0, 999.0))
        report = connection_statistics(dataset)
        assert report.all_stats.count == 101
        assert report.peer_stats.count == 2
        assert report.peer_stats.average == pytest.approx((1.0 + 999.0) / 2.0)

    def test_rows_shape(self, tiny_dataset):
        rows = connection_statistics(tiny_dataset).rows()
        assert [r[0] for r in rows] == ["all", "peer"]

    def test_churn_reports_over_multiple_datasets(self, tiny_dataset):
        reports = churn_reports({"a": tiny_dataset, "b": tiny_dataset})
        assert set(reports) == {"a", "b"}
        assert reports["a"].all_stats.count == reports["b"].all_stats.count


class TestScenarioChurnShape:
    """Shape checks on a real (small) simulated period, mirroring the paper."""

    def test_all_average_below_peer_average(self, small_scenario_result):
        report = connection_statistics(small_scenario_result.dataset("go-ipfs"))
        # crawlers/one-timers pull the per-connection average down; per-peer
        # averaging restores the weight of stable peers (paper Section IV.A)
        assert report.all_stats.count > 0
        assert report.all_stats.average < report.peer_stats.average

    def test_median_well_below_average(self, small_scenario_result):
        report = connection_statistics(small_scenario_result.dataset("go-ipfs"))
        assert report.all_stats.median_value < report.all_stats.average

    def test_inbound_dominates_outbound(self, small_scenario_result):
        report = connection_statistics(small_scenario_result.dataset("go-ipfs"))
        assert report.inbound.count > report.outbound.count

    def test_inbound_connections_last_longer(self, small_scenario_result):
        report = connection_statistics(small_scenario_result.dataset("go-ipfs"))
        assert report.inbound.average > report.outbound.average
